"""Quickstart: the paper's scenario in ~20 lines.

Builds a simulated programmable network with the Osaka sensor fleet,
deploys the Section 3 dataflow (acquire torrential rain, tweets and
traffic only when the last hour's mean temperature exceeds 25 °C), runs
one virtual day, and prints what the monitor and the warehouse saw.

Run:  python examples/quickstart.py
"""

from repro import build_stack, osaka_scenario_flow


def main() -> None:
    stack = build_stack(hot=True)
    flow = osaka_scenario_flow(stack)

    deployment = stack.executor.deploy(flow)
    print(f"deployed {flow.name!r}: {deployment.assignments()}")

    stack.run_until(18 * 3600.0)  # midnight -> evening, virtual time

    print()
    print(stack.executor.monitor.render_dashboard())

    print()
    controls = stack.executor.monitor.control_log
    for command in controls:
        verb = "activated" if command.activate else "deactivated"
        hours = command.issued_at / 3600.0
        print(f"at {hours:04.1f}h the trigger {verb}: "
              f"{', '.join(command.sensor_ids)}")

    print()
    print(f"warehouse: {len(stack.warehouse)} torrential-rain events")
    for row in stack.warehouse.query().rollup_time(
        "hour", measure="rain_rate", agg="max"
    ):
        print(f"  hour starting {row.group[0] / 3600.0:04.1f}h: "
              f"max rain {row.value:.1f} mm/h over {row.count} events")

    print()
    print(f"sticker: {stack.sticker.pushed} tuples visualized, "
          f"themes {stack.sticker.themes()}")


if __name__ == "__main__":
    main()
