"""The full demo walkthrough (P1 -> P2 -> P3) as one scripted session.

A domain expert designs the Osaka emergency dataflow in the (headless)
designer, checks it step by step on samples, inspects the DSN translation,
deploys it at network level, watches the live annotations, and finally
modifies the running flow — everything the EDBT demo showed, reproducible
offline.

Run:  python examples/osaka_emergency.py
"""

from repro import DesignerSession, FilterSpec, TriggerOnSpec, build_stack
from repro.pubsub.subscription import SubscriptionFilter
from repro.sticker.render import render_series


def design(session: DesignerSession, stack) -> None:
    """P1: discover sensors, draw the canvas, debug on samples."""
    print("== P1: design ==")
    by_type = session.palette.sources(organise_by="type")
    print("available sensors:",
          {kind: len(group) for kind, group in by_type.items()})

    temp = session.add_source(SubscriptionFilter(sensor_type="temperature"),
                              node_id="temperature")
    rain = session.add_source(SubscriptionFilter(sensor_type="rain"),
                              node_id="rain", initially_active=False)
    tweets = session.add_source(SubscriptionFilter(sensor_type="twitter"),
                                node_id="tweets", initially_active=False)
    traffic = session.add_source(SubscriptionFilter(sensor_type="traffic"),
                                 node_id="traffic", initially_active=False)

    gated = tuple(
        sensor.sensor_id for sensor in stack.fleet
        if sensor.metadata.sensor_type in ("rain", "twitter", "traffic")
    )
    trigger = session.add_operator(
        TriggerOnSpec(interval=300.0, window=3600.0,
                      condition="avg_temperature > 25", targets=gated),
        node_id="hot-hour",
    )
    torrential = session.add_operator(FilterSpec("rain_rate > 10"),
                                      node_id="torrential")
    dw = session.add_sink("warehouse", node_id="event-warehouse")
    viz = session.add_sink("visualization", node_id="sticker")
    coll = session.add_sink("collector", node_id="traffic-log")

    session.connect(temp, trigger)
    session.connect(rain, torrential)
    session.connect(torrential, dw)
    session.connect(tweets, viz)
    session.connect(traffic, coll)
    for source in (rain, tweets, traffic):
        session.connect_control(trigger, source)

    print("consistent:", session.is_consistent)
    print("schema at torrential:", session.schema_pane("torrential"))

    sample = session.preview(
        sensors={
            "temperature": stack.sensor("osaka-temp-umeda"),
            "rain": stack.sensor("osaka-rain-umeda"),
            "tweets": stack.sensor("osaka-tweets"),
            "traffic": stack.sensor("osaka-traffic-umeda"),
        },
        count=5,
        start=14 * 3600.0,  # probe a hot afternoon
    )
    print("sample tuples surviving the torrential filter:",
          len(sample.at("torrential")))
    if sample.commands:
        print("trigger dry-run would issue:",
              [(c.activate, c.sensor_ids) for commands in
               sample.commands.values() for c in commands])


def deploy_and_monitor(session: DesignerSession, stack):
    """P2: translate, deploy, monitor, inspect the sinks."""
    print()
    print("== P2: translate & deploy ==")
    program = session.translate()
    print(program.render())

    handle = session.deploy()
    stack.run_until(16 * 3600.0)

    print(stack.executor.monitor.render_dashboard())
    print()
    print("live canvas annotations:")
    for node_id, info in sorted(handle.annotations().items()):
        print(f"  {node_id}: {info}")

    print()
    print(f"warehouse holds {len(stack.warehouse)} events; hourly max rain:")
    for row in stack.warehouse.query().rollup_time("hour", "rain_rate", "max"):
        print(f"  {row.group[0] / 3600.0:04.1f}h  {row.value:6.1f} mm/h "
              f"({row.count} events)")

    print()
    print(render_series(stack.sticker, "social/twitter"))
    return handle


def modify_on_the_fly(handle, stack) -> None:
    """P3: plug in a sensor and swap an operator while running."""
    print()
    print("== P3: plug-and-play & live modification ==")
    from repro.sensors.physical import rain_sensor
    from repro.stt.spatial import Point

    newcomer = rain_sensor("osaka-rain-sumiyoshi", Point(34.61, 135.49),
                           "edge-1")
    newcomer.attach(stack.broker_network, stack.clock)
    print("published new sensor:", newcomer.sensor_id)

    handle.replace_operator("torrential", FilterSpec("rain_rate > 30"))
    print("tightened the torrential threshold to 30 mm/h, live")

    before = len(stack.warehouse)
    stack.run_until(20 * 3600.0)
    print(f"events warehoused after modification: {len(stack.warehouse) - before}")
    print("reassignments so far:", len(stack.executor.monitor.assignment_log))
    print("last log lines:")
    for record in stack.executor.monitor.logs[-5:]:
        print("  ", record)


def main() -> None:
    stack = build_stack(hot=True)
    session = DesignerSession(stack.executor, name="osaka-emergency")
    design(session, stack)
    handle = deploy_and_monitor(session, stack)
    modify_on_the_fly(handle, stack)


if __name__ == "__main__":
    main()
