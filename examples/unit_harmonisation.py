"""Unit and coordinate harmonisation across heterogeneous stations.

The paper's Transform requirement: "changing the unit of measure (e.g.
from yards to meters) or geographical coordinates (from one standard to
another one); ... checking that data conform to given validation rules".

This example simulates a federation of three agencies publishing the same
physical quantity in different conventions (°C vs °F, m/s vs knots), runs
a per-agency Transform to the common convention, validates the harmonised
streams, and aggregates them into one comparable hourly series — classic
multi-provider ETL, on-line.

Run:  python examples/unit_harmonisation.py
"""

from repro import (
    AggregationSpec,
    Dataflow,
    TransformSpec,
    ValidateSpec,
    build_stack,
)
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.schema.schema import StreamSchema
from repro.sensors.base import SimulatedSensor
from repro.stt.spatial import Point


def fahrenheit_station(sensor_id: str, node_id: str) -> SimulatedSensor:
    """A U.S.-convention station: temperature in °F, wind in knots."""
    schema = StreamSchema.build(
        [("temp_f", "float", "fahrenheit"), ("wind_kn", "float", "knot"),
         ("station", "string")],
        themes=("weather/temperature",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id, sensor_type="intl-weather", schema=schema,
        frequency=1.0 / 120.0, location=Point(34.70, 135.51),
        node_id=node_id, description="US-convention station",
    )

    def generate(now, rng):
        celsius = 22.0 + 6.0 * __import__("math").cos(
            2 * 3.14159 * ((now % 86400.0) / 86400.0 - 14.0 / 24.0)
        ) + rng.normal(0, 0.4)
        return {
            "temp_f": round(celsius * 9 / 5 + 32, 1),
            "wind_kn": round(max(0.0, rng.normal(6.0, 2.0)), 1),
            "station": sensor_id,
        }

    return SimulatedSensor(metadata, generate)


def main() -> None:
    stack = build_stack(hot=True, attach_fleet=False)
    foreign = fahrenheit_station("us-station-1", "edge-0")
    foreign.attach(stack.broker_network, stack.clock)

    flow = Dataflow("harmonise")
    src = flow.add_source(SubscriptionFilter(sensor_type="intl-weather"),
                          node_id="us-feed")
    to_si = flow.add_operator(
        TransformSpec(
            assignments={
                "temp_f": "convert(temp_f, 'fahrenheit', 'celsius')",
                "wind_kn": "convert(wind_kn, 'knot', 'mps')",
            },
            rename={"temp_f": "temperature", "wind_kn": "wind_speed"},
        ),
        node_id="to-si",
    )
    guard = flow.add_operator(
        ValidateSpec(rules=(
            "between(temperature, -50, 60)",
            "wind_speed >= 0",
            "matches(station, '[a-z0-9-]+')",
        )),
        node_id="sanity",
    )
    hourly = flow.add_operator(
        AggregationSpec(interval=3600.0,
                        attributes=("temperature", "wind_speed"),
                        function="AVG"),
        node_id="hourly",
    )
    dw = flow.add_sink("warehouse", node_id="dw")
    flow.connect(src, to_si)
    flow.connect(to_si, guard)
    flow.connect(guard, hourly)
    flow.connect(hourly, dw)

    from repro import validate_dataflow

    report = validate_dataflow(flow, stack.broker_network.registry)
    print("consistent:", report.is_valid)
    print("harmonised schema:", report.schemas["sanity"].describe())

    stack.executor.deploy(flow)
    stack.run_until(24 * 3600.0)

    print()
    print("hourly SI-unit series (from °F/knot inputs):")
    for row in stack.warehouse.query().rollup_time("hour", "avg_temperature",
                                                   "avg"):
        print(f"  {row.group[0] / 3600.0:04.1f}h  {row.value:5.1f} °C")
    wind_rows = stack.warehouse.query().rollup_time("hour", "avg_wind_speed",
                                                    "avg")
    mean_wind = sum(r.value for r in wind_rows) / len(wind_rows)
    print(f"mean wind over the day: {mean_wind:.1f} m/s "
          f"(converted from knots)")


if __name__ == "__main__":
    main()
