"""Flood watch: a storm-surge dataflow over the extended sensor roster.

The paper's motivation opens with natural disasters — "flooding, storming,
extreme temperatures".  This example builds a flood-watch pipeline over
the extended Osaka fleet: the tide gauge and the rain gauges are joined
every 10 minutes; a virtual property computes a surge-risk score from
water level, rain intensity and wind; a Trigger On wakes the tweet stream
when the risk is high so responders see what citizens report; everything
lands in the Event Data Warehouse for post-event analysis.

Run:  python examples/flood_watch.py
"""

from repro import (
    DesignerSession,
    FilterSpec,
    JoinSpec,
    TriggerOnSpec,
    VirtualPropertySpec,
    build_stack,
)
from repro.pubsub.subscription import SubscriptionFilter

#: Risk score: tide above mean + heavy rain + strong onshore wind.
SURGE_RISK_SPEC = (
    "clamp((water_level - 1.2) / 0.8, 0, 1) * 0.5"
    " + clamp(rain_rate / 40.0, 0, 1) * 0.35"
    " + clamp(wind_speed / 20.0, 0, 1) * 0.15"
)


def main() -> None:
    stack = build_stack(hot=True, extended=True)
    session = DesignerSession(stack.executor, name="flood-watch")

    tide = session.add_source(SubscriptionFilter(sensor_type="sea-level"),
                              node_id="tide")
    rain = session.add_source(
        SubscriptionFilter(sensor_ids=("osaka-rain-port",)
                           if "osaka-rain-port" in stack.broker_network.registry
                           else ("osaka-rain-umeda",)),
        node_id="rain",
    )
    wind = session.add_source(SubscriptionFilter(sensor_type="wind"),
                              node_id="wind")
    tweets = session.add_source(SubscriptionFilter(sensor_type="twitter"),
                                node_id="tweets", initially_active=False)

    tide_rain = session.add_operator(
        JoinSpec(interval=600.0, predicate="true",
                 left_prefix="tide", right_prefix="rain"),
        node_id="tide-rain",
    )
    with_wind = session.add_operator(
        JoinSpec(interval=600.0, predicate="true",
                 left_prefix="sea", right_prefix="wx"),
        node_id="with-wind",
    )
    risk = session.add_operator(
        VirtualPropertySpec("surge_risk", SURGE_RISK_SPEC), node_id="risk"
    )
    alerts = session.add_operator(FilterSpec("surge_risk > 0.5"),
                                  node_id="alerts")
    wake_tweets = session.add_operator(
        TriggerOnSpec(interval=600.0, window=1800.0,
                      condition="max_surge_risk > 0.5",
                      targets=("osaka-tweets",)),
        node_id="wake-tweets",
    )
    dw = session.add_sink("warehouse", node_id="dw")
    viz = session.add_sink("visualization", node_id="viz")

    session.connect(tide, tide_rain, port=0)
    session.connect(rain, tide_rain, port=1)
    session.connect(tide_rain, with_wind, port=0)
    session.connect(wind, with_wind, port=1)
    session.connect(with_wind, risk)
    session.connect(risk, alerts)
    session.connect(alerts, dw)
    session.connect(risk, wake_tweets)
    session.connect(tweets, viz)
    session.connect_control(wake_tweets, tweets)

    report = session.validate()
    print("consistent:", report.is_valid)
    for issue in report.warnings:
        print("  note:", issue)
    print("risk schema:", session.schema_pane(risk))

    session.deploy()
    stack.run_until(36 * 3600.0)  # a day and a half: two tide cycles

    print()
    print(stack.executor.monitor.render_dashboard())

    print()
    alerts_count = len(stack.warehouse)
    print(f"surge alerts warehoused: {alerts_count}")
    rows = stack.warehouse.query().rollup_time("hour", "surge_risk", "max")
    for row in rows:
        bar = "#" * int(row.value * 40)
        print(f"  {row.group[0] / 3600.0:05.1f}h risk {row.value:4.2f} {bar}")

    triggered = stack.executor.monitor.control_log
    if triggered:
        print(f"tweet stream woken {len(triggered)} time(s); "
              f"{stack.sticker.pushed} tweets visualized")
    else:
        print("calm seas: tweet stream never woken, zero social traffic paid")


if __name__ == "__main__":
    main()
