"""Experiment T1 — Table 1: the stream-processing operation algebra.

Regenerates Table 1 as an executable artifact: every operation runs over
the same synthetic stream; the benchmark reports per-operation throughput
(tuples/second) and verifies the blocking/non-blocking split the paper
draws ("the former are directly applied on each tuple ... the others
require the maintenance of a cache of tuples processed every t").

Expected shape: non-blocking operators emit immediately (zero output
latency) and pay expression evaluation per tuple; blocking operators are
cheap per tuple (they only cache) but defer all output to the window
flush, so their output cadence equals the interval t; join is the most
expensive overall (pairwise predicate over the window cross product).
"""

import pytest

from benchmarks.conftest import make_batch
from repro.streams.aggregate import AggregationOperator
from repro.streams.cull import CullSpaceOperator, CullTimeOperator
from repro.streams.filter import FilterOperator
from repro.streams.join import JoinOperator
from repro.streams.transform import TransformOperator
from repro.streams.trigger import TriggerOnOperator
from repro.streams.virtual import VirtualPropertyOperator

BATCH = make_batch(2000)


def run_single_input(operator, batch):
    for tuple_ in batch:
        operator.on_tuple(tuple_)
    if operator.is_blocking:
        operator.on_timer(len(batch) + operator.interval)
    return operator


@pytest.mark.benchmark(group="table1-non-blocking")
class TestNonBlockingOperators:
    def test_filter(self, benchmark):
        result = benchmark(
            lambda: run_single_input(FilterOperator("temperature > 24"), BATCH)
        )
        benchmark.extra_info["kind"] = "non-blocking"
        benchmark.extra_info["selectivity"] = (
            result.stats.tuples_out / result.stats.tuples_in
        )

    def test_transform(self, benchmark):
        benchmark(lambda: run_single_input(
            TransformOperator(
                {"temperature": "convert(temperature, 'celsius', 'fahrenheit')"}
            ),
            BATCH,
        ))
        benchmark.extra_info["kind"] = "non-blocking"

    def test_virtual_property(self, benchmark):
        benchmark(lambda: run_single_input(
            VirtualPropertyOperator(
                "apparent",
                "temperature + 0.33 * (humidity * 6.105 * exp(17.27 * "
                "temperature / (237.7 + temperature))) - 4.0",
            ),
            BATCH,
        ))
        benchmark.extra_info["kind"] = "non-blocking"

    def test_cull_time(self, benchmark):
        result = benchmark(lambda: run_single_input(
            CullTimeOperator(rate=5, start=0.0, end=1e9), BATCH
        ))
        benchmark.extra_info["kind"] = "non-blocking"
        benchmark.extra_info["reduction"] = (
            1.0 - result.stats.tuples_out / result.stats.tuples_in
        )

    def test_cull_space(self, benchmark):
        benchmark(lambda: run_single_input(
            CullSpaceOperator(rate=5, corner1=(34.5, 135.3),
                              corner2=(34.9, 135.7)),
            BATCH,
        ))
        benchmark.extra_info["kind"] = "non-blocking"


@pytest.mark.benchmark(group="table1-blocking")
class TestBlockingOperators:
    def test_aggregation(self, benchmark):
        result = benchmark(lambda: run_single_input(
            AggregationOperator(interval=3600.0, attributes=["temperature"],
                                function="AVG"),
            BATCH,
        ))
        benchmark.extra_info["kind"] = "blocking"
        benchmark.extra_info["outputs_per_window"] = result.stats.tuples_out

    def test_trigger_on(self, benchmark):
        def run():
            trigger = TriggerOnOperator(
                interval=3600.0, condition="avg_temperature > 24",
                targets=("rain-1",),
            )
            trigger.control = lambda command: None
            return run_single_input(trigger, BATCH)

        result = benchmark(run)
        benchmark.extra_info["kind"] = "blocking"
        benchmark.extra_info["controls"] = result.stats.controls_issued

    def test_join(self, benchmark):
        left = BATCH[:200]
        right = BATCH[200:400]

        def run():
            join = JoinOperator(interval=3600.0,
                                predicate="left.station == right.station")
            for tuple_ in left:
                join.on_tuple(tuple_, port=0)
            for tuple_ in right:
                join.on_tuple(tuple_, port=1)
            join.on_timer(3600.0)
            return join

        result = benchmark(run)
        benchmark.extra_info["kind"] = "blocking"
        benchmark.extra_info["pairs_emitted"] = result.stats.tuples_out


def test_table1_throughput_summary(capsys):
    """Regenerate the Table 1 rows with measured tuples/second."""
    import time

    operators = {
        "filter σ": FilterOperator("temperature > 24"),
        "transform ▷": TransformOperator(
            {"temperature": "temperature * 1.8 + 32"}
        ),
        "virtual ⊎": VirtualPropertyOperator("d", "temperature * 2"),
        "cull-time γ": CullTimeOperator(rate=5, start=0.0, end=1e9),
        "cull-space γ": CullSpaceOperator(rate=5, corner1=(34.5, 135.3),
                                          corner2=(34.9, 135.7)),
        "aggregation @": AggregationOperator(
            interval=3600.0, attributes=["temperature"], function="AVG"
        ),
        "trigger ⊕": TriggerOnOperator(
            interval=3600.0, condition="avg_temperature > 20",
            targets=("x",),
        ),
    }
    rows = []
    for name, operator in operators.items():
        operator.control = lambda command: None
        start = time.perf_counter()
        run_single_input(operator, BATCH)
        elapsed = time.perf_counter() - start
        rows.append((name, operator.is_blocking, len(BATCH) / elapsed))

    with capsys.disabled():
        print("\n== Table 1: measured operator throughput ==")
        print(f"  {'operation':16s} {'blocking':9s} {'tuples/s':>12s}")
        for name, blocking, rate in rows:
            print(f"  {name:16s} {str(blocking):9s} {rate:12.0f}")
    # Sanity: every operator processed the batch.
    assert len(rows) == 7
