"""Async-backend benchmark runner (writes ``BENCH_10.json``).

Prices what the asyncio execution backend (PR 10) costs relative to the
simulator oracle it mirrors, on the paper's Section 3 scenario:

- ``scenario_dispatch`` — wall seconds and delivered tuples/sec (wall)
  for the osaka scenario on both backends, free-running.  The async
  backend pays for real task switching and bounded-queue hops per
  virtual instant; acceptance is that the full scenario stays within
  ``OVERHEAD_CEILING``x of the simulator's wall time.
- ``e2e_latency`` — steady-state end-to-end wall latency on the async
  backend, measured from the wall stamps the tracer records on every
  span when the clock exposes ``wall_now`` (DESIGN.md §17): for each
  sink-reaching trace, sink ``span.wall`` minus root publish
  ``span.wall``; the median over the second half of the run (the
  steady state, after the trigger has opened the gated streams).
  Free-running, both hops of a tuple's journey usually land inside one
  epoch's drain, so this prices the event-loop transit itself.
- ``parity_echo`` — the sink totals of both runs, asserted equal before
  any rate is believed (the bench-side echo of the parity suite: a fast
  backend that diverges is not a backend, it's a bug).

Usage::

    python -m benchmarks.run_async --json              # full run
    python -m benchmarks.run_async --json --quick      # CI-scale run
    python -m benchmarks.run_async --json --smoke      # crash check
    python -m benchmarks.run_async --json --enforce    # fail on regression
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from benchmarks._timing import gc_controlled as _gc_controlled

from repro.scenario import build_stack, osaka_scenario_flow

#: Virtual horizon (hours) of the measured scenario run; the trigger
#: fires at ~7.9h, so anything >= 9h covers the gated acquisition phase.
FULL_HOURS = 15.0

#: The async backend may cost at most this many times the simulator's
#: wall clock on the full scenario (full-scale runs only).
OVERHEAD_CEILING = 5.0


def _run_scenario(backend: str, hours: float, observability=None) -> dict:
    """One osaka scenario run; returns wall cost + logical totals."""
    stack = build_stack(
        hot=True, seed=7, backend=backend, observability=observability
    )
    with stack:
        flow = osaka_scenario_flow(stack)
        deployment = stack.executor.deploy(flow)
        with _gc_controlled():
            start = time.perf_counter()
            stack.run_until(hours * 3600.0)
            wall = time.perf_counter() - start
        stats = stack.netsim.stats
        return {
            "wall_seconds": wall,
            "tuples_delivered": stats.tuples_delivered,
            "totals": {
                "warehouse": len(stack.warehouse),
                "sticker": stack.sticker.pushed,
                "traffic": len(deployment.collected("traffic-collector")),
                "delivered": stats.tuples_delivered,
                "dropped": stats.messages_dropped,
            },
            "stack": None,  # the backend is closed; nothing to leak
            "tracer": stack.obs.tracer if stack.obs is not None else None,
        }


def bench_scenario_dispatch(hours: float, repeat: int = 3) -> dict:
    """Wall cost of the scenario on each backend, best-of-N interleaved."""
    best = {"sim": None, "async": None}
    totals = {}
    for _ in range(repeat):
        for backend in ("sim", "async"):
            run = _run_scenario(backend, hours)
            totals[backend] = run["totals"]
            if (
                best[backend] is None
                or run["wall_seconds"] < best[backend]["wall_seconds"]
            ):
                best[backend] = run
    if totals["sim"] != totals["async"]:
        raise AssertionError(
            f"backend divergence before timing is believed: "
            f"sim={totals['sim']} async={totals['async']}"
        )
    out = {"virtual_hours": hours, "parity_echo": totals["sim"]}
    for backend in ("sim", "async"):
        run = best[backend]
        out[f"{backend}_wall_seconds"] = round(run["wall_seconds"], 3)
        out[f"{backend}_tuples_per_sec_wall"] = round(
            run["tuples_delivered"] / run["wall_seconds"]
        )
    out["async_overhead_x"] = round(
        out["async_wall_seconds"] / out["sim_wall_seconds"], 2
    )
    return out


def bench_e2e_latency(hours: float) -> dict:
    """Steady-state wall e2e latency on the async backend, from spans.

    Every span carries ``wall`` when the bound clock exposes
    ``wall_now``; a trace's e2e wall latency is its sink span's wall
    stamp minus its root (publish) span's.  Virtual time selects the
    steady-state half; wall time is what is measured.
    """
    run = _run_scenario("async", hours, observability=1.0)
    tracer = run["tracer"]
    horizon = hours * 3600.0
    latencies = []
    for trace_id in tracer.trace_ids():
        spans = tracer.trace(trace_id)
        sink = next((s for s in spans if s.name == "sink"), None)
        if sink is None:
            continue
        root = spans[0]
        if root.wall is None or sink.wall is None:
            continue
        if root.start < horizon / 2.0:
            continue  # warm-up half: deploy, trigger, gate opening
        latencies.append(sink.wall - root.wall)
    if not latencies:
        return {"traces": 0}
    return {
        "traces": len(latencies),
        "median_ms": round(statistics.median(latencies) * 1e3, 3),
        "p95_ms": round(
            sorted(latencies)[int(0.95 * (len(latencies) - 1))] * 1e3, 3
        ),
        "max_ms": round(max(latencies) * 1e3, 3),
    }


# -- runner -----------------------------------------------------------------


def run(scale: int = 1) -> dict:
    hours = max(FULL_HOURS / scale, 0.5)
    repeat = 3 if scale == 1 else 1
    dispatch = bench_scenario_dispatch(hours, repeat=repeat)
    # Latency needs sink traffic, which the trigger only opens at ~7.9h;
    # quick mode still runs the full gate (one ~9h async pass is cheap),
    # smoke mode stays tiny and reports traces=0.
    latency_hours = hours if hours >= 9.0 else (9.0 if scale <= 10 else hours)
    latency = bench_e2e_latency(latency_hours)

    return {
        "bench": "async-execution-backend",
        "issue": 10,
        "scale_divisor": scale,
        "unit": "wall seconds / delivered tuples per wall second",
        "notes": {
            "scenario_dispatch": "the Section 3 osaka scenario free-running "
                                 "on each backend; identical logical totals "
                                 "asserted (parity_echo) before any rate is "
                                 "reported; interleaved best-of-N against "
                                 "machine drift",
            "e2e_latency": "async only: sink span wall stamp minus root "
                           "publish wall stamp per sink-reaching trace, "
                           "steady-state (second half of the run), from "
                           "the tracer's wall_now binding",
            "acceptance": f"async wall time <= {OVERHEAD_CEILING}x sim on "
                          "the full scenario; parity_echo totals equal by "
                          "construction",
        },
        "results": {
            "scenario_dispatch": dispatch,
            "e2e_latency": latency,
        },
    }


def check(report: dict) -> "list[str]":
    """Acceptance violations in a **full-scale** report."""
    problems = []
    overhead = report["results"]["scenario_dispatch"].get("async_overhead_x")
    if overhead is not None and overhead > OVERHEAD_CEILING:
        problems.append(
            f"scenario_dispatch: async costs {overhead}x the simulator's "
            f"wall time (ceiling {OVERHEAD_CEILING}x)"
        )
    if report["results"]["e2e_latency"].get("traces", 0) == 0:
        problems.append("e2e_latency: no sink-reaching traces measured")
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_10.json next to the repo root")
    parser.add_argument("--quick", action="store_true",
                        help="reduced virtual horizon (CI-scale; the "
                             "overhead ratio remains comparable)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny horizon (crash check only)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when acceptance bounds are violated "
                             "(meaningful only at full scale)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_10.json)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    scale = 30 if args.smoke else 10 if args.quick else 1
    report = run(scale=scale)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or root / "BENCH_10.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")
    if args.enforce and scale == 1:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            sys.exit(1)
        print("acceptance bounds hold")


if __name__ == "__main__":
    main()
