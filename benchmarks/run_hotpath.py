"""Hot-path before/after benchmark runner (writes ``BENCH_2.json``).

Measures the data-plane fast paths against their reference ("before")
implementations, which remain available behind escape hatches:

- expression evaluation: tree-walking interpreter
  (``CompiledExpression.interpret``) vs the generated closure
  (``CompiledExpression.evaluate``);
- message routing: per-call shortest-path recomputation
  (``Topology.route_uncached``) vs the generation-counter route cache
  (``Topology.route_info``), on a static 8-node line topology;
- end-to-end send+deliver over the simulator, ``cache_routes=False`` vs
  ``True``;
- broker fan-out: ``publish_data`` to many subscriptions over the
  simulated network, uncached vs cached routing;
- aggregation flush at several sliding-window sizes,
  ``incremental=False`` vs ``True``;
- join flush at several window sizes, ``hash_join=False`` vs ``True``.

Usage::

    python -m benchmarks.run_hotpath --json            # full run
    python -m benchmarks.run_hotpath --json --smoke    # CI smoke (tiny)

``--json`` writes BENCH_2.json in the repository root (or ``--out PATH``);
without it the results are printed only.  The smoke profile exists so CI
can prove the harness runs — its numbers are noise, not a trajectory.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from benchmarks._timing import best_rate as _best_rate
from repro.expr.eval import compile_expression
from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.schema.schema import StreamSchema
from repro.streams.aggregate import AggregationOperator
from repro.streams.join import JoinOperator
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

#: (name, source) pairs representative of filter/virtual-property/join use.
EXPRESSIONS = [
    ("filter", "temperature > 24 and humidity < 0.8"),
    ("arith", "(temperature * 1.8 + 32) / 2 > 30 or humidity * 100 < 45"),
    ("func", "contains(station, 'umeda') or temperature > 30"),
]

PAYLOAD = {"temperature": 26.5, "humidity": 0.55, "station": "umeda-north"}


def _make_tuple(i: int, station: str, value: float, at: float = 0.0) -> SensorTuple:
    return SensorTuple(
        payload={"station": station, "temperature": value},
        stamp=SttStamp(
            time=at, location=Point(34.5 + (i % 13) * 0.01, 135.3 + (i % 7) * 0.01)
        ),
        source="bench",
        seq=i,
    )


def _line_topology(cache_routes: bool = True) -> Topology:
    """The static 8-node topology the routing numbers are quoted on."""
    topo = Topology(cache_routes=cache_routes)
    for i in range(8):
        topo.add_node(f"n{i}")
    for i in range(7):
        topo.add_link(f"n{i}", f"n{i + 1}", latency=0.001)
    return topo


# -- measurements -----------------------------------------------------------


def bench_expr_eval(iterations: int) -> dict:
    out = {}
    for name, source in EXPRESSIONS:
        expr = compile_expression(source).prepare()

        def interpreted(n, expr=expr):
            interpret = expr.interpret
            for _ in range(n):
                interpret(PAYLOAD)

        def compiled(n, expr=expr):
            evaluate = expr.evaluate
            for _ in range(n):
                evaluate(PAYLOAD)

        before = _best_rate(interpreted, iterations)
        after = _best_rate(compiled, iterations)
        out[name] = {
            "before_ops_per_sec": round(before),
            "after_ops_per_sec": round(after),
            "speedup": round(after / before, 2),
        }
    return out


def bench_route_messages(iterations: int) -> dict:
    """Routing a message across the static topology: recompute vs cache."""
    topo = _line_topology()

    def uncached(n):
        route = topo.route_uncached
        for _ in range(n):
            route("n0", "n7")

    def cached(n):
        route_info = topo.route_info
        for _ in range(n):
            route_info("n0", "n7")

    before = _best_rate(uncached, max(iterations // 20, 100))
    after = _best_rate(cached, iterations)
    return {
        "before_ops_per_sec": round(before),
        "after_ops_per_sec": round(after),
        "speedup": round(after / before, 2),
    }


def bench_send_deliver(iterations: int) -> dict:
    """Full simulator cycle: route, account, schedule, deliver."""

    def cycle(n, cache_routes=True):
        sim = NetworkSimulator(topology=_line_topology(cache_routes))
        sink = lambda payload: None
        send = sim.send
        run = sim.clock.run
        batch = 500
        done = 0
        while done < n:
            for _ in range(batch):
                send("n0", "n7", 1, 100.0, sink)
            run()
            done += batch

    before = _best_rate(lambda n: cycle(n, cache_routes=False),
                        max(iterations // 10, 500))
    after = _best_rate(cycle, iterations)
    return {
        "before_ops_per_sec": round(before),
        "after_ops_per_sec": round(after),
        "speedup": round(after / before, 2),
    }


def bench_publish_fanout(iterations: int, subscribers: int = 20) -> dict:
    """Broker fan-out of one reading to many subscriptions over the net."""

    def fanout(n, cache_routes=True):
        sim = NetworkSimulator(topology=_line_topology(cache_routes))
        network = BrokerNetwork(netsim=sim)
        for i in range(subscribers):
            network.subscribe(
                f"n{i % 8}",
                SubscriptionFilter(),
                lambda tuple_: None,
            )
        network.publish(SensorMetadata(
            sensor_id="bench-sensor",
            sensor_type="weather",
            schema=StreamSchema.build(
                {"temperature": "float"}, themes=("weather/temperature",)
            ),
            frequency=1.0,
            location=Point(34.69, 135.50),
            node_id="n0",
        ))
        reading = _make_tuple(0, "umeda", 25.0)
        publish_data = network.publish_data
        run = sim.clock.run
        batch = 50
        done = 0
        while done < n:
            for _ in range(batch):
                publish_data("bench-sensor", reading)
            run()
            done += batch

    before = _best_rate(lambda n: fanout(n, cache_routes=False),
                        max(iterations // 10, 50))
    after = _best_rate(fanout, iterations)
    return {
        "subscribers": subscribers,
        "before_ops_per_sec": round(before),
        "after_ops_per_sec": round(after),
        "speedup": round(after / before, 2),
    }


def bench_aggregate_flush(window_sizes: "list[int]", flushes: int) -> dict:
    """Sliding-window AVG flush: rescan vs running accumulators.

    The window is fed once outside the timed region; flushes on a sliding
    window consume nothing, so each timed iteration aggregates the same
    standing window — exactly the per-interval work the operator repeats
    in steady state.
    """
    out = {}
    for size in window_sizes:
        ops = {}
        for incremental in (False, True):
            op = AggregationOperator(
                interval=60.0, attributes=["temperature"], function="AVG",
                group_by="station", window=1e12, incremental=incremental,
            )
            for i in range(size):
                op.on_tuple(_make_tuple(i, f"st-{i % 10}", float(i % 37), at=float(i)))
            ops[incremental] = op

        def flush(n, op=None):
            now = 1e9
            timer = op.on_timer
            for _ in range(n):
                now += 60.0
                timer(now)

        before = _best_rate(
            lambda n: flush(n, op=ops[False]), max(flushes // 5, 2))
        after = _best_rate(lambda n: flush(n, op=ops[True]), flushes)
        out[f"window_{size}"] = {
            "before_flushes_per_sec": round(before, 1),
            "after_flushes_per_sec": round(after, 1),
            "speedup": round(after / before, 2),
        }
    return out


def bench_join_flush(window_sizes: "list[int]", flushes: int) -> dict:
    """Equi-join flush: nested loop vs hash join (feed + flush cycle)."""
    out = {}
    for size in window_sizes:
        left = [_make_tuple(i, f"st-{i % 25}", float(i)) for i in range(size)]
        right = [_make_tuple(i, f"st-{i % 25}", float(i)) for i in range(size)]

        def flush(n, hash_join=True):
            op = JoinOperator(
                interval=60.0,
                predicate="left.station == right.station",
                hash_join=hash_join,
            )
            for _ in range(n):
                for t in left:
                    op.on_tuple(t, port=0)
                for t in right:
                    op.on_tuple(t, port=1)
                op.on_timer(60.0)

        before = _best_rate(
            lambda n: flush(n, hash_join=False), max(flushes // 5, 1))
        after = _best_rate(flush, flushes)
        out[f"window_{size}"] = {
            "before_flushes_per_sec": round(before, 1),
            "after_flushes_per_sec": round(after, 1),
            "speedup": round(after / before, 2),
        }
    return out


# -- runner -----------------------------------------------------------------


def run(smoke: bool = False) -> dict:
    scale = 20 if smoke else 1
    expr_iters = 200_000 // scale
    route_iters = 200_000 // scale
    send_iters = 50_000 // scale
    fanout_iters = 2_000 // scale
    agg_windows = [500, 2_000] if smoke else [1_000, 5_000, 20_000]
    agg_flushes = 100 // scale or 2
    join_windows = [50, 100] if smoke else [100, 200, 400]
    join_flushes = 20 // scale or 1

    results = {
        "expr_eval": bench_expr_eval(expr_iters),
        "route_messages": bench_route_messages(route_iters),
        "send_deliver": bench_send_deliver(send_iters),
        "publish_fanout": bench_publish_fanout(fanout_iters),
        "aggregate_flush": bench_aggregate_flush(agg_windows, agg_flushes),
        "join_flush": bench_join_flush(join_windows, join_flushes),
    }
    return {
        "bench": "hotpath",
        "issue": 2,
        "smoke": smoke,
        "topology": "line-8 (static)",
        "notes": {
            "expr_eval": "per-tuple condition evaluation, interpreter vs "
                         "compiled closure",
            "route_messages": "shortest-path resolution per message, "
                              "recompute vs generation-counter cache",
            "send_deliver": "full simulator cycle incl. per-link accounting "
                            "and event dispatch",
            "publish_fanout": "broker publish_data to 20 subscriptions over "
                              "the simulated network",
            "aggregate_flush": "sliding-window grouped AVG, rescan vs "
                               "running accumulators",
            "join_flush": "equi-predicate window join, nested loop vs "
                          "hash join (feed+flush cycle)",
        },
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_2.json next to the repo root")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (CI crash check)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_2.json)")
    args = parser.parse_args()

    report = run(smoke=args.smoke)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or Path(__file__).resolve().parent.parent / "BENCH_2.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
