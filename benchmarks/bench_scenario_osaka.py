"""Experiment S1 — the Section 3 scenario, hot regime vs cool regime.

"Acquiring the data about torrential rain, tweets and traffic only when
the temperature identified in the last hour is above 25 °C."

The quantitative artifact: acquisition volumes with the trigger armed in a
hot regime (fires during the afternoon) versus a cool regime (never
fires), plus where in the day the activation lands.

Expected shape: cool regime acquires exactly nothing from the gated
streams (and pays no network traffic for them); hot regime starts
acquiring when the one-hour mean crosses 25 °C and the volumes are
substantial thereafter.
"""

import pytest

from repro.scenario import build_stack, osaka_scenario_flow

HOURS = 18.0


def run_regime(hot: bool, seed: int = 7):
    stack = build_stack(hot=hot, seed=seed)
    flow = osaka_scenario_flow(stack)
    deployment = stack.executor.deploy(flow)
    stack.run_until(HOURS * 3600.0)
    return stack, deployment


@pytest.mark.benchmark(group="scenario-osaka")
def test_hot_regime(benchmark):
    stack, deployment = benchmark.pedantic(
        lambda: run_regime(hot=True), rounds=1, iterations=1
    )
    controls = stack.executor.monitor.control_log
    benchmark.extra_info.update({
        "trigger_fired_at_h": controls[0].issued_at / 3600.0 if controls else None,
        "warehoused_torrential": len(stack.warehouse),
        "tweets_visualized": stack.sticker.pushed,
        "traffic_collected": len(deployment.collected("traffic-collector")),
        "suppressed_before_activation":
            stack.broker_network.data_messages_suppressed,
    })
    assert controls and controls[0].activate
    assert len(stack.warehouse) > 0
    assert stack.sticker.pushed > 0


@pytest.mark.benchmark(group="scenario-osaka")
def test_cool_regime(benchmark):
    stack, deployment = benchmark.pedantic(
        lambda: run_regime(hot=False), rounds=1, iterations=1
    )
    benchmark.extra_info.update({
        "trigger_fired": bool(stack.executor.monitor.control_log),
        "warehoused_torrential": len(stack.warehouse),
        "tweets_visualized": stack.sticker.pushed,
        "traffic_collected": len(deployment.collected("traffic-collector")),
        "suppressed_messages": stack.broker_network.data_messages_suppressed,
    })
    assert not stack.executor.monitor.control_log
    assert len(stack.warehouse) == 0
    assert stack.sticker.pushed == 0
    assert stack.broker_network.data_messages_suppressed > 0


def test_scenario_rows(capsys):
    hot_stack, hot_dep = run_regime(hot=True)
    cool_stack, cool_dep = run_regime(hot=False)
    controls = hot_stack.executor.monitor.control_log

    def volumes(stack, deployment):
        return (len(stack.warehouse), stack.sticker.pushed,
                len(deployment.collected("traffic-collector")),
                stack.broker_network.data_messages_suppressed)

    hot_rows = volumes(hot_stack, hot_dep)
    cool_rows = volumes(cool_stack, cool_dep)
    with capsys.disabled():
        print("\n== Scenario: trigger-gated acquisition volumes over "
              f"{HOURS:.0f} virtual hours ==")
        print(f"  {'regime':8s} {'rain->DW':>9s} {'tweets':>8s} "
              f"{'traffic':>8s} {'suppressed':>11s}")
        print(f"  {'hot':8s} {hot_rows[0]:>9} {hot_rows[1]:>8} "
              f"{hot_rows[2]:>8} {hot_rows[3]:>11}")
        print(f"  {'cool':8s} {cool_rows[0]:>9} {cool_rows[1]:>8} "
              f"{cool_rows[2]:>8} {cool_rows[3]:>11}")
        if controls:
            print(f"  trigger fired at "
                  f"{controls[0].issued_at / 3600.0:.1f} virtual hours")
    assert hot_rows[0] > 0 and cool_rows[0] == 0
