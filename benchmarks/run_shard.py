"""Sharded blocking-operator benchmark (writes ``BENCH_5.json``).

Measures the flush throughput of one conceptual grouped aggregation at
shard counts 1, 2, 4, and 8.  The unit is **tuples per second of epoch
wall-clock**: one epoch = feeding every tuple of a window plus the flush
(and, when sharded, the merge).  Shards are deployed on distinct nodes
and run concurrently, so the epoch cost of a sharded run is the *maximum*
over the shards' feed+flush busy times plus the merge stage's cost —
exactly the critical path of the deployed plan.  Key-routing cost is not
re-measured here; it rides the broker fan-out path benchmarked in
``BENCH_4.json`` (``publish_fanout``).

Three workloads:

- ``aggregate_flush``        — 64 stations, uniform key distribution;
  the scale-out headline.  Acceptance: shards=8 >= 3x shards=1.
- ``aggregate_flush_skewed`` — 80% of tuples on one hot station; the
  hot shard owns most of the epoch, so speedup is bounded near 1/0.8.
  Acceptance: shards=8 must not collapse below 0.9x (the sharding plane
  may not *cost* throughput under skew, it just cannot add much).
- ``process_receive``        — the exact BENCH_4 per-tuple dispatch
  workload, re-measured to show the sharding plane costs nothing when
  unused.  Acceptance: within 5% of BENCH_4's ``batch1`` number.

Usage::

    python -m benchmarks.run_shard --json              # full run
    python -m benchmarks.run_shard --json --quick      # CI-scale run
    python -m benchmarks.run_shard --json --smoke      # crash check
    python -m benchmarks.run_shard --json --enforce    # fail on regression
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks._timing import gc_controlled as _gc_controlled

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.runtime.process import OperatorProcess
from repro.streams.aggregate import AggregationOperator
from repro.streams.filter import FilterOperator
from repro.streams.shard import (
    ShardedOperatorAdapter,
    ShardMergeOperator,
    partition_index,
)
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

#: Shard counts the aggregation workloads are measured at.
SHARD_COUNTS = (1, 2, 4, 8)

#: Distinct group-by keys in the uniform workload.
STATIONS = 64

#: Tuples routed to the single hot station in the skewed workload.
HOT_FRACTION = 0.8

#: shards=8 speedup acceptance floors (vs shards=1).
SPEEDUP_FLOORS = {"aggregate_flush": 3.0, "aggregate_flush_skewed": 0.9}

#: ``process_receive`` may regress at most this much against BENCH_4.
REGRESSION_BOUND_PCT = 5.0

#: Flush interval fed to the operators (any value works; the clock is
#: virtual and the benchmark drives ``on_timer`` directly).
INTERVAL = 60.0

SITE = Point(34.69, 135.50)


def _make_tuple(i: int, station: str) -> SensorTuple:
    return SensorTuple(
        payload={"station": station, "temperature": 15.0 + (i % 13)},
        stamp=SttStamp(time=float(i), location=SITE),
        source="bench",
        seq=i,
    )


def _uniform_tuples(n: int) -> "list[SensorTuple]":
    return [_make_tuple(i, f"st-{i % STATIONS}") for i in range(n)]


def _skewed_tuples(n: int) -> "list[SensorTuple]":
    """HOT_FRACTION of the stream on one station, the rest uniform."""
    hot_every = round(1 / (1 - HOT_FRACTION))  # 1 cold tuple per this many
    return [
        _make_tuple(
            i,
            f"st-{i % (STATIONS - 1) + 1}" if i % hot_every == 0 else "st-hot",
        )
        for i in range(n)
    ]


def _make_agg() -> AggregationOperator:
    return AggregationOperator(
        interval=INTERVAL,
        attributes=["temperature"],
        function="AVG",
        group_by="station",
    )


# -- measurements -----------------------------------------------------------


def _epoch_cost_unsharded(tuples: "list[SensorTuple]") -> float:
    """Feed + flush busy time of the plain (unsharded) operator."""
    operator = _make_agg()
    on_tuple = operator.on_tuple
    with _gc_controlled():
        start = time.perf_counter()
        for tuple_ in tuples:
            on_tuple(tuple_)
        operator.on_timer(INTERVAL)
        return time.perf_counter() - start


def _epoch_cost_sharded(slices: "list[list[SensorTuple]]", repeat: int) -> float:
    """Critical path of one sharded epoch: max shard busy time + merge.

    Each shard runs on its own node, so their busy times overlap and the
    epoch cost is the *slowest shard* plus the downstream merge.  Every
    component is measured at its best-of-``repeat`` sustained cost before
    the max is taken — taking the max over one jittery pass would charge
    the sharded plan for scheduler noise the unsharded baseline (also
    best-of-``repeat``) gets to shrug off.
    """
    count = len(slices)

    def shard_cost(k: int) -> float:
        best = float("inf")
        for _ in range(repeat):
            adapter = ShardedOperatorAdapter(
                _make_agg(), shard_index=k, shard_count=count
            )
            on_tuple = adapter.on_tuple
            with _gc_controlled():
                start = time.perf_counter()
                for tuple_ in slices[k]:
                    on_tuple(tuple_)
                adapter.on_timer(INTERVAL)
                best = min(best, time.perf_counter() - start)
        return best

    slowest_shard = max(shard_cost(k) for k in range(count))

    envelopes = []
    for k in range(count):
        adapter = ShardedOperatorAdapter(
            _make_agg(), shard_index=k, shard_count=count
        )
        for tuple_ in slices[k]:
            adapter.on_tuple(tuple_)
        envelopes.extend(adapter.on_timer(INTERVAL))

    def merge_cost() -> float:
        merge = ShardMergeOperator(count, "aggregate")
        with _gc_controlled():
            start = time.perf_counter()
            for envelope in envelopes:
                merge.on_tuple(envelope)
            return time.perf_counter() - start

    return slowest_shard + min(merge_cost() for _ in range(repeat))


def _partition(
    tuples: "list[SensorTuple]", count: int
) -> "list[list[SensorTuple]]":
    slices: "list[list[SensorTuple]]" = [[] for _ in range(count)]
    for tuple_ in tuples:
        slices[partition_index((tuple_.get("station"),), count)].append(tuple_)
    return slices


def bench_aggregate_flush(
    tuples: "list[SensorTuple]", repeat: int = 9
) -> dict:
    """Epoch throughput (tuples/sec) per shard count, best of N epochs."""
    rates = {}
    n = len(tuples)
    for count in SHARD_COUNTS:
        if count == 1:
            cost = min(_epoch_cost_unsharded(tuples) for _ in range(repeat))
        else:
            cost = _epoch_cost_sharded(_partition(tuples, count), repeat)
        rates[f"shards{count}"] = round(n / cost)
    return rates


def bench_process_receive(iterations: int, repeat: int = 8) -> dict:
    """The exact BENCH_4 ``process_receive`` batch=1 workload.

    Compared against the *recorded* BENCH_4 rate, so this measurement is
    cross-session: best-of-8 (vs best-of-3 elsewhere) to shrug off
    transient machine noise that would otherwise read as a regression.
    """

    def feed(n):
        topo = Topology()
        for i in range(8):
            topo.add_node(f"n{i}")
        for i in range(7):
            topo.add_link(f"n{i}", f"n{i + 1}", latency=0.001)
        sim = NetworkSimulator(topology=topo)
        process = OperatorProcess(
            process_id="bench:filter",
            operator=FilterOperator("temperature > 24"),
            node_id="n0",
            netsim=sim,
        )
        process.start()
        tuple_ = _make_tuple(0, "umeda")
        receive = process.receive
        for _ in range(n):
            receive(tuple_)

    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        feed(iterations)
        best = min(best, time.perf_counter() - start)
    return {"tuples_per_sec": round(iterations / best)}


# -- runner -----------------------------------------------------------------


def _speedups(rates: dict) -> dict:
    base = rates.get("shards1", 0)
    out = {}
    for count in SHARD_COUNTS[1:]:
        rate = rates.get(f"shards{count}")
        if base and rate:
            out[f"shards{count}_speedup"] = round(rate / base, 2)
    return out


def _vs_bench4(rates: dict, bench4: "dict | None") -> dict:
    """Regression of the per-tuple dispatch rate vs BENCH_4's batch=1."""
    if not bench4:
        return {}
    recorded = bench4.get("results", {}).get("process_receive", {}).get(
        "batch1"
    )
    measured = rates.get("tuples_per_sec")
    if not recorded or not measured:
        return {}
    return {
        "bench4_batch1_tuples_per_sec": recorded,
        "vs_bench4_pct": round((recorded - measured) / recorded * 100.0, 1),
    }


def run(scale: int = 1, bench4: "dict | None" = None) -> dict:
    # Sized under the 100k TupleCache bound so neither the unsharded
    # baseline nor any shard evicts mid-epoch: the speedups then measure
    # CPU scale-out alone.  (Past the bound sharding *also* wins on
    # memory — the unsharded node starts evicting window tuples — but
    # that conflates two effects in one number.)
    epoch_tuples = 96_000 // scale
    receive_iters = 100_000 // scale

    uniform = bench_aggregate_flush(_uniform_tuples(epoch_tuples))
    uniform["stations"] = STATIONS
    uniform.update(_speedups(uniform))

    skewed = bench_aggregate_flush(_skewed_tuples(epoch_tuples))
    skewed["hot_fraction"] = HOT_FRACTION
    skewed.update(_speedups(skewed))

    receive = bench_process_receive(receive_iters)
    receive.update(_vs_bench4(receive, bench4))

    return {
        "bench": "sharded-blocking-operators",
        "issue": 5,
        "scale_divisor": scale,
        "unit": "tuples/sec of epoch wall-clock (max shard + merge)",
        "shard_counts": list(SHARD_COUNTS),
        "notes": {
            "aggregate_flush": f"grouped AVG over {STATIONS} stations, "
                               "uniform keys; epoch = feed window + flush "
                               "(+ merge when sharded)",
            "aggregate_flush_skewed": f"{HOT_FRACTION:.0%} of tuples on one "
                                      "hot station; the owning shard is the "
                                      "critical path",
            "process_receive": "exact BENCH_4 batch=1 dispatch workload — "
                               "the sharding plane must cost nothing when "
                               "unused",
            "acceptance": "shards8 >= 3x on aggregate_flush; skewed shards8 "
                          ">= 0.9x (no collapse); process_receive within "
                          f"{REGRESSION_BOUND_PCT}% of BENCH_4",
        },
        "results": {
            "aggregate_flush": uniform,
            "aggregate_flush_skewed": skewed,
            "process_receive": receive,
        },
    }


def check(report: dict) -> "list[str]":
    """Acceptance violations in a **full-scale** report."""
    problems = []
    results = report["results"]
    for path, floor in SPEEDUP_FLOORS.items():
        speedup = results.get(path, {}).get("shards8_speedup")
        if speedup is not None and speedup < floor:
            problems.append(
                f"{path}: shards8 speedup {speedup}x is below the "
                f"{floor}x floor"
            )
    regression = results.get("process_receive", {}).get("vs_bench4_pct")
    if regression is not None and regression > REGRESSION_BOUND_PCT:
        problems.append(
            f"process_receive: regressed {regression}% vs BENCH_4 "
            f"(bound {REGRESSION_BOUND_PCT}%)"
        )
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_5.json next to the repo root")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI-scale; rates "
                             "remain comparable within headroom bounds)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (crash check only)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when acceptance bounds are violated "
                             "(meaningful only at full scale)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_5.json)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    bench4 = None
    bench4_path = root / "BENCH_4.json"
    if bench4_path.exists():
        bench4 = json.loads(bench4_path.read_text())

    scale = 40 if args.smoke else 8 if args.quick else 1
    report = run(scale=scale, bench4=bench4)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or root / "BENCH_5.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")
    if args.enforce and scale == 1:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            sys.exit(1)
        print("acceptance bounds hold")


if __name__ == "__main__":
    main()
