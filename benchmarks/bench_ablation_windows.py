"""Ablation A2 — blocking intervals t and culling rates r.

Table 1 parameterises the blocking operators by a time interval t and the
cull operators by a reducing rate r.  This ablation sweeps both:

- aggregation interval t: output rate must be 1/t while input is fixed,
  and the per-window cache grows with t (memory-latency trade-off);
- trigger check interval t against a fixed 1-hour lookback: activation
  lag shrinks as checks get denser;
- cull rate r: surviving volume is 1/r of the in-region traffic.

Expected shape: output counts scale as duration/t and volume/r exactly
(deterministic operators), activation lag is bounded by the check
interval.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import make_batch
from repro.streams.aggregate import AggregationOperator
from repro.streams.cull import CullTimeOperator
from repro.streams.trigger import TriggerOnOperator

DURATION = 4 * 3600.0
#: One reading per virtual minute over the full duration.
BATCH = [
    tuple_.with_stamp(replace(tuple_.stamp, time=index * 60.0))
    for index, tuple_ in enumerate(
        make_batch(int(DURATION // 60), temperature_base=20.0)
    )
]


def run_aggregation(interval: float) -> tuple:
    op = AggregationOperator(interval=interval, attributes=["temperature"],
                             function="AVG")
    outputs = 0
    peak_cache = 0
    next_flush = interval
    for tuple_ in BATCH:
        while tuple_.stamp.time >= next_flush:
            outputs += len(op.on_timer(next_flush))
            next_flush += interval
        op.on_tuple(tuple_)
        peak_cache = max(peak_cache, len(op.cache))
    outputs += len(op.on_timer(next_flush))
    return outputs, peak_cache


@pytest.mark.benchmark(group="ablation-interval")
@pytest.mark.parametrize("interval", [300.0, 900.0, 3600.0])
def test_aggregation_interval_sweep(benchmark, interval):
    outputs, peak_cache = benchmark(lambda: run_aggregation(interval))
    benchmark.extra_info.update({
        "interval_s": interval,
        "windows_emitted": outputs,
        "peak_cache_tuples": peak_cache,
    })
    expected_windows = DURATION / interval
    assert abs(outputs - expected_windows) <= 1
    assert peak_cache <= interval / 60 + 1  # one tuple per minute


def trigger_lag(check_interval: float) -> float:
    """Virtual time between the condition becoming true and activation."""
    op = TriggerOnOperator(interval=check_interval, window=3600.0,
                           condition="avg_temperature > 25",
                           targets=("rain-1",))
    fired_at = {}
    op.control = lambda command: fired_at.setdefault("t", command.issued_at)
    # One hour cool, then an abrupt step to hot at t=3600.
    step_time = 3600.0
    now = 0.0
    next_check = check_interval
    while now < 4 * 3600.0 and "t" not in fired_at:
        while next_check <= now:
            op.on_timer(next_check)
            next_check += check_interval
        temperature = 20.0 if now < step_time else 30.0
        tuple_ = make_batch(1, start_time=now,
                            temperature_base=temperature)[0]
        op.on_tuple(tuple_)
        now += 60.0
    while "t" not in fired_at and next_check < 4 * 3600.0:
        op.on_timer(next_check)
        next_check += check_interval
    return fired_at["t"] - step_time


@pytest.mark.benchmark(group="ablation-trigger-interval")
@pytest.mark.parametrize("check_interval", [60.0, 300.0, 1800.0])
def test_trigger_activation_lag(benchmark, check_interval):
    lag = benchmark(lambda: trigger_lag(check_interval))
    benchmark.extra_info.update({
        "check_interval_s": check_interval,
        "activation_lag_s": lag,
    })
    # Lag is the time for the 1-h window mean to cross the threshold plus
    # at most one check interval of quantisation.
    assert lag <= 3600.0 + check_interval


@pytest.mark.benchmark(group="ablation-cull")
@pytest.mark.parametrize("rate", [1, 2, 5, 20])
def test_cull_rate_sweep(benchmark, rate):
    def run():
        op = CullTimeOperator(rate=rate, start=0.0, end=1e12)
        return sum(len(op.on_tuple(t)) for t in BATCH)

    survivors = benchmark(run)
    benchmark.extra_info.update({
        "rate": rate,
        "survivors": survivors,
        "reduction": 1.0 - survivors / len(BATCH),
    })
    assert survivors == len(BATCH) // rate


def test_windows_ablation_rows(capsys):
    with capsys.disabled():
        print("\n== Ablation A2: interval and rate sweeps ==")
        print("  aggregation: interval -> windows, peak cache")
        for interval in (300.0, 900.0, 3600.0):
            outputs, cache = run_aggregation(interval)
            print(f"    t={interval:6.0f}s  windows={outputs:4d}  "
                  f"peak-cache={cache:4d}")
        print("  trigger: check interval -> activation lag after heat step")
        for check in (60.0, 300.0, 1800.0):
            print(f"    t={check:6.0f}s  lag={trigger_lag(check):7.0f}s")
        print("  cull: rate -> surviving fraction")
        for rate in (1, 2, 5, 20):
            op = CullTimeOperator(rate=rate, start=0.0, end=1e12)
            kept = sum(len(op.on_tuple(t)) for t in BATCH)
            print(f"    r={rate:3d}  kept {kept / len(BATCH):.1%}")
