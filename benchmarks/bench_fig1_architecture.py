"""Experiment F1 — Figure 1: the full architecture, end to end.

Runs one virtual day of the Section 3 scenario through every layer of
Figure 1 — sensors -> distributed pub-sub -> conceptual dataflow ->
translator -> SCN placement -> operator processes on network nodes ->
monitor -> warehouse/Sticker sinks — and reports the tuple accounting at
each stage plus the wall-clock cost of the whole simulation.

Expected shape: tuple counts shrink monotonically through the gating and
filtering stages (raw sensor emissions > delivered tuples > filtered
tuples > warehoused facts), and every layer's counters are consistent
with its neighbours'.
"""

import pytest

from repro.scenario import build_stack, osaka_scenario_flow

VIRTUAL_HOURS = 18.0


def run_architecture(hot: bool = True, seed: int = 7):
    stack = build_stack(hot=hot, seed=seed)
    flow = osaka_scenario_flow(stack)
    deployment = stack.executor.deploy(flow)
    stack.run_until(VIRTUAL_HOURS * 3600.0)
    return stack, deployment


@pytest.mark.benchmark(group="fig1-architecture")
def test_end_to_end_day(benchmark):
    stack, deployment = benchmark.pedantic(
        run_architecture, rounds=1, iterations=1
    )

    emitted = sum(sensor.emitted for sensor in stack.fleet)
    delivered = stack.netsim.stats.messages_delivered
    suppressed = stack.broker_network.data_messages_suppressed
    torrential_in = deployment.process("torrential").operator.stats.tuples_in
    torrential_out = deployment.process("torrential").operator.stats.tuples_out
    warehoused = len(stack.warehouse)

    benchmark.extra_info.update({
        "virtual_hours": VIRTUAL_HOURS,
        "sensor_emissions": emitted,
        "network_deliveries": delivered,
        "suppressed_at_source": suppressed,
        "torrential_in": torrential_in,
        "torrential_out": torrential_out,
        "warehoused_facts": warehoused,
        "sticker_tuples": stack.sticker.pushed,
        "link_bytes": stack.netsim.total_link_bytes(),
        "mean_delivery_delay_s": stack.netsim.stats.mean_delay,
    })

    # The funnel narrows at every stage.
    assert emitted > 0
    assert suppressed > 0                      # trigger gating saved traffic
    assert torrential_in <= delivered
    assert torrential_out <= torrential_in
    assert warehoused == torrential_out        # the sink got every survivor
    assert stack.sticker.pushed > 0


def test_stage_accounting_rows(capsys):
    stack, deployment = run_architecture()
    rows = [
        ("sensor emissions", sum(s.emitted for s in stack.fleet)),
        ("pub-sub deliveries initiated", stack.broker_network.data_messages_sent),
        ("suppressed at source (gating)",
         stack.broker_network.data_messages_suppressed),
        ("network messages delivered", stack.netsim.stats.messages_delivered),
        ("trigger tuples observed",
         deployment.process("hot-hour-trigger").operator.stats.tuples_in),
        ("torrential filter in",
         deployment.process("torrential").operator.stats.tuples_in),
        ("torrential filter out",
         deployment.process("torrential").operator.stats.tuples_out),
        ("warehouse facts", len(stack.warehouse)),
        ("sticker tuples", stack.sticker.pushed),
        ("traffic collected",
         len(deployment.collected("traffic-collector"))),
    ]
    with capsys.disabled():
        print("\n== Figure 1: tuple accounting through the architecture ==")
        for label, value in rows:
            print(f"  {label:34s} {value:>10}")
    counts = dict(rows)
    assert counts["torrential filter out"] == counts["warehouse facts"]
