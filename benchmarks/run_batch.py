"""Micro-batch data-plane benchmark (writes ``BENCH_4.json``).

Measures the three framing-dominated hot paths at batch sizes 1, 8, and
32.  All rates are **tuples/second** regardless of batch size, so the
numbers answer the only question that matters: how many readings does the
same wall-clock budget move?

- ``publish_fanout``  — broker fan-out to 20 subscriptions.  batch=1 is
  the exact ``run_obs`` / ``run_hotpath`` workload (``publish_data`` per
  reading); batch=N publishes the same readings through
  ``publish_batch`` in runs of N;
- ``send_deliver``    — full simulator cycle on the static line-8
  topology: ``send`` per payload vs ``send_batch`` per run of N;
- ``process_receive`` — operator-process dispatch of a filter, fed
  directly: ``receive`` per tuple vs ``receive_batch`` per run of N.

Against ``BENCH_3.json`` (the ``none`` configuration of the shared
workloads) the report states the batch=1 regression — the acceptance
bound is under 5%, i.e. the batch path must cost nothing when unused —
and the batch=32 speedups (acceptance: >= 3x on publish_fanout, >= 2x on
send_deliver).

Usage::

    python -m benchmarks.run_batch --json              # full run
    python -m benchmarks.run_batch --json --smoke      # CI crash check
    python -m benchmarks.run_batch --json --enforce    # fail on regression
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks._batches import line_topology as _line_topology
from benchmarks._batches import make_tuple
from benchmarks._timing import best_rate as _best_rate
from repro.network.netsim import NetworkSimulator
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.process import OperatorProcess
from repro.schema.schema import StreamSchema
from repro.streams.filter import FilterOperator
from repro.streams.tuple import SensorTuple, TupleBatch, estimate_batch_size_bytes
from repro.stt.spatial import Point

#: Batch sizes every path is measured at (1 = the legacy per-tuple path).
BATCH_SIZES = (1, 8, 32)

#: batch=32 speedup acceptance floors per workload (vs batch=1).
SPEEDUP_FLOORS = {"publish_fanout": 3.0, "send_deliver": 2.0}

#: batch=1 may regress at most this much against BENCH_3's ``none`` runs.
REGRESSION_BOUND_PCT = 5.0


def _make_tuple(i: int) -> SensorTuple:
    # BENCH_4's historical workload constants (see _batches.py).
    return make_tuple(i, base=25.0, modulo=7)


# -- measurements -----------------------------------------------------------


def bench_publish_fanout(iterations: int, subscribers: int = 20) -> dict:
    """Broker fan-out, per batch size (tuples/sec)."""

    def fanout(n, batch_size=1):
        sim = NetworkSimulator(topology=_line_topology())
        network = BrokerNetwork(netsim=sim)
        for i in range(subscribers):
            network.subscribe(
                f"n{i % 8}",
                SubscriptionFilter(),
                lambda tuple_: None,
            )
        network.publish(SensorMetadata(
            sensor_id="bench-sensor",
            sensor_type="weather",
            schema=StreamSchema.build(
                {"temperature": "float"}, themes=("weather/temperature",)
            ),
            frequency=1.0,
            location=Point(34.69, 135.50),
            node_id="n0",
        ))
        reading = _make_tuple(0)
        run = sim.clock.run
        if batch_size == 1:
            # The exact BENCH_3 workload: one publish_data per reading.
            publish_data = network.publish_data
            per_cycle = 50
            done = 0
            while done < n:
                for _ in range(per_cycle):
                    publish_data("bench-sensor", reading)
                run()
                done += per_cycle
            return
        batch = TupleBatch.of([reading] * batch_size)
        publish_batch = network.publish_batch
        per_cycle = max(1, 50 // batch_size)
        done = 0
        while done < n:
            for _ in range(per_cycle):
                publish_batch("bench-sensor", batch)
            run()
            done += per_cycle * batch_size

    return {
        "subscribers": subscribers,
        **{
            f"batch{size}": round(
                _best_rate(lambda n, s=size: fanout(n, s), iterations)
            )
            for size in BATCH_SIZES
        },
    }


def bench_send_deliver(iterations: int) -> dict:
    """Full simulator cycle, per batch size (tuples/sec)."""

    def cycle(n, batch_size=1):
        sim = NetworkSimulator(topology=_line_topology())
        sink = lambda payload: None
        run = sim.clock.run
        if batch_size == 1:
            send = sim.send
            per_cycle = 500
            done = 0
            while done < n:
                for _ in range(per_cycle):
                    send("n0", "n7", 1, 100.0, sink)
                run()
                done += per_cycle
            return
        batch = TupleBatch.of([_make_tuple(i) for i in range(batch_size)])
        size_bytes = estimate_batch_size_bytes(batch)
        send_batch = sim.send_batch
        per_cycle = max(1, 500 // batch_size)
        done = 0
        while done < n:
            for _ in range(per_cycle):
                send_batch("n0", "n7", batch, size_bytes, sink)
            run()
            done += per_cycle * batch_size

    return {
        f"batch{size}": round(
            _best_rate(lambda n, s=size: cycle(n, s), iterations)
        )
        for size in BATCH_SIZES
    }


def bench_process_receive(iterations: int) -> dict:
    """Operator-process dispatch, per batch size (tuples/sec)."""

    def feed(n, batch_size=1):
        sim = NetworkSimulator(topology=_line_topology())
        process = OperatorProcess(
            process_id="bench:filter",
            operator=FilterOperator("temperature > 24"),
            node_id="n0",
            netsim=sim,
        )
        process.start()
        tuple_ = _make_tuple(0)
        if batch_size == 1:
            receive = process.receive
            for _ in range(n):
                receive(tuple_)
            return
        batch = TupleBatch.of([tuple_] * batch_size)
        receive_batch = process.receive_batch
        for _ in range(max(1, n // batch_size)):
            receive_batch(batch)

    return {
        f"batch{size}": round(
            _best_rate(lambda n, s=size: feed(n, s), iterations)
        )
        for size in BATCH_SIZES
    }


# -- runner -----------------------------------------------------------------


def _speedups(rates: dict) -> dict:
    base = rates.get("batch1", 0)
    out = {}
    for size in BATCH_SIZES[1:]:
        rate = rates.get(f"batch{size}")
        if base and rate:
            out[f"batch{size}_speedup"] = round(rate / base, 2)
    return out


def _vs_bench3(rates: dict, bench3: "dict | None", path: str) -> dict:
    """Regression of the batch=1 rate vs BENCH_3's ``none`` number."""
    if not bench3:
        return {}
    recorded = bench3.get("results", {}).get(path, {}).get("none")
    if not recorded or not rates.get("batch1"):
        return {}
    return {
        "bench3_none_ops_per_sec": recorded,
        "batch1_vs_bench3_pct": round(
            (recorded - rates["batch1"]) / recorded * 100.0, 1
        ),
    }


def run(smoke: bool = False, bench3: "dict | None" = None) -> dict:
    scale = 20 if smoke else 1
    fanout_iters = 2_000 // scale
    send_iters = 50_000 // scale
    receive_iters = 100_000 // scale

    results = {}
    for path, rates in (
        ("publish_fanout", bench_publish_fanout(fanout_iters)),
        ("send_deliver", bench_send_deliver(send_iters)),
        ("process_receive", bench_process_receive(receive_iters)),
    ):
        rates.update(_speedups(rates))
        rates.update(_vs_bench3(rates, bench3, path))
        results[path] = rates

    return {
        "bench": "micro-batch",
        "issue": 4,
        "smoke": smoke,
        "topology": "line-8 (static)",
        "unit": "tuples/sec at every batch size",
        "batch_sizes": list(BATCH_SIZES),
        "notes": {
            "publish_fanout": "broker fan-out to 20 subscriptions; "
                              "batch=1 is the exact BENCH_3 workload",
            "send_deliver": "full simulator cycle (route, account, "
                            "schedule, deliver) n0 -> n7",
            "process_receive": "operator process dispatch of a filter, "
                               "fed directly (no network hop)",
            "acceptance": "batch32 >= 3x on publish_fanout and >= 2x on "
                          "send_deliver; batch=1 within 5% of BENCH_3",
        },
        "results": results,
    }


def check(report: dict) -> "list[str]":
    """Acceptance violations in a **full** (non-smoke) report."""
    problems = []
    results = report["results"]
    for path, floor in SPEEDUP_FLOORS.items():
        speedup = results.get(path, {}).get("batch32_speedup")
        if speedup is not None and speedup < floor:
            problems.append(
                f"{path}: batch32 speedup {speedup}x is below the "
                f"{floor}x floor"
            )
    for path, rates in results.items():
        regression = rates.get("batch1_vs_bench3_pct")
        if regression is not None and regression > REGRESSION_BOUND_PCT:
            problems.append(
                f"{path}: batch=1 regressed {regression}% vs BENCH_3 "
                f"(bound {REGRESSION_BOUND_PCT}%)"
            )
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_4.json next to the repo root")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (CI crash check)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when acceptance bounds are violated "
                             "(meaningful only without --smoke)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_4.json)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    bench3 = None
    bench3_path = root / "BENCH_3.json"
    if bench3_path.exists():
        bench3 = json.loads(bench3_path.read_text())

    report = run(smoke=args.smoke, bench3=bench3)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or root / "BENCH_4.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")
    if args.enforce and not args.smoke:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            sys.exit(1)
        print("acceptance bounds hold")


if __name__ == "__main__":
    main()
