"""Ablation A1 — what in-network, event-driven ETL buys.

Three configurations run the same logical workload (per-station filtering
of temperature streams in a cool regime, where the filter passes almost
nothing):

1. **streamloader** — workload/distance-aware SCN placement: filters run
   on the edge nodes that manage their sensors;
2. **centralized** — the identical runtime with every operator pinned to
   the hub (collect-then-filter);
3. **batch** — the offline baseline: raw collection at the hub for the
   whole period, ETL at batch close.

Metrics: bytes moved across network links, and data staleness (how old a
reading is when it becomes available to analysis).

Expected shape: streamloader << centralized ≈ batch on link bytes (raw
streams never leave their edge); batch >> both on staleness (half the
batch period vs sub-second).
"""

import pytest

from repro.baselines.batch_etl import BatchEtlPipeline
from repro.baselines.centralized import CentralizedScnController
from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.network.topology import Topology
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack

HOURS = 6.0


def per_station_flow(stack) -> Dataflow:
    flow = Dataflow("per-station")
    for index, metadata in enumerate(
        stack.broker_network.registry.by_type("temperature")
    ):
        src = flow.add_source(
            SubscriptionFilter(sensor_ids=(metadata.sensor_id,)),
            node_id=f"src-{index}",
        )
        hot = flow.add_operator(FilterSpec("temperature > 24"),
                                node_id=f"hot-{index}")
        out = flow.add_sink("collector", node_id=f"out-{index}")
        flow.connect(src, hot)
        flow.connect(hot, out)
    return flow


def run_streamloader():
    stack = build_stack(topology=Topology.star(leaf_count=3), hot=False)
    stack.executor.deploy(per_station_flow(stack))
    stack.run_until(HOURS * 3600.0)
    return stack.netsim.total_link_bytes(), 1.0  # staleness ~ delivery delay


def run_centralized():
    topo = Topology.star(leaf_count=3)
    stack = build_stack(topology=topo,
                        scn=CentralizedScnController(topo, "hub"), hot=False)
    stack.executor.deploy(per_station_flow(stack))
    stack.run_until(HOURS * 3600.0)
    return stack.netsim.total_link_bytes(), 1.0


def run_batch():
    stack = build_stack(topology=Topology.star(leaf_count=3), hot=False)
    flow = Dataflow("batch")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    hot = flow.add_operator(FilterSpec("temperature > 24"), node_id="hot")
    dw = flow.add_sink("warehouse", node_id="dw")
    flow.connect(src, hot)
    flow.connect(hot, dw)
    pipeline = BatchEtlPipeline(stack.netsim, stack.broker_network, flow,
                                collection_node="hub",
                                warehouse=stack.warehouse)
    pipeline.start_collection()
    stack.run_until(HOURS * 3600.0)
    report = pipeline.close_batch()
    return report.link_bytes, report.mean_staleness


@pytest.mark.benchmark(group="ablation-placement")
def test_streamloader_in_network(benchmark):
    link_bytes, staleness = benchmark.pedantic(run_streamloader, rounds=1,
                                               iterations=1)
    benchmark.extra_info.update(
        {"link_bytes": link_bytes, "mean_staleness_s": staleness}
    )


@pytest.mark.benchmark(group="ablation-placement")
def test_centralized_streaming(benchmark):
    link_bytes, staleness = benchmark.pedantic(run_centralized, rounds=1,
                                               iterations=1)
    benchmark.extra_info.update(
        {"link_bytes": link_bytes, "mean_staleness_s": staleness}
    )


@pytest.mark.benchmark(group="ablation-placement")
def test_batch_offline(benchmark):
    link_bytes, staleness = benchmark.pedantic(run_batch, rounds=1,
                                               iterations=1)
    benchmark.extra_info.update(
        {"link_bytes": link_bytes, "mean_staleness_s": staleness}
    )


def test_placement_comparison_rows(capsys):
    sl_bytes, sl_stale = run_streamloader()
    ct_bytes, ct_stale = run_centralized()
    bt_bytes, bt_stale = run_batch()
    with capsys.disabled():
        print(f"\n== Ablation A1: in-network vs centralized vs batch "
              f"({HOURS:.0f} virtual hours, cool regime) ==")
        print(f"  {'configuration':16s} {'link bytes':>12s} {'staleness':>12s}")
        print(f"  {'streamloader':16s} {sl_bytes:>12.0f} {sl_stale:>10.1f} s")
        print(f"  {'centralized':16s} {ct_bytes:>12.0f} {ct_stale:>10.1f} s")
        print(f"  {'batch':16s} {bt_bytes:>12.0f} {bt_stale:>10.1f} s")
        if sl_bytes > 0:
            print(f"  in-network saves {1 - sl_bytes / ct_bytes:.0%} of "
                  f"centralized traffic")
    # The paper's implicit claims, as assertions.
    assert sl_bytes < 0.5 * ct_bytes
    assert bt_stale > 1000.0          # hours-scale staleness for batch
