"""Operator-fusion before/after benchmark runner (writes ``BENCH_7.json``).

Measures what fusing a chain of non-blocking operators into one process
(PR 7) buys on the deployed data plane.  The workload is the acceptance
chain — filter -> transform -> validate -> virtual-property — and the
measured quantity is the *chain traversal cost*: everything from the
head process receiving a reading to the tail member emitting it.

- **unfused baseline**: four :class:`OperatorProcess` instances, one per
  node along a line topology — the spread placement an unfused chain
  gets from the planner — so every intermediate hop pays the real
  transmit path (size estimate, routing, link accounting, scheduling,
  delivery dispatch).
- **fused variant**: one process hosting the whole chain as a
  :class:`~repro.streams.fused.FusedOperator` — a tuple traverses all
  members in one Python call stack with *zero* intermediate transmits,
  which is exactly the tentpole claim under test.

Downstream consumption (a sink hop) is identical in both variants, so
it is excluded from the measurement; sink byte-parity is pinned by
``tests/property/test_prop_fusion_parity.py`` and the determinism
audit.  Before any rate is believed, the per-member ``OperatorStats``
of the two variants are asserted identical.

- ``chain_dispatch``   — tuples/sec through the 4-op chain, fused vs
  unfused, at batch=1 and batch=32.  Acceptance: fused >= 3x unfused at
  batch=1, >= 1.5x at batch=32 (batching already amortises the hops, so
  fusion buys less there).
- ``process_receive``  — the exact BENCH_4/BENCH_5 per-tuple dispatch
  workload, re-measured to show the fusion plane costs nothing when
  unused.  Compared against BENCH_5's recorded number — BENCH_6 is an
  epoch-throughput benchmark and records no per-tuple dispatch rate, so
  BENCH_5 holds the latest record of this workload.  Acceptance: within
  5% (the hot-path work in this PR makes it considerably *faster*).

Usage::

    python -m benchmarks.run_fusion --json              # full run
    python -m benchmarks.run_fusion --json --quick      # CI-scale run
    python -m benchmarks.run_fusion --json --smoke      # crash check
    python -m benchmarks.run_fusion --json --enforce    # fail on regression
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks._batches import line_sim
from benchmarks._batches import make_tuple as _make_tuple
from benchmarks._timing import gc_controlled as _gc_controlled

from repro.network.netsim import NetworkSimulator
from repro.runtime.process import OperatorProcess
from repro.streams.filter import FilterOperator
from repro.streams.fused import FusedOperator
from repro.streams.transform import TransformOperator, ValidateOperator
from repro.streams.tuple import TupleBatch
from repro.streams.virtual import VirtualPropertyOperator

#: Batch sizes the chain is measured at (1 = the per-tuple path).
BATCH_SIZES = (1, 32)

#: fused speedup acceptance floors per batch size (vs unfused).
SPEEDUP_FLOORS = {"batch1": 3.0, "batch32": 1.5}

#: ``process_receive`` may regress at most this much against BENCH_5.
REGRESSION_BOUND_PCT = 5.0

def _chain_members() -> "list":
    """The acceptance chain: filter -> transform -> validate -> virtual."""
    return [
        FilterOperator("temperature > -100", name="keep"),
        TransformOperator(
            assignments={"fahrenheit": "temperature * 1.8 + 32"},
            name="to-f",
        ),
        ValidateOperator(["temperature > -273"], name="check"),
        VirtualPropertyOperator("double_temp", "temperature * 2",
                                name="virt"),
    ]


def _line_sim(node_count: int) -> NetworkSimulator:
    return line_sim(node_count)


def _deploy_chain(fuse: bool):
    """The chain as deployed processes.

    Unfused: one process per member, spread one-per-node along a line —
    the placement an unfused chain gets, so each hop is a real transmit.
    Fused: one process hosting the whole chain on a single node.

    Returns ``(sim, head_process, members)``.
    """
    members = _chain_members()
    if fuse:
        sim = _line_sim(1)
        head = OperatorProcess(
            process_id="bench:" + "+".join(m.name for m in members),
            operator=FusedOperator(members),
            node_id="n0", netsim=sim,
        )
        processes = [head]
    else:
        sim = _line_sim(len(members))
        processes = [
            OperatorProcess(process_id=f"bench:{member.name}",
                            operator=member, node_id=f"n{index}", netsim=sim)
            for index, member in enumerate(members)
        ]
        for upstream, downstream in zip(processes, processes[1:]):
            upstream.add_route(downstream)
        head = processes[0]
    for process in processes:
        process.start()
    return sim, head, members


def _chain_cost(fuse: bool, iterations: int, batch: int):
    """One timed pass: feed + drain.

    Returns ``(seconds, per-member stats snapshots)``.
    """
    sim, head, members = _deploy_chain(fuse)
    tuples = [_make_tuple(i) for i in range(iterations)]
    with _gc_controlled():
        start = time.perf_counter()
        if batch == 1:
            receive = head.receive
            for tuple_ in tuples:
                receive(tuple_)
        else:
            receive_batch = head.receive_batch
            for at in range(0, iterations, batch):
                receive_batch(TupleBatch.of(tuples[at:at + batch]))
        sim.clock.run()
        cost = time.perf_counter() - start
    if members[-1].stats.tuples_out != iterations:
        raise AssertionError(
            f"chain lost tuples (fuse={fuse}): "
            f"{members[-1].stats.tuples_out} of {iterations} emerged"
        )
    return cost, [member.stats.snapshot() for member in members]


def bench_chain_dispatch(iterations: int, repeat: int = 7) -> dict:
    """End-to-end chain throughput, fused vs unfused, per batch size.

    Passes are *interleaved* (unfused, fused, unfused, fused, ...) so a
    drifting machine cannot systematically favour whichever variant
    happened to run in the quieter block; best-of-N per variant then
    discards the noisy passes on both sides symmetrically.
    """
    out: dict = {"chain": [m.name for m in _chain_members()]}
    for batch in BATCH_SIZES:
        costs = {"unfused": float("inf"), "fused": float("inf")}
        stats: dict = {}
        for _ in range(repeat):
            for fuse in (False, True):
                key = "fused" if fuse else "unfused"
                cost, member_stats = _chain_cost(fuse, iterations, batch)
                costs[key] = min(costs[key], cost)
                stats[key] = member_stats
        # A collapse guard before any rate is believed: every member must
        # have done identical work in both variants.
        if stats["fused"] != stats["unfused"]:
            raise AssertionError(
                f"member-stats parity broken at batch={batch}: {stats}"
            )
        out[f"unfused_batch{batch}"] = round(iterations / costs["unfused"])
        out[f"fused_batch{batch}"] = round(iterations / costs["fused"])
        out[f"speedup_batch{batch}"] = round(
            costs["unfused"] / costs["fused"], 2
        )
    return out


def bench_process_receive(iterations: int, repeat: int = 8) -> dict:
    """The exact BENCH_4/BENCH_5 ``process_receive`` batch=1 workload.

    Compared against the *recorded* BENCH_5 rate, so this measurement is
    cross-session: best-of-8 (vs best-of-5 elsewhere) to shrug off
    transient machine noise that would otherwise read as a regression.
    """

    def feed(n):
        sim = line_sim()
        process = OperatorProcess(
            process_id="bench:filter",
            operator=FilterOperator("temperature > 24"),
            node_id="n0",
            netsim=sim,
        )
        process.start()
        tuple_ = _make_tuple(0)
        receive = process.receive
        for _ in range(n):
            receive(tuple_)

    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        feed(iterations)
        best = min(best, time.perf_counter() - start)
    return {"tuples_per_sec": round(iterations / best)}


# -- runner -----------------------------------------------------------------


def _vs_bench5(rates: dict, bench5: "dict | None") -> dict:
    """Regression of the per-tuple dispatch rate vs BENCH_5's record."""
    if not bench5:
        return {}
    recorded = bench5.get("results", {}).get("process_receive", {}).get(
        "tuples_per_sec"
    )
    measured = rates.get("tuples_per_sec")
    if not recorded or not measured:
        return {}
    return {
        "bench5_tuples_per_sec": recorded,
        "vs_bench5_pct": round((recorded - measured) / recorded * 100.0, 1),
    }


def run(scale: int = 1, bench5: "dict | None" = None) -> dict:
    chain_iters = 60_000 // scale
    receive_iters = 100_000 // scale

    dispatch = bench_chain_dispatch(chain_iters)
    receive = bench_process_receive(receive_iters)
    receive.update(_vs_bench5(receive, bench5))

    return {
        "bench": "fused-operator-chains",
        "issue": 7,
        "scale_divisor": scale,
        "unit": "tuples/sec through the chain (feed + simulator drain)",
        "batch_sizes": list(BATCH_SIZES),
        "notes": {
            "chain_dispatch": "filter -> transform -> validate -> "
                              "virtual-property; unfused = 4 processes "
                              "spread one-per-node along a line (each hop "
                              "a real transmit), fused = 1 process, zero "
                              "intermediate transmits; per-member "
                              "OperatorStats asserted identical across "
                              "variants before rates are reported; passes "
                              "interleaved fused/unfused to defeat "
                              "machine drift",
            "process_receive": "exact BENCH_4/BENCH_5 batch=1 dispatch "
                               "workload — the fusion plane must cost "
                               "nothing when unused.  Compared vs BENCH_5: "
                               "BENCH_6 records epoch throughput only, so "
                               "BENCH_5 holds the latest record of this "
                               "workload",
            "acceptance": "fused >= 3x unfused at batch=1, >= 1.5x at "
                          "batch=32; process_receive within "
                          f"{REGRESSION_BOUND_PCT}% of BENCH_5",
        },
        "results": {
            "chain_dispatch": dispatch,
            "process_receive": receive,
        },
    }


def check(report: dict) -> "list[str]":
    """Acceptance violations in a **full-scale** report."""
    problems = []
    results = report["results"]
    dispatch = results.get("chain_dispatch", {})
    for key, floor in SPEEDUP_FLOORS.items():
        speedup = dispatch.get(f"speedup_{key}")
        if speedup is not None and speedup < floor:
            problems.append(
                f"chain_dispatch: fused speedup {speedup}x at {key} is "
                f"below the {floor}x floor"
            )
    regression = results.get("process_receive", {}).get("vs_bench5_pct")
    if regression is not None and regression > REGRESSION_BOUND_PCT:
        problems.append(
            f"process_receive: regressed {regression}% vs BENCH_5 "
            f"(bound {REGRESSION_BOUND_PCT}%)"
        )
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_7.json next to the repo root")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI-scale; speedup "
                             "ratios remain comparable)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (crash check only)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when acceptance bounds are violated "
                             "(meaningful only at full scale)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_7.json)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    bench5 = None
    bench5_path = root / "BENCH_5.json"
    if bench5_path.exists():
        bench5 = json.loads(bench5_path.read_text())

    scale = 40 if args.smoke else 8 if args.quick else 1
    report = run(scale=scale, bench5=bench5)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or root / "BENCH_7.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")
    if args.enforce and scale == 1:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            sys.exit(1)
        print("acceptance bounds hold")


if __name__ == "__main__":
    main()
