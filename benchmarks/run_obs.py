"""Observability overhead benchmark (writes ``BENCH_3.json``).

Measures the hot paths instrumented by the observability subsystem under
three configurations:

- ``none``        — no observability attached (the PR 2 configuration;
  the instrumentation costs one attribute read per call);
- ``sampling=0``  — metrics and lineage on, tracing sampled out
  (the recommended production setting);
- ``sampling=1``  — every tuple traced end to end (the test/debug
  setting: spans allocated on every hop).

Paths measured:

- ``send_deliver``   — full simulator cycle on the static line-8
  topology, the exact workload of ``run_hotpath.bench_send_deliver``;
- ``publish_fanout`` — broker ``publish_data`` to 20 subscriptions, the
  exact workload of ``run_hotpath.bench_publish_fanout``;
- ``process_receive`` — an :class:`OperatorProcess` hosting a filter,
  fed directly (operator dispatch + span recording, no network).

For the two workloads shared with ``BENCH_2.json``, the report also
states the regression of the ``sampling=0`` rate against the recorded
PR 2 numbers (acceptance bound: under 5%).

Usage::

    python -m benchmarks.run_obs --json            # full run
    python -m benchmarks.run_obs --json --smoke    # CI smoke (tiny)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.obs import Observability
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import SubscriptionFilter
from repro.runtime.process import OperatorProcess
from repro.schema.schema import StreamSchema
from repro.streams.filter import FilterOperator
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

#: The three configurations every path is measured under.
CONFIGS = ("none", "sampling0", "sampling1")


def _best_rate(fn, iterations: int, repeat: int = 3) -> float:
    """Best-of-N ops/sec for ``fn(iterations)``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(iterations)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def _make_obs(config: str) -> "Observability | None":
    if config == "none":
        return None
    return Observability(sampling=0.0 if config == "sampling0" else 1.0)


def _make_tuple(i: int) -> SensorTuple:
    return SensorTuple(
        payload={"station": "umeda", "temperature": 25.0 + (i % 7)},
        stamp=SttStamp(time=float(i), location=Point(34.69, 135.50)),
        source="bench",
        seq=i,
    )


def _line_topology() -> Topology:
    topo = Topology()
    for i in range(8):
        topo.add_node(f"n{i}")
    for i in range(7):
        topo.add_link(f"n{i}", f"n{i + 1}", latency=0.001)
    return topo


# -- measurements -----------------------------------------------------------


def bench_send_deliver(iterations: int) -> dict:
    """Simulator cycle with the tracer absent / idle / recording."""

    def cycle(n, config="none"):
        sim = NetworkSimulator(topology=_line_topology())
        obs = _make_obs(config)
        payload: object = 1
        if obs is not None:
            sim.tracer = obs.tracer
            obs.tracer.bind_clock(sim.clock)
            if config == "sampling1":
                ctx = obs.tracer.start_trace("publish", 0.0, source="bench")
                payload = _make_tuple(0).with_trace(ctx)
        sink = lambda payload: None
        send = sim.send
        run = sim.clock.run
        batch = 500
        done = 0
        while done < n:
            for _ in range(batch):
                send("n0", "n7", payload, 100.0, sink)
            run()
            done += batch

    return {
        config: round(_best_rate(lambda n, c=config: cycle(n, c), iterations))
        for config in CONFIGS
    }


def bench_publish_fanout(iterations: int, subscribers: int = 20) -> dict:
    """Broker fan-out of one reading, per configuration."""

    def fanout(n, config="none"):
        sim = NetworkSimulator(topology=_line_topology())
        obs = _make_obs(config)
        network = BrokerNetwork(netsim=sim, obs=obs)
        if obs is not None:
            sim.tracer = obs.tracer
            obs.tracer.bind_clock(sim.clock)
        for i in range(subscribers):
            network.subscribe(
                f"n{i % 8}",
                SubscriptionFilter(),
                lambda tuple_: None,
            )
        network.publish(SensorMetadata(
            sensor_id="bench-sensor",
            sensor_type="weather",
            schema=StreamSchema.build(
                {"temperature": "float"}, themes=("weather/temperature",)
            ),
            frequency=1.0,
            location=Point(34.69, 135.50),
            node_id="n0",
        ))
        reading = _make_tuple(0)
        publish_data = network.publish_data
        run = sim.clock.run
        batch = 50
        done = 0
        while done < n:
            for _ in range(batch):
                publish_data("bench-sensor", reading)
            run()
            done += batch

    return {
        "subscribers": subscribers,
        **{
            config: round(
                _best_rate(lambda n, c=config: fanout(n, c), iterations)
            )
            for config in CONFIGS
        },
    }


def bench_process_receive(iterations: int) -> dict:
    """Operator process dispatch: per-tuple counter + span recording."""

    def feed(n, config="none"):
        sim = NetworkSimulator(topology=_line_topology())
        obs = _make_obs(config)
        if obs is not None:
            sim.tracer = obs.tracer
            obs.tracer.bind_clock(sim.clock)
        process = OperatorProcess(
            process_id="bench:filter",
            operator=FilterOperator("temperature > 24"),
            node_id="n0",
            netsim=sim,
            obs=obs,
        )
        process.start()
        tuple_ = _make_tuple(0)
        if obs is not None and config == "sampling1":
            ctx = obs.tracer.start_trace("publish", 0.0, source="bench")
            tuple_ = tuple_.with_trace(ctx)
        receive = process.receive
        for _ in range(n):
            receive(tuple_)

    return {
        config: round(_best_rate(lambda n, c=config: feed(n, c), iterations))
        for config in CONFIGS
    }


# -- runner -----------------------------------------------------------------


def _overheads(rates: dict) -> dict:
    """Slowdown of each instrumented config relative to ``none`` (%)."""
    base = rates.get("none", 0)
    out = {}
    for config in ("sampling0", "sampling1"):
        if base and rates.get(config):
            out[f"{config}_overhead_pct"] = round(
                (base - rates[config]) / base * 100.0, 1
            )
    return out


def _vs_bench2(rates: dict, bench2: "dict | None", path: str) -> dict:
    """Regression of the sampling=0 rate vs the recorded PR 2 number."""
    if not bench2:
        return {}
    recorded = bench2.get("results", {}).get(path, {}).get("after_ops_per_sec")
    if not recorded or not rates.get("sampling0"):
        return {}
    return {
        "bench2_after_ops_per_sec": recorded,
        "sampling0_vs_bench2_pct": round(
            (recorded - rates["sampling0"]) / recorded * 100.0, 1
        ),
    }


def run(smoke: bool = False, bench2: "dict | None" = None) -> dict:
    scale = 20 if smoke else 1
    send_iters = 50_000 // scale
    fanout_iters = 2_000 // scale
    receive_iters = 100_000 // scale

    results = {}
    for path, rates in (
        ("send_deliver", bench_send_deliver(send_iters)),
        ("publish_fanout", bench_publish_fanout(fanout_iters)),
        ("process_receive", bench_process_receive(receive_iters)),
    ):
        rates.update(_overheads(rates))
        rates.update(_vs_bench2(rates, bench2, path))
        results[path] = rates

    return {
        "bench": "obs-overhead",
        "issue": 3,
        "smoke": smoke,
        "topology": "line-8 (static)",
        "configs": {
            "none": "no Observability attached",
            "sampling0": "metrics + lineage on, tracing sampled out",
            "sampling1": "every tuple traced end to end",
        },
        "notes": {
            "send_deliver": "full simulator cycle (route, account, "
                            "schedule, deliver); run_hotpath workload",
            "publish_fanout": "broker publish_data to 20 subscriptions; "
                              "run_hotpath workload",
            "process_receive": "operator process dispatch of a filter, "
                               "fed directly (no network hop)",
            "acceptance": "sampling0 regresses < 5% vs BENCH_2.json on "
                          "the shared workloads",
        },
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_3.json next to the repo root")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (CI crash check)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_3.json)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    bench2 = None
    bench2_path = root / "BENCH_2.json"
    if bench2_path.exists():
        bench2 = json.loads(bench2_path.read_text())

    report = run(smoke=args.smoke, bench2=bench2)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or root / "BENCH_3.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
