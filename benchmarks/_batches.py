"""Shared tuple/topology factories for the ``run_*`` benchmark runners.

Mirrors ``_timing.py``: the runners (``run_batch``, ``run_fusion``,
``run_latency``, ``run_columnar``) all feed synthetic weather readings
through a line of simulated nodes, and each had grown its own copy of
the tuple factory and topology builder.  The factories are parameterized
so every runner keeps its historical workload *exactly* — BENCH_N.json
records are regression anchors, so the payload constants must not drift:

- ``run_batch`` readings: ``25.0 + (i % 7)``
- ``run_fusion`` / ``run_latency`` / ``run_columnar``: ``15.0 + (i % 13)``
"""

from __future__ import annotations

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

#: Every bench reading is stamped at the same site (Umeda, Osaka).
SITE = Point(34.69, 135.50)


def make_tuple(i: int, base: float = 15.0, modulo: int = 13) -> SensorTuple:
    """The canonical bench reading: a station temperature varying with
    ``i`` over ``[base, base + modulo)``, stamped at virtual time ``i``."""
    return SensorTuple(
        payload={"station": "umeda", "temperature": base + (i % modulo)},
        stamp=SttStamp(time=float(i), location=SITE),
        source="bench",
        seq=i,
    )


def line_topology(node_count: int = 8, latency: float = 0.001) -> Topology:
    """``n0 - n1 - ... - n{count-1}`` with uniform link latency."""
    topo = Topology()
    for i in range(node_count):
        topo.add_node(f"n{i}")
    for i in range(node_count - 1):
        topo.add_link(f"n{i}", f"n{i + 1}", latency=latency)
    return topo


def line_sim(node_count: int = 8, latency: float = 0.001) -> NetworkSimulator:
    return NetworkSimulator(topology=line_topology(node_count, latency))
