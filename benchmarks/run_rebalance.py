"""Elastic rebalance benchmark (writes ``BENCH_6.json``).

BENCH_5 established the skew ceiling: with hash routing, 80% of the
stream lands on one shard and ``shards8`` buys ~1.25x.  This benchmark
measures what the PR-6 elastic plane recovers.  The unit is the same as
BENCH_5 — **tuples per second of epoch wall-clock**, where one epoch =
feeding every tuple of a window plus the flush (and the merge, when
sharded): the critical path of the deployed plan, max over concurrent
shards plus the merge stage.

Four workloads:

- ``skewed_static``       — the BENCH_5 skew baseline re-measured
  in-session at shards 1 and 8: hash routing, the hot shard owns the
  epoch.  ``shards8`` is the collapse point the elastic plane must beat.
- ``skewed_elastic_split``— the same stream at shards=8 with the hot key
  *split* round-robin across every replica (the rebalancer's hot-key
  spray) and the merge folding partial accumulators back into oracle
  tuples.  Acceptance: **>= 2.5x** over ``skewed_static.shards1``.
- ``uniform_elastic_idle``— BENCH_5's uniform shards=8 workload run
  through the elastic tuple path with the control loop idle.
  Acceptance: within **5%** of the same-session re-measurement of
  BENCH_5's exact static path — the overlay must be free when nothing
  rebalances.  (The recorded BENCH_5 rate and this session's machine
  drift against it are reported alongside; enforcing against the
  recorded number would charge the overlay for cross-session machine
  variance.)
- ``migration_pause``     — a virtual-time run of the real deployed
  stack: a forced migration and a forced split mid-stream, measuring the
  largest gap between consecutive window closes at the sink.
  Acceptance: **<= 2 flush intervals** — the barrier protocol may delay
  a flush by at most one epoch.

Usage::

    python -m benchmarks.run_rebalance --json              # full run
    python -m benchmarks.run_rebalance --json --quick      # CI-scale run
    python -m benchmarks.run_rebalance --json --smoke      # crash check
    python -m benchmarks.run_rebalance --json --enforce    # fail on regression
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks._timing import gc_controlled as _gc_controlled

from repro.streams.aggregate import AggregationOperator
from repro.streams.shard import (
    ShardAssignment,
    ShardedOperatorAdapter,
    ShardMergeOperator,
    partition_index,
)
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

#: Shard count the elastic workloads run at (vs the shards=1 baseline).
SHARDS = 8

#: Distinct group-by keys in the uniform workload (matches BENCH_5).
STATIONS = 64

#: Tuples routed to the single hot station in the skewed workloads.
HOT_FRACTION = 0.8

#: The skewed elastic run must beat the unsharded baseline by this much.
SPLIT_SPEEDUP_FLOOR = 2.5

#: ``uniform_elastic_idle`` may lag the same-session static shards8
#: re-measurement by at most this.
IDLE_REGRESSION_BOUND_PCT = 5.0

#: The sink may wait at most this many flush intervals across a handoff.
PAUSE_BOUND_INTERVALS = 2.0

#: Flush interval fed to the operators (virtual clock; the throughput
#: workloads drive ``on_timer`` directly).
INTERVAL = 60.0

SITE = Point(34.69, 135.50)


def _make_tuple(i: int, station: str) -> SensorTuple:
    return SensorTuple(
        payload={"station": station, "temperature": 15.0 + (i % 13)},
        stamp=SttStamp(time=float(i), location=SITE),
        source="bench",
        seq=i,
    )


def _uniform_tuples(n: int) -> "list[SensorTuple]":
    return [_make_tuple(i, f"st-{i % STATIONS}") for i in range(n)]


def _skewed_tuples(n: int) -> "list[SensorTuple]":
    """HOT_FRACTION of the stream on ``st-hot``, the rest uniform."""
    hot_every = round(1 / (1 - HOT_FRACTION))  # 1 cold tuple per this many
    return [
        _make_tuple(
            i,
            f"st-{i % (STATIONS - 1) + 1}" if i % hot_every == 0 else "st-hot",
        )
        for i in range(n)
    ]


def _make_agg() -> AggregationOperator:
    return AggregationOperator(
        interval=INTERVAL,
        attributes=["temperature"],
        function="AVG",
        group_by="station",
    )


# -- measurements -----------------------------------------------------------


def _epoch_cost_unsharded(tuples: "list[SensorTuple]", repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        operator = _make_agg()
        on_tuple = operator.on_tuple
        with _gc_controlled():
            start = time.perf_counter()
            for tuple_ in tuples:
                on_tuple(tuple_)
            operator.on_timer(INTERVAL)
            best = min(best, time.perf_counter() - start)
    return best


def _make_adapter(k: int, elastic: bool, split: bool) -> ShardedOperatorAdapter:
    adapter = ShardedOperatorAdapter(
        _make_agg(), shard_index=k, shard_count=SHARDS
    )
    if elastic:
        # The deployed elastic tuple path: key extraction + disowned
        # check on every tuple.  No reroute target — nothing is disowned.
        adapter.enable_elastic((("station",),))
    if split:
        adapter.mark_split("st-hot")
    return adapter


def _epoch_cost_sharded(
    slices: "list[list[SensorTuple]]",
    repeat: int,
    elastic: bool = False,
    split: bool = False,
) -> float:
    """Critical path of one sharded epoch: max shard busy time + merge.

    Best-of-``repeat`` per component before the max, as in BENCH_5: the
    sharded plan must not be charged for scheduler jitter the unsharded
    baseline gets to shrug off.
    """

    def shard_cost(k: int) -> float:
        best = float("inf")
        for _ in range(repeat):
            adapter = _make_adapter(k, elastic, split)
            on_tuple = adapter.on_tuple
            with _gc_controlled():
                start = time.perf_counter()
                for tuple_ in slices[k]:
                    on_tuple(tuple_)
                adapter.on_timer(INTERVAL)
                best = min(best, time.perf_counter() - start)
        return best

    slowest_shard = max(shard_cost(k) for k in range(SHARDS))

    envelopes = []
    for k in range(SHARDS):
        adapter = _make_adapter(k, elastic, split)
        for tuple_ in slices[k]:
            adapter.on_tuple(tuple_)
        envelopes.extend(adapter.on_timer(INTERVAL))

    def merge_cost() -> float:
        merge = ShardMergeOperator(SHARDS, "aggregate")
        with _gc_controlled():
            start = time.perf_counter()
            for envelope in envelopes:
                merge.on_tuple(envelope)
            return time.perf_counter() - start

    return slowest_shard + min(merge_cost() for _ in range(repeat))


def _partition_hash(tuples: "list[SensorTuple]") -> "list[list[SensorTuple]]":
    slices: "list[list[SensorTuple]]" = [[] for _ in range(SHARDS)]
    for tuple_ in tuples:
        slices[partition_index((tuple_.get("station"),), SHARDS)].append(tuple_)
    return slices


def _partition_split(tuples: "list[SensorTuple]") -> "list[list[SensorTuple]]":
    """Route through a ShardAssignment with the hot key split everywhere:
    the rebalancer's spray, resolved tuple-by-tuple (round-robin)."""
    assignment = ShardAssignment(SHARDS)
    assignment.split(("st-hot",), tuple(range(SHARDS)))
    slices: "list[list[SensorTuple]]" = [[] for _ in range(SHARDS)]
    for tuple_ in tuples:
        slices[assignment.index_for((tuple_.get("station"),))].append(tuple_)
    return slices


def bench_skewed(tuples: "list[SensorTuple]", repeat: int) -> "tuple[dict, dict]":
    """The static skew baseline and the elastic hot-key-split run."""
    n = len(tuples)
    base_cost = _epoch_cost_unsharded(tuples, repeat)
    static = {
        "shards1": round(n / base_cost),
        "shards8": round(n / _epoch_cost_sharded(
            _partition_hash(tuples), repeat
        )),
        "hot_fraction": HOT_FRACTION,
    }
    static["shards8_speedup"] = round(static["shards8"] / static["shards1"], 2)

    split_cost = _epoch_cost_sharded(
        _partition_split(tuples), repeat, elastic=True, split=True
    )
    elastic = {
        "shards8": round(n / split_cost),
        "split_replicas": SHARDS,
        "shards8_speedup_vs_shards1": round((n / split_cost) / (n / base_cost), 2),
        "shards8_speedup_vs_static8": round(
            (n / split_cost) / static["shards8"], 2
        ),
    }
    return static, elastic


def bench_uniform_idle(tuples: "list[SensorTuple]", repeat: int,
                       bench5: "dict | None") -> dict:
    """BENCH_5's uniform shards=8 workload on the idle elastic path."""
    n = len(tuples)
    slices = _partition_hash(tuples)
    idle = round(n / _epoch_cost_sharded(slices, repeat, elastic=True))
    plain = round(n / _epoch_cost_sharded(slices, repeat))
    out = {
        "shards8": idle,
        "shards8_static_in_session": plain,
        # The enforced number: elastic-idle vs the *same-session* static
        # run of BENCH_5's exact code path — the only comparison that
        # isolates overlay cost from cross-session machine drift.
        "vs_in_session_pct": round((plain - idle) / plain * 100.0, 1),
        "stations": STATIONS,
    }
    recorded = (bench5 or {}).get("results", {}).get(
        "aggregate_flush", {}
    ).get("shards8")
    if recorded:
        out["bench5_shards8"] = recorded
        out["vs_bench5_pct"] = round((recorded - idle) / recorded * 100.0, 1)
        # Same static code, different session: everything beyond the
        # overlay cost is the machine, not this PR.
        out["machine_drift_pct"] = round(
            (recorded - plain) / recorded * 100.0, 1
        )
    return out


def bench_migration_pause(scale: int) -> dict:
    """Largest sink-side flush gap across a forced migration + split.

    A full deployed stack on the virtual clock: shards=8 elastic with the
    policy neutered, one forced migration of the hot key at the third
    epoch boundary and one forced split at the sixth.  Window closes
    arrive at the sink stamped with their epoch time; the barrier
    protocol is allowed to hold a flush for at most one extra interval,
    so the largest gap between consecutive closes must stay <= 2
    intervals.  Virtual-time: the numbers are exact, not sampled.
    """
    from repro.dataflow.graph import Dataflow
    from repro.dataflow.ops import AggregationSpec
    from repro.dsn.scn import ScnController
    from repro.network.netsim import NetworkSimulator
    from repro.network.topology import Topology
    from repro.pubsub.broker import BrokerNetwork
    from repro.pubsub.registry import SensorMetadata
    from repro.pubsub.subscription import SubscriptionFilter
    from repro.runtime.executor import Executor
    from repro.runtime.rebalance import RebalanceConfig
    from repro.schema.schema import StreamSchema

    interval = 60.0
    epochs = 10
    feed_every = max(0.25 * scale, 0.25)

    topology = Topology()
    topology.add_node("hub")
    netsim = NetworkSimulator(topology=topology)
    network = BrokerNetwork(netsim=netsim)
    executor = Executor(
        netsim, network, scn=ScnController(topology),
        rebalance_config=RebalanceConfig(imbalance_ratio=float("inf")),
    )
    network.publish(SensorMetadata(
        sensor_id="bench-temp",
        sensor_type="temperature",
        schema=StreamSchema.build(
            {"temperature": "float", "station": "str"},
            themes=("weather/temperature",),
        ),
        frequency=1.0 / feed_every,
        location=SITE,
        node_id="hub",
    ))

    flow = Dataflow("pause-bench")
    source = flow.add_source(
        SubscriptionFilter(sensor_type="temperature"), node_id="src"
    )
    agg = flow.add_operator(
        AggregationSpec(interval=interval, attributes=("temperature",),
                        function="AVG", group_by="station"),
        node_id="agg",
    )
    sink = flow.add_sink("collector", node_id="out")
    flow.connect(source, agg)
    flow.connect(agg, sink)
    deployment = executor.deploy(flow, shards={"agg": SHARDS}, elastic=True)

    rebalancer = deployment.rebalancers["agg"]
    assignment = deployment.shard_groups["agg"].assignment

    def request_migration():
        donor = assignment.owner_of(("st-hot",))
        recipient = (donor + 1) % SHARDS
        rebalancer.executor.schedule_migration(("st-hot",), donor, recipient)

    netsim.clock.schedule_at(2.5 * interval, request_migration)
    netsim.clock.schedule_at(
        5.5 * interval,
        lambda: rebalancer.executor.schedule_split(
            ("st-hot",), tuple(range(SHARDS))
        ),
    )

    end = epochs * interval
    count = int(end / feed_every)
    for i in range(count):
        tuple_ = SensorTuple(
            payload={"station": "st-hot" if i % 5 else f"st-{i % 7}",
                     "temperature": 15.0 + (i % 13)},
            stamp=SttStamp(time=i * feed_every, location=SITE),
            source="bench-temp",
            seq=i,
        )
        netsim.clock.schedule_at(
            i * feed_every,
            lambda t=tuple_: network.publish_data("bench-temp", t),
        )
    netsim.clock.run_until(end + interval)

    closes = sorted({t.stamp.time for t in deployment.collected("out")})
    gaps = [b - a for a, b in zip(closes, closes[1:])]
    migrations = [
        (e.time, e.kind) for e in executor.monitor.migration_log
    ]
    return {
        "flush_interval_sec": interval,
        "epochs": len(closes),
        "max_gap_intervals": round(max(gaps) / interval, 3) if gaps else None,
        "actions": migrations,
    }


# -- runner -----------------------------------------------------------------


def run(scale: int = 1, bench5: "dict | None" = None) -> dict:
    # Same sizing rationale as BENCH_5: under the 100k TupleCache bound
    # so no shard evicts mid-epoch and the numbers measure CPU scale-out
    # plus the elastic overlay alone.
    epoch_tuples = 96_000 // scale
    repeat = 9

    skewed_static, skewed_elastic = bench_skewed(
        _skewed_tuples(epoch_tuples), repeat
    )
    uniform_idle = bench_uniform_idle(
        _uniform_tuples(epoch_tuples), repeat, bench5
    )
    pause = bench_migration_pause(scale)

    return {
        "bench": "elastic-rebalance",
        "issue": 6,
        "scale_divisor": scale,
        "unit": "tuples/sec of epoch wall-clock (max shard + merge)",
        "shards": SHARDS,
        "notes": {
            "skewed_static": f"{HOT_FRACTION:.0%} of tuples on one hot "
                             "station, hash routing — the BENCH_5 collapse "
                             "this PR exists to fix",
            "skewed_elastic_split": "hot key sprayed round-robin across all "
                                    "replicas, merge folds partial "
                                    "accumulators",
            "uniform_elastic_idle": "BENCH_5 uniform shards8 on the elastic "
                                    "tuple path with the control loop idle, "
                                    "A/B'd against the same-session static "
                                    "run",
            "migration_pause": "virtual-time deployed run; largest sink "
                               "flush gap across a forced migration + split",
            "acceptance": f"split shards8 >= {SPLIT_SPEEDUP_FLOOR}x shards1; "
                          f"idle within {IDLE_REGRESSION_BOUND_PCT}% of the "
                          f"same-session static shards8; pause <= "
                          f"{PAUSE_BOUND_INTERVALS} flush intervals",
        },
        "results": {
            "skewed_static": skewed_static,
            "skewed_elastic_split": skewed_elastic,
            "uniform_elastic_idle": uniform_idle,
            "migration_pause": pause,
        },
    }


def check(report: dict) -> "list[str]":
    """Acceptance violations in a **full-scale** report."""
    problems = []
    results = report["results"]
    speedup = results["skewed_elastic_split"].get("shards8_speedup_vs_shards1")
    if speedup is not None and speedup < SPLIT_SPEEDUP_FLOOR:
        problems.append(
            f"skewed_elastic_split: {speedup}x vs shards1 is below the "
            f"{SPLIT_SPEEDUP_FLOOR}x floor"
        )
    regression = results["uniform_elastic_idle"].get("vs_in_session_pct")
    if regression is not None and regression > IDLE_REGRESSION_BOUND_PCT:
        problems.append(
            f"uniform_elastic_idle: overlay costs {regression}% vs the "
            f"same-session static run (bound {IDLE_REGRESSION_BOUND_PCT}%)"
        )
    pause = results["migration_pause"].get("max_gap_intervals")
    if pause is None:
        problems.append("migration_pause: no window closes observed")
    elif pause > PAUSE_BOUND_INTERVALS:
        problems.append(
            f"migration_pause: max flush gap {pause} intervals exceeds "
            f"{PAUSE_BOUND_INTERVALS}"
        )
    actions = {kind for _, kind in results["migration_pause"]["actions"]}
    if not {"migrate", "split"} <= actions:
        problems.append(
            f"migration_pause: forced actions did not all run ({actions})"
        )
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_6.json next to the repo root")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI-scale; rates "
                             "remain comparable within headroom bounds)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (crash check only)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when acceptance bounds are violated "
                             "(meaningful only at full scale)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_6.json)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    bench5 = None
    bench5_path = root / "BENCH_5.json"
    if bench5_path.exists():
        bench5 = json.loads(bench5_path.read_text())

    scale = 40 if args.smoke else 8 if args.quick else 1
    report = run(scale=scale, bench5=bench5)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or root / "BENCH_6.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")
    if args.enforce and scale == 1:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            sys.exit(1)
        print("acceptance bounds hold")


if __name__ == "__main__":
    main()
