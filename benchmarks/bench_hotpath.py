"""Hot-path regression benchmarks (pytest-benchmark flavour).

Pairs each fast path with its reference implementation so a regression in
either shows up in ``pytest-benchmark compare``:

- compiled expression closure vs the tree-walking interpreter;
- generation-counter route cache vs per-call shortest-path recomputation;
- incremental aggregation accumulators vs window rescan;
- hash join vs nested-loop join.

``python -m benchmarks.run_hotpath`` is the standalone before/after runner
that writes ``BENCH_2.json``; this module tracks the same workloads under
pytest-benchmark so they ride the existing harness.
"""

import pytest

from benchmarks.run_hotpath import (
    EXPRESSIONS,
    PAYLOAD,
    _line_topology,
    _make_tuple,
)
from repro.expr.eval import compile_expression
from repro.streams.aggregate import AggregationOperator
from repro.streams.join import JoinOperator


@pytest.mark.benchmark(group="hotpath-expr")
class TestCompiledExpressions:
    @pytest.mark.parametrize("name,source", EXPRESSIONS)
    def test_interpreted(self, benchmark, name, source):
        expr = compile_expression(source).prepare()
        benchmark(lambda: [expr.interpret(PAYLOAD) for _ in range(1000)])

    @pytest.mark.parametrize("name,source", EXPRESSIONS)
    def test_compiled(self, benchmark, name, source):
        expr = compile_expression(source).prepare()
        benchmark(lambda: [expr.evaluate(PAYLOAD) for _ in range(1000)])


@pytest.mark.benchmark(group="hotpath-route")
class TestRouteCache:
    def test_uncached(self, benchmark):
        topo = _line_topology()
        benchmark(lambda: [topo.route_uncached("n0", "n7") for _ in range(100)])

    def test_cached(self, benchmark):
        topo = _line_topology()
        topo.route_info("n0", "n7")  # warm the cache
        benchmark(lambda: [topo.route_info("n0", "n7") for _ in range(100)])


def _standing_aggregation(incremental: bool, size: int = 2000):
    op = AggregationOperator(
        interval=60.0, attributes=["temperature"], function="AVG",
        group_by="station", window=1e12, incremental=incremental,
    )
    for i in range(size):
        op.on_tuple(_make_tuple(i, f"st-{i % 10}", float(i % 37), at=float(i)))
    return op


@pytest.mark.benchmark(group="hotpath-aggregate")
class TestIncrementalAggregation:
    def test_rescan_flush(self, benchmark):
        op = _standing_aggregation(incremental=False)
        benchmark(lambda: op.on_timer(1e9))

    def test_incremental_flush(self, benchmark):
        op = _standing_aggregation(incremental=True)
        benchmark(lambda: op.on_timer(1e9))


def _join_cycle(hash_join: bool, size: int = 100):
    left = [_make_tuple(i, f"st-{i % 25}", float(i)) for i in range(size)]
    right = [_make_tuple(i, f"st-{i % 25}", float(i)) for i in range(size)]
    op = JoinOperator(
        interval=60.0,
        predicate="left.station == right.station",
        hash_join=hash_join,
    )

    def cycle():
        for t in left:
            op.on_tuple(t, port=0)
        for t in right:
            op.on_tuple(t, port=1)
        return op.on_timer(60.0)

    return cycle


@pytest.mark.benchmark(group="hotpath-join")
class TestHashJoin:
    def test_nested_loop(self, benchmark):
        assert benchmark(_join_cycle(hash_join=False))

    def test_hash_join(self, benchmark):
        assert benchmark(_join_cycle(hash_join=True))
