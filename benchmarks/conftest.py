"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one artifact of the paper (Table 1,
Figures 1-3, the Section 3 scenario, the P2/P3 walkthrough steps) or an
ablation.  Measured series are attached to ``benchmark.extra_info`` so
they land in pytest-benchmark's JSON output, and printed as rows for eyes.
"""

from __future__ import annotations

import pytest

from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point


def make_batch(count: int, start_time: float = 0.0,
               temperature_base: float = 20.0) -> list[SensorTuple]:
    """A deterministic batch of weather tuples for operator benchmarks."""
    return [
        SensorTuple(
            payload={
                "temperature": temperature_base + (i % 17) * 0.7,
                "humidity": 0.4 + (i % 11) * 0.05,
                "station": f"station-{i % 5}",
            },
            stamp=SttStamp(
                time=start_time + i,
                location=Point(34.5 + (i % 40) * 0.01, 135.3 + (i % 40) * 0.01),
                themes=("weather/temperature",),
            ),
            source=f"sensor-{i % 5}",
            seq=i,
        )
        for i in range(count)
    ]


def print_rows(title: str, rows: list[tuple]) -> None:
    """Emit a small table to stdout (shown with pytest -s)."""
    print(f"\n== {title} ==")
    for row in rows:
        print("  " + "  ".join(str(cell) for cell in row))


@pytest.fixture
def operator_batch():
    return make_batch(2000)
