"""Shared timing scaffolding for the ``run_*`` benchmark runners.

Every runner needs the same two disciplines, previously copy-pasted into
each file:

- :func:`best_rate` — best-of-N throughput, so a single scheduler blip
  or cache-cold pass cannot depress a reported number;
- :func:`gc_controlled` — collect before a timed pass and keep the
  collector out of it.  Measured passes build fresh operators whose
  bound-method callbacks form reference cycles, so dead passes linger
  until a collection; collections *inside* a short pass tax it far more
  per tuple than a long one, and garbage left by previous passes
  degrades the allocator for later ones — skewing exactly the ratios
  the runners exist to report.  Collecting before every pass and
  disabling the collector during it makes per-tuple cost independent of
  both slice length and pass order.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager


def best_rate(fn, iterations: int, repeat: int = 3) -> float:
    """Best-of-N ops/sec for ``fn(iterations)`` (iterations = tuples)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(iterations)
        best = min(best, time.perf_counter() - start)
    return iterations / best


@contextmanager
def gc_controlled():
    """One timed pass: collect first, keep the collector out of it."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
