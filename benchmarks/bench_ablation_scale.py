"""Ablation A4 — end-to-end scaling with network size.

The paper demos a handful of sensors on one testbed; a system claim like
"executed at network level" should survive growth.  This ablation scales
the star topology (and with it the round-robin sensor fleet) and runs the
same six virtual hours of the scenario, reporting simulation throughput
and per-layer volumes.

Expected shape: tuple volumes grow linearly with fleet size; wall-clock
cost grows near-linearly (the event heap is O(log n) per event); placement
keeps operators near their sensors so per-link traffic grows sublinearly
with total volume.
"""

import time

import pytest

from repro.network.topology import Topology
from repro.scenario import build_stack, osaka_scenario_flow

HOURS = 6.0
LEAVES = [2, 4, 8]


def run_scale(leaf_count: int):
    stack = build_stack(topology=Topology.star(leaf_count=leaf_count),
                        replicas=max(1, leaf_count // 2))
    flow = osaka_scenario_flow(stack)
    deployment = stack.executor.deploy(flow)
    start = time.perf_counter()
    stack.run_until(HOURS * 3600.0)
    wall = time.perf_counter() - start
    return stack, deployment, wall


@pytest.mark.benchmark(group="ablation-scale")
@pytest.mark.parametrize("leaf_count", LEAVES)
def test_scenario_scaling(benchmark, leaf_count):
    stack, deployment, wall = benchmark.pedantic(
        lambda: run_scale(leaf_count), rounds=1, iterations=1
    )
    emitted = sum(sensor.emitted for sensor in stack.fleet)
    benchmark.extra_info.update({
        "nodes": leaf_count + 1,
        "sensors": len(stack.fleet),
        "sensor_emissions": emitted,
        "deliveries": stack.netsim.stats.messages_delivered,
        "link_bytes": stack.netsim.total_link_bytes(),
        "virtual_hours_per_wall_second": HOURS / wall if wall else None,
    })
    assert emitted > 0
    assert stack.netsim.stats.messages_dropped == 0


def test_scaling_rows(capsys):
    rows = []
    for leaf_count in LEAVES:
        stack, deployment, wall = run_scale(leaf_count)
        rows.append((
            leaf_count + 1,
            len(stack.fleet),
            sum(sensor.emitted for sensor in stack.fleet),
            stack.netsim.stats.messages_delivered,
            int(stack.netsim.total_link_bytes()),
            wall,
        ))
    with capsys.disabled():
        print(f"\n== Ablation A4: scaling over {HOURS:.0f} virtual hours ==")
        print(f"  {'nodes':>6s} {'sensors':>8s} {'emitted':>9s} "
              f"{'delivered':>10s} {'link bytes':>11s} {'wall s':>7s}")
        for nodes, sensors, emitted, delivered, link_bytes, wall in rows:
            print(f"  {nodes:>6} {sensors:>8} {emitted:>9} "
                  f"{delivered:>10} {link_bytes:>11} {wall:>7.2f}")
    # Volumes scale with the fleet; the simulation keeps up.
    assert rows[-1][2] > rows[0][2]
    assert all(wall < 30.0 for *_rest, wall in rows)
