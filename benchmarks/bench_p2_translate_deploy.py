"""Experiment P2 — translation and deployment cost vs dataflow size.

Demo part P2 shows "translation in the DSN/SCN language and deployment at
network level".  This benchmark measures both steps — dataflow -> DSN text
(validate + generate + render) and DSN -> running processes (discovery +
placement + QoS admission + wiring) — as the dataflow grows.

Expected shape: both costs grow roughly linearly with the number of
canvas nodes; deployment dominates translation (it touches the network
and the pub-sub layer); both remain interactive (milliseconds) at
realistic canvas sizes, consistent with a demo driven from a web GUI.
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec, VirtualPropertySpec
from repro.dsn.generate import dataflow_to_dsn
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack

SIZES = [1, 4, 16]


def wide_flow(width: int) -> Dataflow:
    """``width`` independent source -> filter -> enrich -> sink chains."""
    flow = Dataflow(f"wide-{width}")
    sensor_ids = ["osaka-temp-umeda", "osaka-temp-namba",
                  "osaka-temp-tennoji", "osaka-temp-yodogawa"]
    for index in range(width):
        src = flow.add_source(
            SubscriptionFilter(sensor_ids=(sensor_ids[index % 4],)),
            node_id=f"src-{index}",
        )
        filt = flow.add_operator(FilterSpec("temperature > 20"),
                                 node_id=f"filter-{index}")
        enrich = flow.add_operator(
            VirtualPropertySpec(f"flag_{index}", "temperature > 28"),
            node_id=f"enrich-{index}",
        )
        out = flow.add_sink("collector", node_id=f"out-{index}")
        flow.connect(src, filt)
        flow.connect(filt, enrich)
        flow.connect(enrich, out)
    return flow


@pytest.mark.benchmark(group="p2-translate")
@pytest.mark.parametrize("width", SIZES)
def test_translation_cost(benchmark, width):
    stack = build_stack()
    flow = wide_flow(width)
    program = benchmark(
        lambda: dataflow_to_dsn(flow, stack.broker_network.registry)
    )
    benchmark.extra_info["canvas_nodes"] = 4 * width
    benchmark.extra_info["dsn_lines"] = program.render().count("\n")
    assert len(program.services) == 4 * width


@pytest.mark.benchmark(group="p2-deploy")
@pytest.mark.parametrize("width", SIZES)
def test_deployment_cost(benchmark, width):
    def deploy_once():
        stack = build_stack()
        deployment = stack.executor.deploy(wide_flow(width))
        deployment.teardown()
        return deployment

    deployment = benchmark.pedantic(deploy_once, rounds=3, iterations=1)
    benchmark.extra_info["canvas_nodes"] = 4 * width
    benchmark.extra_info["processes"] = len(deployment.processes)
    assert len(deployment.processes) == 3 * width
