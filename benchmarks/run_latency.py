"""Latency-plane overhead benchmark runner (writes ``BENCH_8.json``).

PR 8 adds the SLO plane — stage-latency histograms, watermarks,
backpressure gauges, and the alert engine — under the same zero-cost
contract PR 3 established: **an absent plane must cost nothing on the
hot path**.  This runner measures that contract from three angles:

- ``process_receive`` — the exact BENCH_4/5/7 per-tuple dispatch
  workload, no observability attached.  The plane hook here is one
  cached ``self._probe is None`` check *inside* the existing
  ``obs is not None`` branch, so a bare process never even reaches it.
  Compared against BENCH_7's recorded rate.  Acceptance: within 5%.
- ``probe_paths`` — the same dispatch workload with an observability
  bundle attached (sampling 0.0), measured twice: plane absent (the
  ``_probe is None`` fast path) and plane installed with a live probe
  (histogram observe + watermark max per tuple).  The absent-plane rate
  shows what every observed-but-not-SLO'd deployment pays — a single
  attribute load and ``is None`` test; the installed rate prices the
  probe itself.
- ``alert_tick`` — one :meth:`AlertEngine.tick` evaluating a rule set
  over a populated registry, amortised; alerting is cadence-driven
  (never per tuple), so this only needs to be far cheaper than the
  virtual-time interval it runs at.

Usage::

    python -m benchmarks.run_latency --json              # full run
    python -m benchmarks.run_latency --json --quick      # CI-scale run
    python -m benchmarks.run_latency --json --smoke      # crash check
    python -m benchmarks.run_latency --json --enforce    # fail on regression
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks._batches import line_sim
from benchmarks._batches import make_tuple as _make_tuple
from benchmarks._timing import gc_controlled as _gc_controlled

from repro.network.netsim import NetworkSimulator
from repro.obs import Observability
from repro.obs.alerts import AlertEngine, AlertRule
from repro.runtime.process import OperatorProcess
from repro.streams.filter import FilterOperator

#: ``process_receive`` may regress at most this much against BENCH_7.
REGRESSION_BOUND_PCT = 5.0

def _line_sim() -> NetworkSimulator:
    return line_sim()


def _filter_process(obs: "Observability | None") -> OperatorProcess:
    process = OperatorProcess(
        process_id="bench:filter",
        operator=FilterOperator("temperature > 24"),
        node_id="n0",
        netsim=_line_sim(),
        obs=obs,
    )
    process.start()
    return process


def bench_process_receive(iterations: int, repeat: int = 8) -> dict:
    """The exact BENCH_4/5/7 batch=1 dispatch workload, bare process."""

    def feed(n: int) -> None:
        process = _filter_process(obs=None)
        tuple_ = _make_tuple(0)
        receive = process.receive
        for _ in range(n):
            receive(tuple_)

    best = float("inf")
    for _ in range(repeat):
        with _gc_controlled():
            start = time.perf_counter()
            feed(iterations)
            best = min(best, time.perf_counter() - start)
    return {"tuples_per_sec": round(iterations / best)}


def bench_probe_paths(iterations: int, repeat: int = 8) -> dict:
    """Dispatch with observability attached: plane absent vs installed.

    Passes are interleaved so machine drift cannot systematically favour
    one variant; best-of-N per variant is reported.
    """

    def feed(n: int, install_probe: bool) -> None:
        obs = Observability(sampling=0.0)
        process = _filter_process(obs)
        if install_probe:
            plane = obs.ensure_latency()
            process._probe = plane.register_process(
                process.process_id, blocking=False, sink=False
            )
        tuple_ = _make_tuple(0)
        receive = process.receive
        for _ in range(n):
            receive(tuple_)

    best = {"no_plane": float("inf"), "with_probe": float("inf")}
    for _ in range(repeat):
        for key, install in (("no_plane", False), ("with_probe", True)):
            with _gc_controlled():
                start = time.perf_counter()
                feed(iterations, install)
                best[key] = min(best[key], time.perf_counter() - start)
    no_plane = round(iterations / best["no_plane"])
    with_probe = round(iterations / best["with_probe"])
    return {
        "obs_no_plane_tuples_per_sec": no_plane,
        "obs_with_probe_tuples_per_sec": with_probe,
        "probe_overhead_pct": round(
            (no_plane - with_probe) / no_plane * 100.0, 1
        ),
    }


def bench_probe_batched(iterations: int, batch_size: int = 32,
                        repeat: int = 8) -> dict:
    """Batched dispatch with the plane installed vs absent (ISSUE 9).

    ``ProcessProbe.note_batch`` commits once per batch — one running-max
    update and one worst-latency histogram observe — instead of once per
    tuple, so the probe's overhead on the batched path must amortize to
    near zero (the per-tuple path above stays the worst case).
    """
    from repro.streams.tuple import TupleBatch

    def feed(batches: int, install_probe: bool) -> None:
        obs = Observability(sampling=0.0)
        process = _filter_process(obs)
        if install_probe:
            plane = obs.ensure_latency()
            process._probe = plane.register_process(
                process.process_id, blocking=False, sink=False
            )
        batch = TupleBatch.of(
            [_make_tuple(i) for i in range(batch_size)]
        )
        receive_batch = process.receive_batch
        for _ in range(batches):
            receive_batch(batch)

    batches = max(1, iterations // batch_size)
    best = {"no_plane": float("inf"), "with_probe": float("inf")}
    for _ in range(repeat):
        for key, install in (("no_plane", False), ("with_probe", True)):
            with _gc_controlled():
                start = time.perf_counter()
                feed(batches, install)
                best[key] = min(best[key], time.perf_counter() - start)
    tuples = batches * batch_size
    no_plane = round(tuples / best["no_plane"])
    with_probe = round(tuples / best["with_probe"])
    return {
        "batch_size": batch_size,
        "obs_no_plane_tuples_per_sec": no_plane,
        "obs_with_probe_tuples_per_sec": with_probe,
        "probe_overhead_pct": round(
            (no_plane - with_probe) / no_plane * 100.0, 1
        ),
    }


def bench_alert_tick(iterations: int, repeat: int = 6) -> dict:
    """Amortised cost of one engine tick over a populated plane."""
    sim = _line_sim()
    obs = Observability(sampling=0.0)
    plane = obs.ensure_latency()
    keys = [f"svc{i}" for i in range(8)]
    for index, key in enumerate(keys):
        probe = plane.register_process(key, blocking=index % 2 == 0,
                                       sink=index == len(keys) - 1)
        for j in range(200):
            probe.note(float(j) + 1.0, float(j))
        if probe.blocking:
            probe.commit_flush(300.0, [])
    for upstream, downstream in zip(keys, keys[1:]):
        plane.set_upstreams(downstream, [upstream])
    plane.source_high = 400.0
    engine = AlertEngine(obs.metrics, plane=plane, cadence=60.0)
    engine._now = lambda: sim.clock.now  # manual ticks, no scheduling
    for i, metric in enumerate(
        ("p99_latency", "p50_latency", "watermark_lag", "saturation")
    ):
        engine.add_rule(AlertRule(
            name=f"rule{i}", metric=metric, op="<", threshold=1e9,
            window=60.0 if metric.endswith("latency") else 0.0,
        ))
    best = float("inf")
    for _ in range(repeat):
        with _gc_controlled():
            start = time.perf_counter()
            for _ in range(iterations):
                engine.tick()
            best = min(best, time.perf_counter() - start)
    return {
        "rules": len(engine.rules),
        "processes": len(keys),
        "ticks_per_sec": round(iterations / best),
    }


# -- runner -----------------------------------------------------------------


def _vs_bench7(rates: dict, bench7: "dict | None") -> dict:
    """Regression of the per-tuple dispatch rate vs BENCH_7's record."""
    if not bench7:
        return {}
    recorded = bench7.get("results", {}).get("process_receive", {}).get(
        "tuples_per_sec"
    )
    measured = rates.get("tuples_per_sec")
    if not recorded or not measured:
        return {}
    return {
        "bench7_tuples_per_sec": recorded,
        "vs_bench7_pct": round((recorded - measured) / recorded * 100.0, 1),
    }


def run(scale: int = 1, bench7: "dict | None" = None) -> dict:
    receive_iters = 100_000 // scale
    probe_iters = 60_000 // scale
    tick_iters = max(20, 2_000 // scale)

    receive = bench_process_receive(receive_iters)
    receive.update(_vs_bench7(receive, bench7))
    probes = bench_probe_paths(probe_iters)
    batched = bench_probe_batched(probe_iters)
    ticks = bench_alert_tick(tick_iters)

    return {
        "bench": "latency-slo-plane",
        "issue": 8,
        "scale_divisor": scale,
        "unit": "tuples/sec through OperatorProcess.receive",
        "notes": {
            "process_receive": "exact BENCH_4/5/7 batch=1 dispatch "
                               "workload, no observability — the SLO "
                               "plane's hook is unreachable here, so the "
                               "rate must hold the BENCH_7 record",
            "probe_paths": "observability attached (sampling 0): plane "
                           "absent exercises the cached '_probe is None' "
                           "fast path; plane installed prices the live "
                           "probe (histogram observe + watermark max per "
                           "tuple); passes interleaved against drift",
            "probe_batched": "the batch=32 dispatch workload with the "
                             "plane installed: note_batch commits once "
                             "per batch (one running-max update + one "
                             "worst-latency observe), so the overhead "
                             "must amortize to near zero (ISSUE 9 "
                             "regression row)",
            "alert_tick": "one AlertEngine.tick over 8 processes / 4 "
                          "rules on a populated registry; cadence-driven, "
                          "never per tuple",
            "acceptance": "process_receive within "
                          f"{REGRESSION_BOUND_PCT}% of BENCH_7",
        },
        "results": {
            "process_receive": receive,
            "probe_paths": probes,
            "probe_batched": batched,
            "alert_tick": ticks,
        },
    }


def check(report: dict) -> "list[str]":
    """Acceptance violations in a **full-scale** report."""
    problems = []
    regression = report["results"].get("process_receive", {}).get(
        "vs_bench7_pct"
    )
    if regression is not None and regression > REGRESSION_BOUND_PCT:
        problems.append(
            f"process_receive: regressed {regression}% vs BENCH_7 "
            f"(bound {REGRESSION_BOUND_PCT}%)"
        )
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_8.json next to the repo root")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI-scale)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (crash check only)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when acceptance bounds are violated "
                             "(meaningful only at full scale)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_8.json)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    bench7 = None
    bench7_path = root / "BENCH_7.json"
    if bench7_path.exists():
        bench7 = json.loads(bench7_path.read_text())

    scale = 40 if args.smoke else 8 if args.quick else 1
    report = run(scale=scale, bench7=bench7)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or root / "BENCH_8.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")
    if args.enforce and scale == 1:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            sys.exit(1)
        print("acceptance bounds hold")


if __name__ == "__main__":
    main()
