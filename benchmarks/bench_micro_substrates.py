"""Micro-benchmarks of the substrates under the headline numbers.

Every Table 1 / Figure 1 measurement decomposes into these costs: the
expression engine (per-tuple condition evaluation), the discrete-event
clock (event scheduling/dispatch), the pub-sub data plane, and the
warehouse load path.  Tracked separately so a regression in any layer is
attributable.
"""

import pytest

from benchmarks.conftest import make_batch
from repro.expr.eval import compile_expression
from repro.network.simclock import SimClock
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.stamping import backfill_stamp
from repro.pubsub.subscription import SubscriptionFilter
from repro.warehouse.loader import EventWarehouse

BATCH = make_batch(1000)


@pytest.mark.benchmark(group="micro-expr")
class TestExpressionEngine:
    def test_compile(self, benchmark):
        benchmark(
            lambda: compile_expression(
                "temperature > 24 and humidity < 0.8 "
                "or contains(station, 'umeda')"
            )
        )

    def test_evaluate_simple(self, benchmark):
        expr = compile_expression("temperature > 24")
        values = BATCH[0].values()
        benchmark(lambda: [expr.evaluate_bool(values) for _ in range(1000)])

    def test_evaluate_with_functions(self, benchmark):
        expr = compile_expression(
            "convert(temperature, 'celsius', 'fahrenheit') > 75"
        )
        values = BATCH[0].values()
        benchmark(lambda: [expr.evaluate_bool(values) for _ in range(1000)])

    def test_type_check(self, benchmark):
        from repro.schema.schema import StreamSchema

        schema = StreamSchema.build(
            {"temperature": "float", "humidity": "float", "station": "string"}
        )
        expr = compile_expression("temperature > 24 and humidity < 0.8")
        benchmark(lambda: [expr.check_boolean(schema) for _ in range(100)])


@pytest.mark.benchmark(group="micro-clock")
class TestSimClock:
    def test_schedule_and_drain_10k(self, benchmark):
        def run():
            clock = SimClock()
            for index in range(10_000):
                clock.schedule(float(index % 97), lambda: None)
            clock.run()

        benchmark(run)

    def test_periodic_day_at_minute_cadence(self, benchmark):
        def run():
            clock = SimClock()
            ticks = []
            clock.schedule_periodic(60.0, lambda: ticks.append(1))
            clock.run_until(86_400.0)
            return len(ticks)

        assert benchmark(run) == 1440


@pytest.mark.benchmark(group="micro-pubsub")
class TestPubSubDataPlane:
    def test_publish_data_1k(self, benchmark):
        from tests.unit.pubsub.test_registry import make_metadata

        net = BrokerNetwork()
        metadata = make_metadata()
        net.publish(metadata)
        count = {"n": 0}
        net.subscribe("n1", SubscriptionFilter(sensor_type="temperature"),
                      lambda t: count.__setitem__("n", count["n"] + 1))
        reading = backfill_stamp({"v": 1.0}, metadata, now=0.0)
        benchmark(lambda: [net.publish_data("temp-1", reading)
                           for _ in range(1000)])
        assert count["n"] > 0


@pytest.mark.benchmark(group="micro-warehouse")
class TestWarehouseLoad:
    def test_load_1k_tuples(self, benchmark):
        def run():
            warehouse = EventWarehouse()
            for tuple_ in BATCH:
                warehouse.load(tuple_)
            return warehouse

        warehouse = benchmark(run)
        assert len(warehouse) == len(BATCH)

    def test_hourly_rollup_over_10k_facts(self, benchmark):
        warehouse = EventWarehouse()
        for tuple_ in make_batch(10_000):
            warehouse.load(tuple_)
        rows = benchmark(
            lambda: warehouse.query().rollup_time("hour", "temperature", "avg")
        )
        assert rows
