"""Experiment F2 — Figure 2: the designer and its consistency checks.

Figure 2 is the canvas: what makes it more than a drawing tool is that
"the user interface provides different checks in order to draw only
dataflows that can be soundly translated".  This benchmark measures the
cost of a full validation pass (schema propagation + condition type
checking + structural checks) as canvases grow, and regenerates the
accept/reject matrix over a catalogue of representative good and broken
canvases.

Expected shape: validation cost grows roughly linearly in canvas size;
every broken canvas is rejected with an issue anchored to the offending
node; every sound canvas is accepted.
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import (
    AggregationSpec,
    FilterSpec,
    JoinSpec,
    TriggerOnSpec,
    VirtualPropertySpec,
)
from repro.dataflow.validate import validate_dataflow
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.subscription import SubscriptionFilter
from repro.sensors.osaka import osaka_fleet


def registry():
    net = BrokerNetwork()
    for sensor in osaka_fleet(Topology.star(leaf_count=3), extended=True):
        net.publish(sensor.metadata)
    return net.registry


def chain_canvas(length: int) -> Dataflow:
    """A source -> N alternating operators -> sink chain."""
    flow = Dataflow(f"chain-{length}")
    previous = flow.add_source(
        SubscriptionFilter(sensor_ids=("osaka-temp-umeda",)), node_id="src"
    )
    for index in range(length):
        if index % 3 == 0:
            spec = FilterSpec("temperature > -100")
        elif index % 3 == 1:
            spec = VirtualPropertySpec(f"v{index}", "temperature * 2")
        else:
            spec = FilterSpec(f"v{index - 1} > -1000")
        node = flow.add_operator(spec, node_id=f"op-{index}")
        flow.connect(previous, node)
        previous = node
    sink = flow.add_sink(node_id="out")
    flow.connect(previous, sink)
    return flow


@pytest.mark.benchmark(group="fig2-validation")
@pytest.mark.parametrize("length", [2, 8, 32])
def test_validation_cost_vs_canvas_size(benchmark, length):
    reg = registry()
    flow = chain_canvas(length)
    report = benchmark(lambda: validate_dataflow(flow, reg))
    benchmark.extra_info["canvas_operators"] = length
    assert report.is_valid


def _canvas_catalogue(reg):
    """(name, flow, should_be_valid) canvases for the accept/reject matrix."""
    catalogue = []

    def sound_linear():
        flow = Dataflow("sound-linear")
        src = flow.add_source(
            SubscriptionFilter(sensor_ids=("osaka-temp-umeda",)), node_id="s"
        )
        op = flow.add_operator(FilterSpec("temperature > 24"), node_id="f")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, op)
        flow.connect(op, sink)
        return flow

    def sound_join():
        flow = Dataflow("sound-join")
        a = flow.add_source(
            SubscriptionFilter(sensor_ids=("osaka-temp-umeda",)), node_id="a"
        )
        b = flow.add_source(
            SubscriptionFilter(sensor_ids=("osaka-humidity-umeda",)),
            node_id="b",
        )
        join = flow.add_operator(
            JoinSpec(interval=60.0, predicate="true"), node_id="j"
        )
        sink = flow.add_sink(node_id="k")
        flow.connect(a, join, port=0)
        flow.connect(b, join, port=1)
        flow.connect(join, sink)
        return flow

    def sound_trigger():
        flow = Dataflow("sound-trigger")
        temp = flow.add_source(
            SubscriptionFilter(sensor_ids=("osaka-temp-umeda",)), node_id="t"
        )
        rain = flow.add_source(
            SubscriptionFilter(sensor_ids=("osaka-rain-umeda",)),
            node_id="r", initially_active=False,
        )
        trig = flow.add_operator(
            TriggerOnSpec(interval=300.0, condition="avg_temperature > 25",
                          targets=("osaka-rain-umeda",)),
            node_id="trig",
        )
        sink = flow.add_sink(node_id="k")
        flow.connect(temp, trig)
        flow.connect(rain, sink)
        flow.connect_control(trig, rain)
        return flow

    def bad_attribute():
        flow = sound_linear()
        flow.replace_operator("f", FilterSpec("rainfall > 3"))
        return flow

    def bad_types():
        flow = sound_linear()
        flow.replace_operator("f", FilterSpec("station > 3"))
        return flow

    def bad_dangling_port():
        flow = sound_join()
        flow.disconnect("b", "j", port=1)
        return flow

    def bad_no_sensor():
        flow = Dataflow("bad-no-sensor")
        src = flow.add_source(SubscriptionFilter(sensor_ids=("ghost",)),
                              node_id="s")
        sink = flow.add_sink(node_id="k")
        flow.connect(src, sink)
        return flow

    def bad_uncontrolled_trigger():
        flow = sound_trigger()
        flow.control_edges.clear()
        return flow

    def bad_aggregate_text():
        flow = sound_linear()
        flow.replace_operator(
            "f",
            AggregationSpec(interval=60.0, attributes=("station",),
                            function="SUM"),
        )
        return flow

    catalogue.append(("sound linear", sound_linear(), True))
    catalogue.append(("sound join", sound_join(), True))
    catalogue.append(("sound trigger", sound_trigger(), True))
    catalogue.append(("unknown attribute", bad_attribute(), False))
    catalogue.append(("string compared to int", bad_types(), False))
    catalogue.append(("dangling join port", bad_dangling_port(), False))
    catalogue.append(("filter matches no sensor", bad_no_sensor(), False))
    catalogue.append(("trigger without control edge",
                      bad_uncontrolled_trigger(), False))
    catalogue.append(("SUM over string attribute", bad_aggregate_text(), False))
    return catalogue


def test_accept_reject_matrix(capsys):
    reg = registry()
    rows = []
    for name, flow, expected in _canvas_catalogue(reg):
        report = validate_dataflow(flow, reg)
        rows.append((name, expected, report.is_valid,
                     report.errors[0].node_id if report.errors else "-"))
        assert report.is_valid == expected, name
    with capsys.disabled():
        print("\n== Figure 2: consistency-check accept/reject matrix ==")
        print(f"  {'canvas':32s} {'expected':9s} {'verdict':9s} anchored-at")
        for name, expected, verdict, anchor in rows:
            word = "accept" if verdict else "reject"
            want = "accept" if expected else "reject"
            print(f"  {name:32s} {want:9s} {word:9s} {anchor}")


@pytest.mark.benchmark(group="fig2-validation")
def test_catalogue_validation_throughput(benchmark):
    reg = registry()
    canvases = [flow for _name, flow, _ok in _canvas_catalogue(reg)]

    def validate_all():
        return [validate_dataflow(flow, reg) for flow in canvases]

    reports = benchmark(validate_all)
    benchmark.extra_info["canvases"] = len(canvases)
    assert sum(1 for r in reports if r.is_valid) == 3
