"""Experiment F3 — Figure 3: monitoring the execution of the dataflow.

Regenerates everything the paper's monitoring screen shows: "the number of
tuples that each operation handle per second, the node that suffers
because of high workload, which node is in charge of executing an
operation and when the assignment changes" — by running the scenario,
forcing an overload mid-run, and reading the monitor's series back.

Expected shape: per-operation rate series are non-trivial during active
hours; the overloaded node is flagged while it suffers; exactly the
processes on that node migrate, and each migration appears in the
assignment-change log with its reason.
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack


def monitored_run():
    stack = build_stack(rebalance_interval=300.0)
    flow = Dataflow("monitored")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    keep = flow.add_operator(FilterSpec("temperature > -100"), node_id="keep")
    out = flow.add_sink("collector", node_id="out")
    flow.connect(src, keep)
    flow.connect(keep, out)
    deployment = stack.executor.deploy(flow)

    stack.run_until(3600.0)
    victim = deployment.process("keep").node_id
    stack.topology.node(victim).register_process("external-hog", demand=5000.0)
    stack.run_until(2 * 3600.0)
    stack.topology.node(victim).unregister_process("external-hog")
    stack.run_until(3 * 3600.0)
    return stack, deployment, victim


@pytest.mark.benchmark(group="fig3-monitoring")
def test_monitoring_run(benchmark):
    stack, deployment, victim = benchmark.pedantic(
        monitored_run, rounds=1, iterations=1
    )
    monitor = stack.executor.monitor

    rate_series = monitor.operation_rates["monitored/monitored:keep"]
    utilization = monitor.node_utilization[victim]
    changes = [c for c in monitor.assignment_log
               if c.process_id.startswith("monitored:")]

    benchmark.extra_info.update({
        "rate_samples": len(rate_series),
        "peak_rate_tuples_per_s": rate_series.maximum(),
        "victim_peak_utilization": utilization.maximum(),
        "assignment_changes": len(changes),
        "suffering_flagged": utilization.maximum() > 1.0,
    })

    assert rate_series.maximum() > 0
    assert utilization.maximum() > 1.0      # the hog made it suffer
    assert changes                          # and the SCN reacted
    assert changes[0].from_node == victim


def test_fig3_series_rows(capsys):
    stack, deployment, victim = monitored_run()
    monitor = stack.executor.monitor
    rate = monitor.operation_rates["monitored/monitored:keep"]
    util = monitor.node_utilization[victim]
    with capsys.disabled():
        print("\n== Figure 3: tuples/s per operation (keep) ==")
        for t, value in rate.points[:12]:
            bar = "#" * int(value * 200)
            print(f"  t={t:7.0f}s  {value:6.3f}/s {bar}")
        print(f"== Figure 3: utilization of suffering node {victim} ==")
        for t, value in util.points[:12]:
            flag = " << suffering" if value > 1.0 else ""
            print(f"  t={t:7.0f}s  {value:7.1%}{flag}")
        print("== Figure 3: assignment changes ==")
        for change in monitor.assignment_log:
            print(f"  t={change.time:7.0f}s  {change.process_id}: "
                  f"{change.from_node} -> {change.to_node}  ({change.reason})")
    assert monitor.assignment_log
