"""Columnar-execution before/after benchmark runner (writes ``BENCH_9.json``).

Measures what the columnar tier (PR 9) buys on a fused chain: the same
:class:`~repro.streams.fused.FusedOperator` runs each batch either as a
pipeline of whole-column kernels over a struct-of-arrays
:class:`~repro.streams.columnar.ColumnarBatch` (columnar), or through
the per-tuple member loop (row).  Both variants are one process on one
node — fusion already removed the hops in PR 7 — so the *only* delta
under test is the execution strategy inside the process.

- ``columnar_chain``    — tuples/sec through the 4-op acceptance chain
  (filter -> transform -> validate -> virtual-property), columnar vs
  row, at batch=8 and batch=32.  The row variant is the identical
  ``FusedOperator`` with ``fused.columnar = False`` — the ``--no-columnar``
  escape hatch, exactly.  Acceptance: columnar >= 3x row at batch=32.
- ``filter_transform``  — the 2-op vectorized filter -> transform chain
  the CI smoke job guards at >= 2x (a shorter chain amortizes the
  to/from-columnar conversion over less work, so its floor is lower).
- ``process_receive``   — the exact BENCH_4/5/7/8 batch=1 dispatch
  workload.  Single tuples never enter the columnar tier
  (``MIN_COLUMNAR_ROWS``), so the row path must hold BENCH_8's record.
  Acceptance: within 5%.
- ``probe_batched``     — the batch=32 dispatch workload with the SLO
  plane installed; ``note_batch`` commits once per batch (satellite 1),
  so the probe overhead must stay <= 20% (BENCH_8 measured the
  per-tuple probe at 60%).

Before any rate is believed, the per-member ``OperatorStats`` of the
two variants are asserted identical — the same collapse guard BENCH_7
uses, and the bench-side echo of the Hypothesis parity suite.

Usage::

    python -m benchmarks.run_columnar --json              # full run
    python -m benchmarks.run_columnar --json --quick      # CI-scale run
    python -m benchmarks.run_columnar --json --smoke      # crash check
    python -m benchmarks.run_columnar --json --enforce    # fail on regression
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchmarks._batches import line_sim
from benchmarks._batches import make_tuple as _make_tuple
from benchmarks._timing import gc_controlled as _gc_controlled
from benchmarks.run_fusion import _chain_members
from benchmarks.run_latency import bench_probe_batched

from repro.runtime.process import OperatorProcess
from repro.streams.filter import FilterOperator
from repro.streams.fused import FusedOperator
from repro.streams.transform import TransformOperator
from repro.streams.tuple import TupleBatch

#: Batch sizes the chain is measured at (both above ``MIN_COLUMNAR_ROWS``).
BATCH_SIZES = (8, 32)

#: columnar speedup acceptance floor vs the row path, 4-op chain, batch=32.
SPEEDUP_FLOOR = 3.0

#: CI smoke floor for the 2-op filter -> transform chain at batch=32.
SMOKE_FLOOR = 2.0

#: ``process_receive`` may regress at most this much against BENCH_8.
REGRESSION_BOUND_PCT = 5.0

#: installed-probe overhead ceiling on the batched path (satellite 1).
PROBE_OVERHEAD_BOUND_PCT = 20.0


def _short_chain() -> "list":
    """The CI smoke chain: vectorized filter -> transform."""
    return [
        FilterOperator("temperature > -100", name="keep"),
        TransformOperator(
            assignments={"fahrenheit": "temperature * 1.8 + 32"},
            name="to-f",
        ),
    ]


def _deploy(members, columnar: bool):
    """One fused process hosting ``members`` on a 1-node sim.

    The row variant is produced by flipping ``fused.columnar`` — the
    same switch the executor's ``columnar=`` knob and the CLI's
    ``--no-columnar`` flag flip, so the benchmark prices exactly what
    the escape hatch costs.
    """
    sim = line_sim(1)
    fused = FusedOperator(members)
    fused.columnar = columnar
    process = OperatorProcess(
        process_id="bench:" + "+".join(m.name for m in members),
        operator=fused, node_id="n0", netsim=sim,
    )
    process.start()
    return sim, process


def _chain_cost(make_members, columnar: bool, iterations: int, batch: int):
    """One timed pass: feed + drain.

    Returns ``(seconds, per-member stats snapshots)``.
    """
    members = make_members()
    sim, process = _deploy(members, columnar)
    tuples = [_make_tuple(i) for i in range(iterations)]
    with _gc_controlled():
        start = time.perf_counter()
        receive_batch = process.receive_batch
        for at in range(0, iterations, batch):
            receive_batch(TupleBatch.of(tuples[at:at + batch]))
        sim.clock.run()
        cost = time.perf_counter() - start
    if members[-1].stats.tuples_out != iterations:
        raise AssertionError(
            f"chain lost tuples (columnar={columnar}): "
            f"{members[-1].stats.tuples_out} of {iterations} emerged"
        )
    return cost, [member.stats.snapshot() for member in members]


def bench_columnar_chain(make_members, iterations: int,
                         repeat: int = 7) -> dict:
    """Chain throughput, columnar vs row, per batch size.

    Passes are *interleaved* (row, columnar, row, columnar, ...) so a
    drifting machine cannot systematically favour whichever variant
    happened to run in the quieter block; best-of-N per variant then
    discards the noisy passes on both sides symmetrically.
    """
    out: dict = {"chain": [m.name for m in make_members()]}
    for batch in BATCH_SIZES:
        costs = {"row": float("inf"), "columnar": float("inf")}
        stats: dict = {}
        for _ in range(repeat):
            for columnar in (False, True):
                key = "columnar" if columnar else "row"
                cost, member_stats = _chain_cost(
                    make_members, columnar, iterations, batch
                )
                costs[key] = min(costs[key], cost)
                stats[key] = member_stats
        # A collapse guard before any rate is believed: every member
        # must have done identical work in both variants.
        if stats["columnar"] != stats["row"]:
            raise AssertionError(
                f"member-stats parity broken at batch={batch}: {stats}"
            )
        out[f"row_batch{batch}"] = round(iterations / costs["row"])
        out[f"columnar_batch{batch}"] = round(iterations / costs["columnar"])
        out[f"speedup_batch{batch}"] = round(
            costs["row"] / costs["columnar"], 2
        )
    return out


def bench_process_receive(iterations: int, repeat: int = 8) -> dict:
    """The exact BENCH_4/5/7/8 batch=1 dispatch workload.

    Single tuples ride the row path unconditionally (the columnar tier
    gates on ``MIN_COLUMNAR_ROWS``), so this prices what the tier costs
    when it cannot help: nothing.  Compared against the *recorded*
    BENCH_8 rate; best-of-8 to shrug off transient machine noise.
    """

    def feed(n):
        process = OperatorProcess(
            process_id="bench:filter",
            operator=FilterOperator("temperature > 24"),
            node_id="n0",
            netsim=line_sim(),
        )
        process.start()
        tuple_ = _make_tuple(0)
        receive = process.receive
        for _ in range(n):
            receive(tuple_)

    best = float("inf")
    for _ in range(repeat):
        with _gc_controlled():
            start = time.perf_counter()
            feed(iterations)
            best = min(best, time.perf_counter() - start)
    return {"tuples_per_sec": round(iterations / best)}


# -- runner -----------------------------------------------------------------


def _vs_bench8(rates: dict, bench8: "dict | None") -> dict:
    """Regression of the per-tuple dispatch rate vs BENCH_8's record."""
    if not bench8:
        return {}
    recorded = bench8.get("results", {}).get("process_receive", {}).get(
        "tuples_per_sec"
    )
    measured = rates.get("tuples_per_sec")
    if not recorded or not measured:
        return {}
    return {
        "bench8_tuples_per_sec": recorded,
        "vs_bench8_pct": round((recorded - measured) / recorded * 100.0, 1),
    }


def run(scale: int = 1, bench8: "dict | None" = None) -> dict:
    chain_iters = 60_000 // scale
    receive_iters = 100_000 // scale
    probe_iters = 60_000 // scale

    chain4 = bench_columnar_chain(_chain_members, chain_iters)
    chain2 = bench_columnar_chain(_short_chain, chain_iters)
    receive = bench_process_receive(receive_iters)
    receive.update(_vs_bench8(receive, bench8))
    probed = bench_probe_batched(probe_iters)

    return {
        "bench": "columnar-batch-execution",
        "issue": 9,
        "scale_divisor": scale,
        "unit": "tuples/sec through the fused chain (feed + drain)",
        "batch_sizes": list(BATCH_SIZES),
        "notes": {
            "columnar_chain": "filter -> transform -> validate -> "
                              "virtual-property as ONE FusedOperator on "
                              "one node; columnar runs it as whole-column "
                              "kernels over a struct-of-arrays batch with "
                              "selection-vector filtering, row is the "
                              "identical operator with fused.columnar = "
                              "False (the --no-columnar path); per-member "
                              "OperatorStats asserted identical across "
                              "variants before rates are reported; passes "
                              "interleaved row/columnar against drift",
            "filter_transform": "the 2-op vectorized chain the CI "
                                "columnar-smoke job guards at >= "
                                f"{SMOKE_FLOOR}x",
            "process_receive": "exact BENCH_4/5/7/8 batch=1 dispatch "
                               "workload — single tuples never enter the "
                               "columnar tier (MIN_COLUMNAR_ROWS), so the "
                               "row path must hold BENCH_8's record",
            "probe_batched": "batch=32 dispatch with the SLO plane "
                             "installed; note_batch commits once per "
                             "batch (one running-max update + one "
                             "worst-latency observe) so the overhead must "
                             f"stay <= {PROBE_OVERHEAD_BOUND_PCT}% "
                             "(BENCH_8's per-tuple probe: 60%)",
            "acceptance": f"columnar >= {SPEEDUP_FLOOR}x row on the 4-op "
                          "chain at batch=32; process_receive within "
                          f"{REGRESSION_BOUND_PCT}% of BENCH_8; "
                          "probe_overhead_pct <= "
                          f"{PROBE_OVERHEAD_BOUND_PCT}",
        },
        "results": {
            "columnar_chain": chain4,
            "filter_transform": chain2,
            "process_receive": receive,
            "probe_batched": probed,
        },
    }


def check(report: dict) -> "list[str]":
    """Acceptance violations in a **full-scale** report."""
    problems = []
    results = report["results"]
    speedup = results.get("columnar_chain", {}).get("speedup_batch32")
    if speedup is not None and speedup < SPEEDUP_FLOOR:
        problems.append(
            f"columnar_chain: columnar speedup {speedup}x at batch=32 is "
            f"below the {SPEEDUP_FLOOR}x floor"
        )
    regression = results.get("process_receive", {}).get("vs_bench8_pct")
    if regression is not None and regression > REGRESSION_BOUND_PCT:
        problems.append(
            f"process_receive: regressed {regression}% vs BENCH_8 "
            f"(bound {REGRESSION_BOUND_PCT}%)"
        )
    overhead = results.get("probe_batched", {}).get("probe_overhead_pct")
    if overhead is not None and overhead > PROBE_OVERHEAD_BOUND_PCT:
        problems.append(
            f"probe_batched: installed-probe overhead {overhead}% exceeds "
            f"the {PROBE_OVERHEAD_BOUND_PCT}% bound"
        )
    return problems


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_9.json next to the repo root")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI-scale; speedup "
                             "ratios remain comparable)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny iteration counts (crash check only)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when acceptance bounds are violated "
                             "(meaningful only at full scale)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: <repo>/BENCH_9.json)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    bench8 = None
    bench8_path = root / "BENCH_8.json"
    if bench8_path.exists():
        bench8 = json.loads(bench8_path.read_text())

    scale = 40 if args.smoke else 8 if args.quick else 1
    report = run(scale=scale, bench8=bench8)
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        out = args.out or root / "BENCH_9.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}")
    if args.enforce and scale == 1:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            sys.exit(1)
        print("acceptance bounds hold")


if __name__ == "__main__":
    main()
