"""Experiment P3 — plug-and-play and on-the-fly modification.

Demo part P3: new sensors join a live network and are "directly available
to StreamLoader"; operators are modified on the fly.  Measured artifacts:

- time (virtual) from a sensor's publication to its first tuple arriving
  at a standing subscription — the plug-and-play latency;
- stream continuity across a live operator swap: tuples keep flowing,
  zero restarts.

Expected shape: plug-and-play latency is one sensor period plus network
delay (the subscription matches at publication, so the first emission is
already routed); operator replacement loses nothing upstream of the
swapped process.
"""

import pytest

from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import FilterSpec
from repro.pubsub.subscription import SubscriptionFilter
from repro.scenario import build_stack
from repro.sensors.physical import temperature_sensor
from repro.stt.spatial import Point


def deployed_stack():
    stack = build_stack()
    flow = Dataflow("p3")
    src = flow.add_source(SubscriptionFilter(sensor_type="temperature"),
                          node_id="src")
    keep = flow.add_operator(FilterSpec("temperature > -100"), node_id="keep")
    out = flow.add_sink("collector", node_id="out")
    flow.connect(src, keep)
    flow.connect(keep, out)
    deployment = stack.executor.deploy(flow)
    stack.run_until(1800.0)
    return stack, deployment


def plug_latency() -> tuple:
    stack, deployment = deployed_stack()
    publish_time = stack.clock.now
    newcomer = temperature_sensor("late-joiner", Point(34.66, 135.52),
                                  "edge-1", frequency=1.0 / 60.0)
    newcomer.attach(stack.broker_network, stack.clock)
    stack.run_until(publish_time + 600.0)
    arrivals = [t.stamp.time for t in deployment.collected("out")
                if t.source == "late-joiner"]
    assert arrivals, "plugged sensor never reached the dataflow"
    return stack, arrivals[0] - publish_time


@pytest.mark.benchmark(group="p3-plug-and-play")
def test_plug_and_play_latency(benchmark):
    stack, latency = benchmark.pedantic(plug_latency, rounds=1, iterations=1)
    benchmark.extra_info["first_tuple_latency_s"] = latency
    # One sensor period (60 s) plus sub-second delivery.
    assert 59.0 <= latency <= 62.0


def modification_continuity() -> tuple:
    stack, deployment = deployed_stack()
    from repro.runtime.lifecycle import replace_operator_live

    tuples_in_before = deployment.process("keep").operator.stats.tuples_in
    swap_time = stack.clock.now
    replace_operator_live(deployment, "keep",
                          FilterSpec("temperature > -50"))
    stack.run_until(swap_time + 1800.0)
    new_stats = deployment.process("keep").operator.stats
    return stack, deployment, tuples_in_before, new_stats.tuples_in, swap_time


@pytest.mark.benchmark(group="p3-modification")
def test_live_modification_continuity(benchmark):
    stack, deployment, before, after, swap_time = benchmark.pedantic(
        modification_continuity, rounds=1, iterations=1
    )
    # The replacement operator starts from zero and keeps consuming.
    expected = 4 * (1800.0 / 60.0)  # 4 sensors at 1/60 Hz for 30 min
    benchmark.extra_info.update({
        "tuples_before_swap": before,
        "tuples_after_swap": after,
        "expected_after_swap": expected,
    })
    assert after >= expected * 0.9
    # Downstream kept receiving across the swap.
    received = [t.stamp.time for t in deployment.collected("out")]
    assert any(t > swap_time for t in received)
    assert any(t < swap_time for t in received)


def test_p3_rows(capsys):
    _stack, latency = plug_latency()
    _s, _d, before, after, _t = modification_continuity()
    with capsys.disabled():
        print("\n== P3: plug-and-play & live modification ==")
        print(f"  plug-and-play first-tuple latency: {latency:.2f} s "
              f"(sensor period 60 s)")
        print(f"  tuples consumed before swap: {before}")
        print(f"  tuples consumed by replacement in 30 min: {after}")
