"""Ablation A3 — pub-sub scalability with fleet size and churn.

The requirements call for a publish-subscribe layer because of "the
dynamicity with which [sensors] can join and leave the network".  This
ablation measures, as the fleet grows: advertisement fan-out cost,
discovery query latency, and data-plane routing cost per reading; plus the
cost of churn (join/leave cycles against standing subscriptions).

Expected shape: advertisement count grows with (sensors x brokers);
discovery stays linear in fleet size; per-reading routing cost is flat
(route tables are precomputed per sensor); churn cost is dominated by
route rebuilds, linear in standing subscriptions.
"""

import pytest

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.discovery import DiscoveryService
from repro.pubsub.stamping import backfill_stamp
from repro.pubsub.subscription import SubscriptionFilter
from repro.sensors.physical import temperature_sensor
from repro.stt.spatial import Point

FLEET_SIZES = [10, 50, 200]


def make_fleet(count: int, topo: Topology):
    nodes = topo.node_ids
    return [
        temperature_sensor(
            f"temp-{index:04d}",
            Point(34.5 + (index % 60) * 0.005, 135.3 + (index // 60) * 0.005),
            nodes[index % len(nodes)],
        )
        for index in range(count)
    ]


@pytest.mark.benchmark(group="pubsub-publish")
@pytest.mark.parametrize("count", FLEET_SIZES)
def test_publish_fanout(benchmark, count):
    def publish_all():
        topo = Topology.star(leaf_count=4)
        net = BrokerNetwork(netsim=NetworkSimulator(topology=topo))
        for node_id in topo.node_ids:
            net.broker(node_id)
        for sensor in make_fleet(count, topo):
            net.publish(sensor.metadata)
        return net

    net = benchmark(publish_all)
    benchmark.extra_info.update({
        "sensors": count,
        "advertisements": net.advertisements_sent,
    })
    assert net.advertisements_sent == count * 4  # to every other broker


@pytest.mark.benchmark(group="pubsub-discovery")
@pytest.mark.parametrize("count", FLEET_SIZES)
def test_discovery_latency(benchmark, count):
    topo = Topology.star(leaf_count=4)
    net = BrokerNetwork()
    for sensor in make_fleet(count, topo):
        net.publish(sensor.metadata)
    discovery = DiscoveryService(net.registry)
    from repro.stt.spatial import Box

    area = Box(south=34.5, west=135.3, north=34.6, east=135.5)
    results = benchmark(lambda: discovery.find(sensor_type="temperature",
                                               area=area))
    benchmark.extra_info["sensors"] = count
    benchmark.extra_info["matches"] = len(results)
    assert len(results) <= count


@pytest.mark.benchmark(group="pubsub-routing")
@pytest.mark.parametrize("count", FLEET_SIZES)
def test_data_plane_routing(benchmark, count):
    topo = Topology.star(leaf_count=4)
    net = BrokerNetwork()  # in-process: isolates routing cost
    fleet = make_fleet(count, topo)
    for sensor in fleet:
        net.publish(sensor.metadata)
    received = []
    net.subscribe("hub", SubscriptionFilter(sensor_type="temperature"),
                  received.append)
    metadata = fleet[0].metadata
    reading = backfill_stamp({"temperature": 20.0, "station": "x"},
                             metadata, now=0.0)

    def route_thousand():
        for _ in range(1000):
            net.publish_data(metadata.sensor_id, reading)

    benchmark(route_thousand)
    benchmark.extra_info["sensors"] = count
    assert received


@pytest.mark.benchmark(group="pubsub-churn")
@pytest.mark.parametrize("subscriptions", [1, 20, 100])
def test_churn_cost(benchmark, subscriptions):
    topo = Topology.star(leaf_count=4)
    net = BrokerNetwork()
    for sensor in make_fleet(50, topo):
        net.publish(sensor.metadata)
    for index in range(subscriptions):
        net.subscribe("hub", SubscriptionFilter(sensor_type="temperature"),
                      lambda t: None)
    churner = temperature_sensor("churner", Point(34.7, 135.5), "hub")

    def join_leave():
        net.publish(churner.metadata)
        net.unpublish("churner")

    benchmark(join_leave)
    benchmark.extra_info["standing_subscriptions"] = subscriptions
