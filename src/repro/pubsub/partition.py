"""Key-hash partitioning router for sharded subscribers.

When a blocking operator is deployed as N shards, its source-side input
is no longer one subscription but N — one per shard process, each on its
own node.  A :class:`ShardRouter` stands in the broker's routing tables
where the single subscription would have been and resolves, per tuple,
*which* member subscription receives it: the one whose shard owns the
tuple's key under :func:`repro.streams.shard.partition_index`.

The router is routing-table furniture, not a subscription: it has no
delivery counters of its own (the members keep theirs, so pause/resume
and dead-letter accounting are unchanged), and the broker treats a
resolved member exactly like any directly-routed subscription.
"""

from __future__ import annotations

from typing import Sequence

from repro.pubsub.subscription import Subscription
from repro.streams.shard import partition_index
from repro.streams.tuple import SensorTuple, TupleBatch


class ShardRouter:
    """Routes each tuple of a stream to one of N member subscriptions.

    ``assignment`` (optional) is the elastic overlay shared with the
    runtime's ShardGroup: when present it is consulted per key ahead of
    the hash default, so a rebalancer's migrations and hot-key splits
    re-route broker deliveries and operator forwarding identically.
    """

    __slots__ = ("members", "keys", "assignment")

    def __init__(
        self,
        members: "Sequence[Subscription]",
        keys: "Sequence[str]",
        assignment=None,
    ) -> None:
        self.members: list[Subscription] = list(members)
        self.keys = tuple(keys)
        self.assignment = assignment
        for member in self.members:
            member.router = self

    @property
    def filter(self):
        """Members share one filter; expose it for route (re)building."""
        return self.members[0].filter

    def member_for(self, tuple_: SensorTuple) -> Subscription:
        values = tuple(tuple_.get(key) for key in self.keys)
        if self.assignment is not None:
            return self.members[self.assignment.index_for(values)]
        return self.members[partition_index(values, len(self.members))]

    def split_batch(
        self, batch: TupleBatch
    ) -> "list[tuple[Subscription, TupleBatch]]":
        """Partition a batch into per-member sub-batches.

        Arrival order is preserved inside each sub-batch, and members are
        visited in shard order — both deterministic, so batched delivery
        through a router stays parity-equal to tuple-at-a-time delivery.
        """
        count = len(self.members)
        keys = self.keys
        assignment = self.assignment
        buckets: dict[int, list[SensorTuple]] = {}
        for tuple_ in batch:
            values = tuple(tuple_.get(key) for key in keys)
            index = (assignment.index_for(values) if assignment is not None
                     else partition_index(values, count))
            buckets.setdefault(index, []).append(tuple_)
        return [
            (self.members[index], batch.with_tuples(buckets[index]))
            for index in sorted(buckets)
        ]
