"""Sensor metadata and the sensor registry.

A published sensor advertises exactly what the paper lists — its type, its
schema and its frequency of data generation — plus the location and the
network node managing it, which discovery and placement need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DuplicateSensorError, PubSubError, UnknownSensorError
from repro.schema.schema import StreamSchema
from repro.stt.spatial import SpatialObject
from repro.stt.thematic import Theme


@dataclass(frozen=True)
class SensorMetadata:
    """Advertisement of one published sensor.

    Attributes:
        sensor_id: unique id, e.g. ``"osaka-temp-03"``.
        sensor_type: type label, e.g. ``"temperature"`` or ``"twitter"``.
        schema: schema of the produced tuples (with STT metadata).
        frequency: readings per second (0.2 = one reading every 5 s).
        location: where the sensor sits (social sensors use their coverage
            area's representative point).
        node_id: network node managing this sensor.
        physical: physical (True) vs social (False) sensor.
        description: free-text, shown in the designer palette.
    """

    sensor_id: str
    sensor_type: str
    schema: StreamSchema
    frequency: float
    location: SpatialObject
    node_id: str
    physical: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.sensor_id:
            raise PubSubError("sensor_id must be non-empty")
        if not self.sensor_type:
            raise PubSubError("sensor_type must be non-empty")
        if self.frequency <= 0:
            raise PubSubError(
                f"sensor {self.sensor_id!r}: frequency must be positive, "
                f"got {self.frequency}"
            )

    @property
    def period(self) -> float:
        """Seconds between consecutive readings."""
        return 1.0 / self.frequency

    @property
    def themes(self) -> tuple[Theme, ...]:
        return self.schema.themes

    def has_theme(self, theme: "Theme | str") -> bool:
        target = theme if isinstance(theme, Theme) else Theme(theme)
        return any(t.matches(target) for t in self.schema.themes)


class SensorRegistry:
    """All currently-published sensors, indexed by id."""

    def __init__(self) -> None:
        self._sensors: dict[str, SensorMetadata] = {}

    def register(self, metadata: SensorMetadata) -> None:
        if metadata.sensor_id in self._sensors:
            raise DuplicateSensorError(
                f"sensor {metadata.sensor_id!r} is already published"
            )
        self._sensors[metadata.sensor_id] = metadata

    def unregister(self, sensor_id: str) -> SensorMetadata:
        try:
            return self._sensors.pop(sensor_id)
        except KeyError:
            raise UnknownSensorError(f"unknown sensor {sensor_id!r}") from None

    def get(self, sensor_id: str) -> SensorMetadata:
        try:
            return self._sensors[sensor_id]
        except KeyError:
            raise UnknownSensorError(f"unknown sensor {sensor_id!r}") from None

    def __contains__(self, sensor_id: object) -> bool:
        return sensor_id in self._sensors

    def __len__(self) -> int:
        return len(self._sensors)

    def all(self) -> list[SensorMetadata]:
        return list(self._sensors.values())

    def by_type(self, sensor_type: str) -> list[SensorMetadata]:
        return [m for m in self._sensors.values() if m.sensor_type == sensor_type]

    def by_node(self, node_id: str) -> list[SensorMetadata]:
        return [m for m in self._sensors.values() if m.node_id == node_id]
