"""Sensor discovery and organisation.

Requirements section: *"sources of dataflows should be specified by means
of the sensor and location characteristics.  Finally, sensors can be
organized according to different criteria (temporal/spatial, type/location)
in order to facilitate the specification of dataflows."*

The discovery service answers the designer's palette queries against the
registry and groups results by the organisation criteria the paper names.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import PubSubError
from repro.pubsub.registry import SensorMetadata, SensorRegistry
from repro.stt.granularity import temporal_granularity
from repro.stt.spatial import Box, grid_cell_for, representative_point
from repro.stt.thematic import Theme


class DiscoveryService:
    """Query and organise the published sensor fleet."""

    def __init__(self, registry: SensorRegistry) -> None:
        self.registry = registry

    # -- queries ------------------------------------------------------------

    def find(
        self,
        sensor_type: str = "",
        theme: "Theme | str | None" = None,
        area: "Box | None" = None,
        physical: "bool | None" = None,
        min_frequency: float = 0.0,
        max_frequency: float = float("inf"),
    ) -> list[SensorMetadata]:
        """Sensors matching all the given criteria, id-sorted."""
        if min_frequency > max_frequency:
            raise PubSubError(
                f"min_frequency ({min_frequency}) exceeds "
                f"max_frequency ({max_frequency})"
            )
        results = []
        for metadata in self.registry.all():
            if sensor_type and metadata.sensor_type != sensor_type:
                continue
            if theme is not None and not metadata.has_theme(theme):
                continue
            if area is not None and not area.contains(
                representative_point(metadata.location)
            ):
                continue
            if physical is not None and metadata.physical != physical:
                continue
            if not (min_frequency <= metadata.frequency <= max_frequency):
                continue
            results.append(metadata)
        return sorted(results, key=lambda m: m.sensor_id)

    def types(self) -> list[str]:
        """All sensor types currently published."""
        return sorted({m.sensor_type for m in self.registry.all()})

    def themes(self) -> list[Theme]:
        """All root themes represented in the fleet."""
        roots = {theme.root for m in self.registry.all() for theme in m.themes}
        return sorted(roots, key=lambda t: t.path)

    # -- organisation criteria (paper: temporal/spatial, type/location) -------

    def group_by_type(self) -> dict[str, list[SensorMetadata]]:
        groups: dict[str, list[SensorMetadata]] = defaultdict(list)
        for metadata in self.registry.all():
            groups[metadata.sensor_type].append(metadata)
        return {
            key: sorted(group, key=lambda m: m.sensor_id)
            for key, group in sorted(groups.items())
        }

    def group_by_location(
        self, granularity: str = "city"
    ) -> dict[str, list[SensorMetadata]]:
        """Group sensors by the spatial-granularity cell containing them."""
        gran = granularity
        groups: dict[str, list[SensorMetadata]] = defaultdict(list)
        for metadata in self.registry.all():
            cell = grid_cell_for(representative_point(metadata.location), gran)
            key = f"{cell.granularity.name}({cell.row},{cell.col})"
            groups[key].append(metadata)
        return {
            key: sorted(group, key=lambda m: m.sensor_id)
            for key, group in sorted(groups.items())
        }

    def group_by_rate(self) -> dict[str, list[SensorMetadata]]:
        """Group sensors by the temporal granularity of their cadence.

        A sensor emitting every 2 seconds lands in the ``second`` bucket;
        one emitting every 10 minutes in ``minute``; and so on.
        """
        order = ("second", "minute", "hour", "day", "week", "month", "year")
        groups: dict[str, list[SensorMetadata]] = defaultdict(list)
        for metadata in self.registry.all():
            bucket = order[-1]
            for name in order:
                if metadata.period <= temporal_granularity(name).seconds:
                    bucket = name
                    break
            groups[bucket].append(metadata)
        return {
            key: sorted(group, key=lambda m: m.sensor_id)
            for key, group in groups.items()
        }

    def group_by_node(self) -> dict[str, list[SensorMetadata]]:
        groups: dict[str, list[SensorMetadata]] = defaultdict(list)
        for metadata in self.registry.all():
            groups[metadata.node_id].append(metadata)
        return {
            key: sorted(group, key=lambda m: m.sensor_id)
            for key, group in sorted(groups.items())
        }
