"""Subscriptions: who receives which sensor streams.

A subscription pairs a filter (by sensor id, type, theme, area) with a
delivery callback and an activation state.  The activation state is the
control-plane hook: Trigger On/Off commands pause or resume the matched
subscriptions rather than touching the sensors themselves, exactly the
"activating/de-activating the streams" behaviour of Table 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import PubSubError
from repro.pubsub.registry import SensorMetadata
from repro.streams.tuple import SensorTuple
from repro.stt.spatial import Box, representative_point
from repro.stt.thematic import Theme

_subscription_ids = itertools.count(1)

#: Most recent dead letters retained per subscription.
DEAD_LETTER_CAPACITY = 1000


@dataclass(frozen=True)
class DeadLetter:
    """A tuple the broker gave up on delivering to one subscription."""

    tuple: SensorTuple
    reason: str
    failed_at: float


@dataclass(frozen=True)
class SubscriptionFilter:
    """Predicate over sensor advertisements.

    All given criteria must hold (conjunctive).  An empty filter matches
    every sensor — legal but usually a design smell, so the designer warns.

    Attributes:
        sensor_ids: exact ids to accept.
        sensor_type: required type label.
        theme: required theme (matches sub/super-themes).
        area: sensor location must fall in this box.
        min_frequency / max_frequency: bounds on advertised rate.
    """

    sensor_ids: tuple[str, ...] = ()
    sensor_type: str = ""
    theme: "Theme | None" = None
    area: "Box | None" = None
    min_frequency: float = 0.0
    max_frequency: float = float("inf")

    def __post_init__(self) -> None:
        if self.min_frequency > self.max_frequency:
            raise PubSubError(
                f"min_frequency ({self.min_frequency}) exceeds "
                f"max_frequency ({self.max_frequency})"
            )

    def matches(self, metadata: SensorMetadata) -> bool:
        if self.sensor_ids and metadata.sensor_id not in self.sensor_ids:
            return False
        if self.sensor_type and metadata.sensor_type != self.sensor_type:
            return False
        if self.theme is not None and not metadata.has_theme(self.theme):
            return False
        if self.area is not None and not self.area.contains(
            representative_point(metadata.location)
        ):
            return False
        if not (self.min_frequency <= metadata.frequency <= self.max_frequency):
            return False
        return True

    @classmethod
    def for_sensor(cls, sensor_id: str) -> "SubscriptionFilter":
        return cls(sensor_ids=(sensor_id,))


@dataclass
class Subscription:
    """An active interest in matching sensor streams.

    Attributes:
        filter: which sensors this subscription receives.
        callback: invoked with each delivered :class:`SensorTuple`.
        node_id: network node where the subscriber runs (delivery target).
        active: paused subscriptions match but do not receive data.
        subscription_id: unique, assigned at construction.
        retries: redelivery attempts the broker made on this subscription's
            behalf.
        dead_letters: tuples whose delivery the broker abandoned after
            exhausting its retry budget (most recent
            ``DEAD_LETTER_CAPACITY`` kept).
    """

    filter: SubscriptionFilter
    callback: Callable[[SensorTuple], None]
    node_id: str
    #: Optional whole-batch delivery hook.  When set, a delivered
    #: :class:`~repro.streams.tuple.TupleBatch` is handed over in one call
    #: (the executor points this at ``OperatorProcess.receive_batch``);
    #: when ``None``, batches are unrolled through ``callback`` per tuple.
    batch_callback: "Callable[[object], None] | None" = None
    #: The :class:`~repro.pubsub.partition.ShardRouter` this subscription
    #: is a member of, if any.  Member subscriptions never appear in the
    #: broker's routing tables directly — the router does, and picks one
    #: member per tuple by key hash.
    router: "object | None" = None
    active: bool = True
    subscription_id: int = field(default_factory=lambda: next(_subscription_ids))
    delivered: int = 0
    suppressed: int = 0
    retries: int = 0
    dead_letters: list[DeadLetter] = field(default_factory=list)
    #: Messages transmitted to this subscription and not yet delivered or
    #: abandoned — the broker's backlog signal.  Maintained only while the
    #: latency plane is installed (``broker_subscription_backlog`` gauge);
    #: stays 0 otherwise.
    inflight: int = 0

    def pause(self) -> None:
        self.active = False

    def resume(self) -> None:
        self.active = True

    def dead_letter(self, tuple_: SensorTuple, reason: str, failed_at: float) -> DeadLetter:
        """Record an undeliverable tuple (bounded queue, oldest evicted)."""
        letter = DeadLetter(tuple=tuple_, reason=reason, failed_at=failed_at)
        self.dead_letters.append(letter)
        if len(self.dead_letters) > DEAD_LETTER_CAPACITY:
            del self.dead_letters[0]
        return letter

    def audit_records(self) -> "list[tuple[str, str]]":
        """The dead-letter queue as comparable ``(source, reason)`` pairs.

        Timing-free projection of the audit trail: the parity suite
        compares these across execution backends, where ``failed_at``
        may legitimately differ in wall terms but sources and reasons
        may not.
        """
        return [
            (letter.tuple.source, letter.reason) for letter in self.dead_letters
        ]

    def deliver(self, tuple_: SensorTuple) -> bool:
        """Deliver if active; returns whether delivery happened."""
        if not self.active:
            self.suppressed += 1
            return False
        self.delivered += 1
        self.callback(tuple_)
        return True

    def deliver_batch(self, batch: object) -> int:
        """Deliver a whole micro-batch; returns tuples delivered.

        Counters stay tuple-denominated so pausing/resuming under batching
        reports the same suppressed/delivered totals as tuple-at-a-time
        delivery.
        """
        count = len(batch)  # type: ignore[arg-type]
        if not self.active:
            self.suppressed += count
            return 0
        self.delivered += count
        if self.batch_callback is not None:
            self.batch_callback(batch)
        else:
            callback = self.callback
            for tuple_ in batch:  # type: ignore[attr-defined]
                callback(tuple_)
        return count
