"""Distributed publish-subscribe sensor management.

The paper: *"Sensors are handled through a distributed publish-subscribe
system.  Each time a sensor is published, its type, schema, and frequency
of data generation are made available to subscribers."* and *"whenever a
sensor is not able to produce the spatio-temporal information of the
produced data, this information is added by the Publish-Subscribe system"*.

One broker runs per network node; sensor advertisements propagate through
the broker overlay (costed on the simulated links), subscriptions are
matched by type/theme/area, and data tuples are routed from the sensor's
managing node to every active subscriber.  Subscriptions can be paused and
resumed — the hook the Trigger operators' control plane uses.
"""

from repro.pubsub.registry import SensorMetadata, SensorRegistry
from repro.pubsub.subscription import Subscription, SubscriptionFilter
from repro.pubsub.broker import BrokerNetwork, Broker
from repro.pubsub.discovery import DiscoveryService
from repro.pubsub.stamping import backfill_stamp

__all__ = [
    "SensorMetadata",
    "SensorRegistry",
    "Subscription",
    "SubscriptionFilter",
    "BrokerNetwork",
    "Broker",
    "DiscoveryService",
    "backfill_stamp",
]
