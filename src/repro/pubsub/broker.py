"""The broker overlay: advertisement propagation and data routing.

One :class:`Broker` per network node holds the subscriptions of the
processes running there.  The :class:`BrokerNetwork` coordinates them:
publishing a sensor registers its metadata, propagates the advertisement to
every other broker (costed on the simulated links), and matches it against
standing subscriptions; data tuples flow from the sensor's managing node to
each matching *active* subscriber.

Paused subscriptions suppress traffic **at the source**: no message is sent
for them, which is precisely why the paper's trigger-gated acquisition
saves network resources rather than merely hiding data.

Delivery is **at-most-once with bounded retry**: a data message lost in the
network (no route, QoS budget, target died in flight) is retransmitted with
exponential backoff up to :class:`RetryPolicy.max_attempts` times; a tuple
whose budget is exhausted lands in the subscription's dead-letter queue and
is surfaced through the monitor instead of vanishing silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import PubSubError, UnknownSensorError
from repro.network.netsim import NetworkSimulator
from repro.obs.lineage import tuple_key
from repro.pubsub.partition import ShardRouter
from repro.pubsub.registry import SensorMetadata, SensorRegistry
from repro.pubsub.subscription import Subscription, SubscriptionFilter
from repro.streams.tuple import (
    SensorTuple,
    TupleBatch,
    estimate_batch_size_bytes,
    estimate_size_bytes,
)

#: Wire size of a sensor advertisement (id + type + schema summary).
_ADVERTISEMENT_BYTES = 256


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for data-message redelivery.

    Attempt ``n`` (1-based; the first retry is attempt 1) is scheduled
    ``base_delay * multiplier**(n-1)`` seconds after the loss, capped at
    ``max_delay``.  ``max_attempts`` retries happen before a tuple is
    dead-lettered, so a tuple is transmitted at most ``max_attempts + 1``
    times — the documented at-most-once bound.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise PubSubError(f"max_attempts must be >= 0: {self.max_attempts}")
        if self.base_delay <= 0 or self.multiplier < 1.0 or self.max_delay <= 0:
            raise PubSubError(
                f"invalid backoff: base {self.base_delay}, "
                f"multiplier {self.multiplier}, cap {self.max_delay}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))


@dataclass
class Broker:
    """Per-node broker: the subscriptions homed on one network node.

    Subscriptions are stored in an insertion-ordered dict keyed by
    ``subscription_id``, so removal is O(1) instead of a list scan;
    :attr:`subscriptions` exposes them as a list for callers.
    """

    node_id: str
    _subscriptions: dict[str, Subscription] = field(default_factory=dict)
    #: Sensor ids this broker has seen advertised (overlay propagation).
    known_sensors: set[str] = field(default_factory=set)

    @property
    def subscriptions(self) -> list[Subscription]:
        """The broker's subscriptions in insertion order."""
        return list(self._subscriptions.values())

    def add_subscription(self, subscription: Subscription) -> None:
        self._subscriptions[subscription.subscription_id] = subscription

    def remove_subscription(self, subscription: Subscription) -> None:
        if self._subscriptions.pop(subscription.subscription_id, None) is None:
            raise PubSubError(
                f"subscription {subscription.subscription_id} not on "
                f"broker {self.node_id!r}"
            )


class BrokerNetwork:
    """The distributed pub-sub system over the simulated network.

    With ``netsim=None`` the broker network runs in-process with immediate
    delivery — handy for unit tests and the centralized baseline; with a
    simulator, every advertisement and data tuple crosses the topology and
    is charged to its links.
    """

    def __init__(
        self,
        netsim: "NetworkSimulator | None" = None,
        registry: "SensorRegistry | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        obs: "object | None" = None,
    ) -> None:
        self.netsim = netsim
        self.registry = registry if registry is not None else SensorRegistry()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        #: Observability bundle (``repro.obs.Observability``).  The broker
        #: is where traces *begin*: a sampled publication gets a root
        #: ``publish`` span and the context rides the tuple from there.
        #: Assigning the ``obs`` property (also after construction — the
        #: executor attaches its bundle to a bare broker network) caches
        #: the hot-path counter instruments.
        self.obs = obs
        self._brokers: dict[str, Broker] = {}
        #: sensor_id -> matching route entries.  An entry is either a
        #: plain :class:`Subscription` or a :class:`ShardRouter` standing
        #: in for its member subscriptions (one entry per router, however
        #: many shards it fans to).
        self._routes: dict[str, "list[Subscription | ShardRouter]"] = {}
        self.on_sensor_published: "Callable[[SensorMetadata], None] | None" = None
        self.on_sensor_unpublished: "Callable[[SensorMetadata], None] | None" = None
        #: Called with (subscription, tuple, reason) when retries exhaust.
        self.on_dead_letter: "Callable[[Subscription, SensorTuple, str], None] | None" = None
        self.advertisements_sent = 0
        self.data_messages_sent = 0
        self.data_messages_suppressed = 0
        self.data_messages_retried = 0
        self.data_messages_dead_lettered = 0
        #: Tuples routed to subscribers — equals ``data_messages_sent``
        #: without batching; with batching, one message carries many tuples.
        self.data_tuples_sent = 0
        self.data_tuples_suppressed = 0

    @property
    def obs(self) -> "object | None":
        return self._obs

    @obs.setter
    def obs(self, value: "object | None") -> None:
        self._obs = value
        self._published_counters: dict[str, object] = {}
        if value is None:
            self._retry_counter = None
            self._dead_letter_counter = None
            return
        self._retry_counter = value.metrics.counter(
            "broker_retries_total", "data-message redelivery attempts"
        )
        self._dead_letter_counter = value.metrics.counter(
            "broker_dead_letters_total",
            "tuples dead-lettered after retry exhaustion",
        )
        self._batch_size_histogram = value.metrics.histogram(
            "broker_batch_size",
            "tuples per published micro-batch",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
        )

    # -- broker membership ---------------------------------------------------

    def broker(self, node_id: str) -> Broker:
        """The broker on ``node_id`` (created on first use).

        A broker created after sensors have already been published missed
        their advertisements, so ``known_sensors`` is back-filled from the
        registry — the overlay's ground truth — on creation.
        """
        if self.netsim is not None and node_id not in self.netsim.topology:
            raise PubSubError(f"no network node {node_id!r} to host a broker")
        if node_id not in self._brokers:
            self._brokers[node_id] = Broker(
                node_id=node_id,
                known_sensors={m.sensor_id for m in self.registry.all()},
            )
        return self._brokers[node_id]

    @property
    def brokers(self) -> list[Broker]:
        return list(self._brokers.values())

    def iter_subscriptions(self):
        """Every subscription across all brokers, in broker/insertion
        order (the latency plane's backlog sweep)."""
        for broker in self._brokers.values():
            yield from broker.subscriptions

    # -- publish / unpublish (sensors joining and leaving, P3) -----------------

    def publish(self, metadata: SensorMetadata) -> None:
        """Publish a sensor: register, propagate, match subscriptions."""
        self.registry.register(metadata)
        home = self.broker(metadata.node_id)
        home.known_sensors.add(metadata.sensor_id)
        # Advertisement propagation through the overlay.
        for broker in self._brokers.values():
            if broker.node_id == metadata.node_id:
                continue
            self._send_advertisement(metadata, broker)
        self._rebuild_routes_for(metadata.sensor_id)
        if self.on_sensor_published is not None:
            self.on_sensor_published(metadata)

    def unpublish(self, sensor_id: str) -> SensorMetadata:
        """A sensor leaves the network; its routes disappear."""
        metadata = self.registry.unregister(sensor_id)
        for broker in self._brokers.values():
            broker.known_sensors.discard(sensor_id)
        self._routes.pop(sensor_id, None)
        if self.on_sensor_unpublished is not None:
            self.on_sensor_unpublished(metadata)
        return metadata

    def _send_advertisement(self, metadata: SensorMetadata, broker: Broker) -> None:
        self.advertisements_sent += 1
        if self.netsim is None:
            broker.known_sensors.add(metadata.sensor_id)
            return
        self.netsim.send(
            source=metadata.node_id,
            target=broker.node_id,
            payload=("advertise", metadata.sensor_id),
            size_bytes=_ADVERTISEMENT_BYTES,
            on_delivery=lambda _payload, b=broker, sid=metadata.sensor_id: (
                b.known_sensors.add(sid)
            ),
        )

    # -- subscribe / unsubscribe ---------------------------------------------

    def subscribe(
        self,
        node_id: str,
        filter_: SubscriptionFilter,
        callback: Callable[[SensorTuple], None],
    ) -> Subscription:
        """Create an active subscription homed on ``node_id``."""
        subscription = Subscription(filter=filter_, callback=callback, node_id=node_id)
        self.broker(node_id).add_subscription(subscription)
        # Incremental: match only the new subscription against registered
        # sensors instead of rebuilding every route (O(sensors) instead of
        # O(sensors x subscriptions)).
        for metadata in self.registry.all():
            if subscription.filter.matches(metadata):
                self._routes.setdefault(metadata.sensor_id, []).append(subscription)
        return subscription

    def subscribe_sharded(
        self,
        node_ids: "list[str]",
        filter_: SubscriptionFilter,
        callbacks: "list[Callable[[SensorTuple], None]]",
        keys: "tuple[str, ...]",
        batch_callbacks: "list | None" = None,
        assignment=None,
    ) -> ShardRouter:
        """Create N member subscriptions routed through one ShardRouter.

        Each member is homed on its shard's node (and registered with that
        node's broker, so per-node bookkeeping is unchanged), but the
        routing tables carry the *router*: per published tuple exactly one
        member — the shard owning the tuple's key — receives it.
        ``assignment`` threads the elastic routing overlay through to the
        router (None for static shard groups).
        """
        if len(node_ids) != len(callbacks):
            raise PubSubError(
                f"sharded subscribe needs one callback per node: "
                f"{len(node_ids)} nodes, {len(callbacks)} callbacks"
            )
        members: list[Subscription] = []
        for index, (node_id, callback) in enumerate(zip(node_ids, callbacks)):
            subscription = Subscription(
                filter=filter_, callback=callback, node_id=node_id
            )
            if batch_callbacks is not None:
                subscription.batch_callback = batch_callbacks[index]
            self.broker(node_id).add_subscription(subscription)
            members.append(subscription)
        router = ShardRouter(members, keys, assignment=assignment)
        for metadata in self.registry.all():
            if filter_.matches(metadata):
                self._routes.setdefault(metadata.sensor_id, []).append(router)
        return router

    def unsubscribe(self, subscription: Subscription) -> None:
        self.broker(subscription.node_id).remove_subscription(subscription)
        router = subscription.router
        if router is not None:
            # Removing a member narrows the router; the routing entry
            # disappears with its last member.  (Shard membership only
            # changes wholesale at teardown — partial removal would remap
            # the key space.)
            router.members.remove(subscription)
            subscription.router = None
            if not router.members:
                for matches in self._routes.values():
                    try:
                        matches.remove(router)
                    except ValueError:
                        pass
            return
        # Incremental: drop just this subscription from the routes it is on.
        for matches in self._routes.values():
            try:
                matches.remove(subscription)
            except ValueError:
                pass

    def subscriptions_for(self, sensor_id: str) -> list[Subscription]:
        """The subscriptions a sensor's data is currently routed to.

        Router entries are expanded to their member subscriptions — the
        callers of this API reason about subscriptions, not routing
        furniture.
        """
        if sensor_id not in self.registry:
            raise UnknownSensorError(f"unknown sensor {sensor_id!r}")
        out: list[Subscription] = []
        for entry in self._routes.get(sensor_id, ()):
            if isinstance(entry, ShardRouter):
                out.extend(entry.members)
            else:
                out.append(entry)
        return out

    def _rebuild_routes_for(self, sensor_id: str) -> None:
        metadata = self.registry.get(sensor_id)
        matches: "list[Subscription | ShardRouter]" = []
        seen_routers: set[int] = set()
        for broker in self._brokers.values():
            for subscription in broker.subscriptions:
                if not subscription.filter.matches(metadata):
                    continue
                router = subscription.router
                if router is None:
                    matches.append(subscription)
                elif id(router) not in seen_routers:
                    # A sharded consumer appears once, as its router —
                    # member-by-member entries would deliver N copies.
                    seen_routers.add(id(router))
                    matches.append(router)
        self._routes[sensor_id] = matches

    def _rebuild_all_routes(self) -> None:
        """Full O(sensors x subscriptions) route rebuild.

        No longer on the subscribe/unsubscribe path — kept as the
        reference implementation the incremental maintenance is tested
        against (same sensors, same matches).
        """
        for sensor_id in list(self._routes) + [
            m.sensor_id for m in self.registry.all() if m.sensor_id not in self._routes
        ]:
            if sensor_id in self.registry:
                self._rebuild_routes_for(sensor_id)
            else:
                self._routes.pop(sensor_id, None)

    # -- data plane ---------------------------------------------------------------

    def publish_data(self, sensor_id: str, tuple_: SensorTuple) -> int:
        """Route one reading to every matching active subscription.

        Returns the number of deliveries initiated.  Inactive (paused)
        subscriptions generate **no** traffic and are counted as
        suppressed — trigger-gated acquisition saves the network, not just
        the screen.  A lost message is retried per :attr:`retry_policy`;
        when the budget exhausts, the tuple is dead-lettered on the
        subscription rather than silently dropped.
        """
        metadata = self.registry.get(sensor_id)
        if self.obs is not None:
            tuple_ = self._observe_publish(metadata, tuple_)
        initiated = 0
        for entry in self._routes.get(sensor_id, ()):
            if isinstance(entry, ShardRouter):
                # Key-hashed delivery: exactly one shard owns this tuple.
                subscription = entry.member_for(tuple_)
            else:
                subscription = entry
            if not subscription.active:
                subscription.suppressed += 1
                self.data_messages_suppressed += 1
                self.data_tuples_suppressed += 1
                continue
            self.data_messages_sent += 1
            self.data_tuples_sent += 1
            initiated += 1
            if self.netsim is None:
                subscription.deliver(tuple_)
                continue
            self._transmit(metadata, subscription, tuple_, attempt=0)
        return initiated

    def publish_batch(
        self, sensor_id: str, tuples: "TupleBatch | list[SensorTuple]"
    ) -> int:
        """Route a micro-batch of readings in one fan-out pass.

        Subscription matching happens once per (sensor, batch) — the route
        list lookup and the active check are amortized over the whole run of
        tuples — and each matching subscriber receives the batch as a single
        network message.  Returns the number of batch deliveries initiated.
        Counters stay tuple-denominated (``data_tuples_*``) alongside the
        message-denominated ``data_messages_*`` so monitoring does not
        under-count traffic when batching is on.
        """
        metadata = self.registry.get(sensor_id)
        batch = tuples if isinstance(tuples, TupleBatch) else TupleBatch.of(tuples)
        if not batch:
            return 0
        if self.obs is not None:
            batch = self._observe_publish_batch(metadata, batch)
        count = len(batch)
        initiated = 0
        for entry in self._routes.get(sensor_id, ()):
            if isinstance(entry, ShardRouter):
                # Split once per (router, batch); members receive their
                # key-owned sub-batches in arrival order.
                for member, sub_batch in entry.split_batch(batch):
                    member_count = len(sub_batch)
                    if not member.active:
                        member.suppressed += member_count
                        self.data_messages_suppressed += 1
                        self.data_tuples_suppressed += member_count
                        continue
                    self.data_messages_sent += 1
                    self.data_tuples_sent += member_count
                    initiated += 1
                    if self.netsim is None:
                        member.deliver_batch(sub_batch)
                        continue
                    self._transmit_batch(metadata, member, sub_batch, attempt=0)
                continue
            subscription = entry
            if not subscription.active:
                subscription.suppressed += count
                self.data_messages_suppressed += 1
                self.data_tuples_suppressed += count
                continue
            self.data_messages_sent += 1
            self.data_tuples_sent += count
            initiated += 1
            if self.netsim is None:
                subscription.deliver_batch(batch)
                continue
            self._transmit_batch(metadata, subscription, batch, attempt=0)
        return initiated

    def _now(self) -> float:
        """Current virtual time (0.0 when running transport-less).

        This is the broker's only notion of time: publication stamps,
        retry backoff and dead-letter ``failed_at`` all read the
        transport's clock, so the broker is execution-backend agnostic —
        under the asyncio backend the same clock reports logical epoch
        deadlines and delivery crosses bounded queues, with no broker
        changes.
        """
        return self.netsim.clock.now if self.netsim is not None else 0.0

    def _observe_publish(
        self, metadata: SensorMetadata, tuple_: SensorTuple
    ) -> SensorTuple:
        """Count the publication and, if sampled, open the tuple's trace."""
        obs = self.obs
        counter = self._published_counters.get(metadata.sensor_id)
        if counter is None:
            counter = self._published_counters[metadata.sensor_id] = (
                obs.metrics.counter(
                    "broker_tuples_published_total",
                    "readings published through the broker overlay",
                    source=metadata.sensor_id,
                )
            )
        counter.inc()
        plane = obs.latency
        if plane is not None:
            now = self._now()
            plane.note_publish(metadata.sensor_id, now, tuple_.stamp.time)
        tracer = obs.tracer
        if tuple_.trace is None and tracer.enabled:
            now = self._now()
            ctx = tracer.start_trace(
                "publish", now,
                source=metadata.sensor_id,
                node=metadata.node_id,
                tuple=tuple_key(tuple_),
            )
            if ctx is not None:
                tuple_ = tuple_.with_trace(ctx)
        return tuple_

    def _observe_publish_batch(
        self, metadata: SensorMetadata, batch: TupleBatch
    ) -> TupleBatch:
        """Count the batch's tuples, record its size, open sampled traces.

        Per-tuple trace sampling still applies inside a batch — the
        error-diffusion sampler decides tuple by tuple, so sampling=0 costs
        one ``enabled`` check per batch instead of per tuple.
        """
        obs = self.obs
        counter = self._published_counters.get(metadata.sensor_id)
        if counter is None:
            counter = self._published_counters[metadata.sensor_id] = (
                obs.metrics.counter(
                    "broker_tuples_published_total",
                    "readings published through the broker overlay",
                    source=metadata.sensor_id,
                )
            )
        count = len(batch)
        counter.inc(count)
        self._batch_size_histogram.observe(count)
        plane = obs.latency
        if plane is not None:
            now = self._now()
            plane.note_publish_batch(metadata.sensor_id, now, batch)
        tracer = obs.tracer
        if not tracer.enabled:
            return batch
        now = self._now()
        traced = []
        changed = False
        for tuple_ in batch:
            if tuple_.trace is None:
                ctx = tracer.start_trace(
                    "publish", now,
                    source=metadata.sensor_id,
                    node=metadata.node_id,
                    tuple=tuple_key(tuple_),
                    batch=count,
                )
                if ctx is not None:
                    tuple_ = tuple_.with_trace(ctx)
                    changed = True
            traced.append(tuple_)
        # Trace attachment preserves every payload, so the clone keeps the
        # batch's wire-size memo (with_traced, not with_tuples).
        return batch.with_traced(traced) if changed else batch

    def _transmit(
        self,
        metadata: SensorMetadata,
        subscription: Subscription,
        tuple_: SensorTuple,
        attempt: int,
    ) -> None:
        """One transmission attempt; losses re-enter via ``_on_loss``."""
        plane = self._obs.latency if self._obs is not None else None
        if plane is None:
            on_delivery = subscription.deliver
        else:
            subscription.inflight += 1

            def on_delivery(payload, s=subscription, p=plane):
                s.inflight -= 1
                p.note_deliver(
                    str(s.subscription_id),
                    self.netsim.clock.now, payload.stamp.time,
                )
                s.deliver(payload)

        self.netsim.send(
            source=metadata.node_id,
            target=subscription.node_id,
            payload=tuple_,
            size_bytes=estimate_size_bytes(tuple_),
            on_delivery=on_delivery,
            on_drop=lambda _message, reason: self._on_loss(
                metadata, subscription, tuple_, attempt, reason
            ),
        )

    def _on_loss(
        self,
        metadata: SensorMetadata,
        subscription: Subscription,
        tuple_: SensorTuple,
        attempt: int,
        reason: str,
    ) -> None:
        """A data message was lost: back off and retry, or dead-letter."""
        obs = self.obs
        if obs is not None and obs.latency is not None and subscription.inflight > 0:
            subscription.inflight -= 1  # the retry re-increments on transmit
        if attempt < self.retry_policy.max_attempts:
            next_attempt = attempt + 1
            subscription.retries += 1
            self.data_messages_retried += 1
            backoff = self.retry_policy.backoff(next_attempt)
            if obs is not None:
                self._retry_counter.inc()
                if tuple_.trace is not None:
                    now = self.netsim.clock.now
                    obs.tracer.span(
                        tuple_.trace, "retry", now, now + backoff,
                        attempt=next_attempt,
                        to=subscription.node_id,
                        reason=reason,
                    )
            self.netsim.clock.schedule(
                backoff,
                lambda: self._transmit(metadata, subscription, tuple_, next_attempt),
            )
            return
        self.data_messages_dead_lettered += 1
        now = self.netsim.clock.now
        if obs is not None:
            self._dead_letter_counter.inc()
            if tuple_.trace is not None:
                obs.tracer.span(
                    tuple_.trace, "dead-letter", now,
                    subscription=subscription.subscription_id,
                    to=subscription.node_id,
                    reason=reason,
                )
        subscription.dead_letter(tuple_, reason, failed_at=now)
        if self.on_dead_letter is not None:
            self.on_dead_letter(subscription, tuple_, reason)

    def _transmit_batch(
        self,
        metadata: SensorMetadata,
        subscription: Subscription,
        batch: TupleBatch,
        attempt: int,
    ) -> None:
        """One batch transmission attempt; losses re-enter via ``_on_batch_loss``."""
        plane = self._obs.latency if self._obs is not None else None
        if plane is None:
            on_delivery = subscription.deliver_batch
        else:
            subscription.inflight += 1

            def on_delivery(payload, s=subscription, p=plane):
                s.inflight -= 1
                p.note_deliver_batch(
                    str(s.subscription_id), self.netsim.clock.now, payload,
                )
                s.deliver_batch(payload)

        self.netsim.send_batch(
            source=metadata.node_id,
            target=subscription.node_id,
            batch=batch,
            size_bytes=estimate_batch_size_bytes(batch),
            on_delivery=on_delivery,
            on_drop=lambda _message, reason: self._on_batch_loss(
                metadata, subscription, batch, attempt, reason
            ),
        )

    def _on_batch_loss(
        self,
        metadata: SensorMetadata,
        subscription: Subscription,
        batch: TupleBatch,
        attempt: int,
        reason: str,
    ) -> None:
        """A batch was lost in flight: retry it whole, or dead-letter it.

        Retries redeliver the entire batch (all-or-nothing loss semantics,
        one backoff timer per batch rather than per tuple).  On exhaustion
        every member is dead-lettered *individually* — audit records and the
        ``on_dead_letter`` hook stay tuple-denominated, so the monitor's
        quorum logic and the PR 1 audit format are unchanged by batching.
        """
        obs = self.obs
        if obs is not None and obs.latency is not None and subscription.inflight > 0:
            subscription.inflight -= 1  # the retry re-increments on transmit
        if attempt < self.retry_policy.max_attempts:
            next_attempt = attempt + 1
            subscription.retries += 1
            self.data_messages_retried += 1
            backoff = self.retry_policy.backoff(next_attempt)
            if obs is not None:
                self._retry_counter.inc()
                now = self.netsim.clock.now
                for tuple_ in batch:
                    if tuple_.trace is not None:
                        obs.tracer.span(
                            tuple_.trace, "retry", now, now + backoff,
                            attempt=next_attempt,
                            to=subscription.node_id,
                            reason=reason,
                            batch=len(batch),
                        )
            self.netsim.clock.schedule(
                backoff,
                lambda: self._transmit_batch(
                    metadata, subscription, batch, next_attempt
                ),
            )
            return
        now = self.netsim.clock.now
        for tuple_ in batch:
            self.data_messages_dead_lettered += 1
            if obs is not None:
                self._dead_letter_counter.inc()
                if tuple_.trace is not None:
                    obs.tracer.span(
                        tuple_.trace, "dead-letter", now,
                        subscription=subscription.subscription_id,
                        to=subscription.node_id,
                        reason=reason,
                    )
            subscription.dead_letter(tuple_, reason, failed_at=now)
            if self.on_dead_letter is not None:
                self.on_dead_letter(subscription, tuple_, reason)
