"""Spatio-temporal stamp back-fill.

The paper: *"whenever a sensor is not able to produce the spatio-temporal
information of the produced data, this information is added by the
Publish-Subscribe system that we adopt in our architecture."*

A raw reading may arrive as a bare payload, a payload plus a partial stamp,
or a fully stamped tuple.  :func:`backfill_stamp` completes whatever is
missing from the sensor's advertisement: location defaults to the sensor's
registered position, time to the current virtual time, granularities and
themes to the advertised schema's.
"""

from __future__ import annotations

from repro.pubsub.registry import SensorMetadata
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp


def backfill_stamp(
    payload: dict,
    metadata: SensorMetadata,
    now: float,
    stamp: "SttStamp | None" = None,
    seq: int = 0,
) -> SensorTuple:
    """Build a fully stamped :class:`SensorTuple` from a raw reading.

    Args:
        payload: the sensor's attribute values.
        metadata: the sensor's advertisement (source of the defaults).
        now: current virtual time, used when the reading has no timestamp.
        stamp: partial stamp if the sensor produced one (its fields win).
        seq: per-sensor sequence number.
    """
    schema = metadata.schema
    if stamp is not None:
        full = SttStamp(
            time=stamp.time,
            location=stamp.location,
            temporal_granularity=stamp.temporal_granularity,
            spatial_granularity=stamp.spatial_granularity,
            themes=stamp.themes or schema.themes,
        )
    else:
        full = SttStamp(
            time=now,
            location=metadata.location,
            temporal_granularity=schema.temporal_granularity,
            spatial_granularity=schema.spatial_granularity,
            themes=schema.themes,
        )
    return SensorTuple(
        payload=payload,
        stamp=full,
        source=metadata.sensor_id,
        seq=seq,
    )
