"""Sample-based step-by-step debugging of a dataflow (demo part P1).

"By exploiting samples produced by the involved sensors, the user can
easily debug the developed dataflow" — the designer shows, at every node,
what a small batch of real readings becomes after each operation.

:func:`run_sample` executes the canvas in-process on per-source sample
batches: non-blocking operators run per tuple; blocking operators are fed
their whole input batch and flushed once (the sample preview of a window).
Triggers report the control commands they *would* issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataflowError
from repro.dataflow.graph import Dataflow
from repro.dataflow.validate import validate_dataflow
from repro.pubsub.registry import SensorRegistry
from repro.streams.base import ControlCommand
from repro.streams.tuple import SensorTuple


@dataclass
class SampleResult:
    """Per-node sample outputs plus trigger dry-run commands."""

    outputs: dict[str, list[SensorTuple]] = field(default_factory=dict)
    commands: dict[str, list[ControlCommand]] = field(default_factory=dict)

    def at(self, node_id: str) -> list[SensorTuple]:
        return self.outputs.get(node_id, [])


def run_sample(
    flow: Dataflow,
    samples: dict[str, list[SensorTuple]],
    registry: "SensorRegistry | None" = None,
    validate: bool = True,
) -> SampleResult:
    """Push sample batches through the dataflow, node by node.

    Args:
        flow: the canvas to debug.
        samples: source node id -> sample tuples for that source.
        registry: used for validation when provided.
        validate: set False to preview a known-valid flow faster.

    Raises :class:`repro.errors.ValidationError` if the flow is invalid —
    sample debugging only makes sense on a consistent canvas.
    """
    if validate:
        validate_dataflow(flow, registry).raise_if_invalid()
    missing = set(flow.sources) - set(samples)
    if missing:
        raise DataflowError(
            f"no sample batch for source(s): {sorted(missing)}"
        )

    result = SampleResult()
    for source_id in flow.sources:
        result.outputs[source_id] = list(samples[source_id])

    for node_id in flow.topological_order():
        if node_id in flow.sources:
            continue
        incoming = flow.inputs_of(node_id)
        if node_id in flow.sinks:
            # Sinks display exactly what arrives.
            feed = incoming[0] if incoming else None
            result.outputs[node_id] = (
                list(result.outputs.get(feed.source_id, [])) if feed else []
            )
            continue

        node = flow.operators[node_id]
        operator = node.spec.build_operator()
        commands: list[ControlCommand] = []
        operator.control = commands.append

        emitted: list[SensorTuple] = []
        latest = 0.0
        for edge in incoming:
            batch = result.outputs.get(edge.source_id, [])
            for tuple_ in batch:
                latest = max(latest, tuple_.stamp.time)
                emitted.extend(operator.on_tuple(tuple_, port=edge.port))
        if operator.is_blocking:
            emitted.extend(operator.on_timer(latest + operator.interval))
        result.outputs[node_id] = emitted
        if commands:
            result.commands[node_id] = commands
    return result


def sample_from_sensors(
    flow: Dataflow,
    sensors: dict[str, object],
    count: int = 5,
    start: float = 0.0,
) -> dict[str, list[SensorTuple]]:
    """Build sample batches by probing simulated sensors.

    ``sensors`` maps source node id -> :class:`SimulatedSensor`; each is
    probed ``count`` times at its advertised cadence starting from
    ``start``, without perturbing the live stream.
    """
    from repro.pubsub.stamping import backfill_stamp

    batches: dict[str, list[SensorTuple]] = {}
    for source_id, sensor in sensors.items():
        if source_id not in flow.sources:
            raise DataflowError(f"no source node {source_id!r} in the flow")
        batch: list[SensorTuple] = []
        now = start
        seq = 0
        attempts = 0
        while len(batch) < count and attempts < count * 20:
            payload = sensor.probe(now)
            attempts += 1
            if payload is not None:
                batch.append(
                    backfill_stamp(payload, sensor.metadata, now=now, seq=seq)
                )
                seq += 1
            now += sensor.metadata.period
        batches[source_id] = batch
    return batches
