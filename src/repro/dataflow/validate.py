"""Dataflow consistency checks.

"The user interface provides different checks in order to draw only
dataflows that can be soundly translated in the DSN/SCN specification."

The validator runs every check and returns a :class:`ValidationReport`
whose issues carry the offending node id, so a front end can annotate the
canvas.  A dataflow with zero *errors* is deployable; *warnings* flag
designs that are legal but suspicious (e.g. a filter-everything condition
or an unconnected trigger).

Checks implemented:

C1  structure: data edges form a DAG;
C2  ports: every operator input port is connected exactly once;
C3  roles: sources feed something; sinks are fed; no dangling operators;
C4  schemas: schema propagation succeeds at every node (types, attribute
    existence, aggregation functions, join collisions, ...);
C5  conditions: every condition/predicate/spec type-checks to boolean
    (or to a value, for virtual properties) against its input schema;
C6  triggers: control edges exist, point at in-canvas sources, and the
    trigger's named targets match those sources' filters;
C7  sensors: when a registry is supplied, every source filter matches at
    least one published sensor;
C8  sinks: warehouse sinks receive a schema the loader can index (an STT
    stamp always exists, so this checks the payload is non-empty);
C9  thematics: joining streams whose theme sets are disjoint draws a
    warning — composition across unrelated thematics is legal but is
    usually a mis-drawn edge (the STT model uses thematics precisely to
    identify which streams belong together).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import DataflowError, ExpressionError, SchemaError
from repro.dataflow.graph import Dataflow, SinkKind
from repro.pubsub.registry import SensorRegistry
from repro.schema.schema import StreamSchema

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    """One finding, anchored to a canvas element."""

    level: str
    node_id: str
    message: str

    def __str__(self) -> str:
        return f"[{self.level}] {self.node_id}: {self.message}"


@dataclass
class ValidationReport:
    """Outcome of validation: issues plus the propagated schemas."""

    issues: list[ValidationIssue]
    schemas: dict[str, "StreamSchema | None"]

    @property
    def errors(self) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.level == ERROR]

    @property
    def warnings(self) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.level == WARNING]

    @property
    def is_valid(self) -> bool:
        """True when the dataflow can be soundly translated to DSN/SCN."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        from repro.errors import ValidationError

        if not self.is_valid:
            raise ValidationError(self.errors)


def validate_dataflow(
    flow: Dataflow, registry: "SensorRegistry | None" = None
) -> ValidationReport:
    """Run every consistency check; never raises on invalid designs."""
    issues: list[ValidationIssue] = []
    schemas: dict[str, StreamSchema | None] = {}

    def error(node_id: str, message: str) -> None:
        issues.append(ValidationIssue(ERROR, node_id, message))

    def warning(node_id: str, message: str) -> None:
        issues.append(ValidationIssue(WARNING, node_id, message))

    # C1: acyclicity.
    graph = flow.data_graph()
    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        path = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[-1][1]}"
        error(cycle[0][0], f"data edges form a cycle: {path}")
        return ValidationReport(issues=issues, schemas=schemas)

    if not flow.sources:
        error(flow.name, "dataflow has no sources")
    if not flow.sinks and not any(
        node.spec.kind.startswith("trigger") for node in flow.operators.values()
    ):
        warning(flow.name, "dataflow has no sinks; results go nowhere")

    # C2/C3: ports and roles.
    for node_id, node in flow.operators.items():
        incoming = flow.inputs_of(node_id)
        ports = [edge.port for edge in incoming]
        for port in range(node.spec.input_count):
            count = ports.count(port)
            if count == 0:
                error(node_id, f"input port {port} is not connected")
            elif count > 1:
                error(node_id, f"input port {port} has {count} incoming edges")
        if node.spec.has_output and not flow.outputs_of(node_id):
            error(node_id, "operator output is not connected to anything")
        if not node.spec.has_output and flow.outputs_of(node_id):
            error(node_id, "control-only operator has data outputs")
    for node_id in flow.sources:
        if not flow.outputs_of(node_id) and not _is_trigger_target(flow, node_id):
            warning(node_id, "source is not consumed by any operator or sink")
    for node_id in flow.sinks:
        if not flow.inputs_of(node_id):
            error(node_id, "sink has no incoming stream")
        extra = [edge for edge in flow.inputs_of(node_id) if edge.port != 0]
        if extra:
            error(node_id, "sinks accept a single stream on port 0")

    # C7: source filters against the registry.
    for node_id, source in flow.sources.items():
        if source.schema is None and registry is None:
            error(
                node_id,
                "source has no schema and no registry was supplied to "
                "resolve its filter",
            )
        if registry is not None:
            matches = [
                metadata
                for metadata in registry.all()
                if source.filter.matches(metadata)
            ]
            if not matches:
                error(node_id, "source filter matches no published sensor")
            else:
                advertised = matches[0].schema
                mismatched = [
                    m.sensor_id
                    for m in matches[1:]
                    if m.schema.names != advertised.names
                ]
                if mismatched:
                    error(
                        node_id,
                        f"source filter matches sensors with incompatible "
                        f"schemas: {matches[0].sensor_id} vs {mismatched}",
                    )
                if source.schema is None:
                    source.schema = advertised

    # C4/C5: schema propagation in topological order.
    order = list(nx.topological_sort(graph))
    for node_id in order:
        if node_id in flow.sources:
            schemas[node_id] = flow.sources[node_id].schema
            continue
        upstream = flow.inputs_of(node_id)
        input_schemas: list[StreamSchema] = []
        missing = False
        for edge in upstream:
            schema = schemas.get(edge.source_id)
            if schema is None:
                missing = True
                break
            input_schemas.append(schema)
        if node_id in flow.operators:
            node = flow.operators[node_id]
            if missing or len(input_schemas) != node.spec.input_count:
                schemas[node_id] = None
                continue
            try:
                schemas[node_id] = node.spec.infer_schema(input_schemas)
            except (SchemaError, DataflowError, ExpressionError) as exc:
                error(node_id, f"{node.spec.kind}: {exc}")
                schemas[node_id] = None
                continue
            # C9: thematic compatibility of joined streams.
            if node.spec.kind == "join" and len(input_schemas) == 2:
                left, right = input_schemas
                if left.themes and right.themes and not any(
                    a.matches(b) for a in left.themes for b in right.themes
                ):
                    warning(
                        node_id,
                        f"joining thematically unrelated streams "
                        f"({', '.join(map(str, left.themes))} vs "
                        f"{', '.join(map(str, right.themes))})",
                    )
        elif node_id in flow.sinks:
            schemas[node_id] = input_schemas[0] if input_schemas and not missing else None

    # C6: trigger control edges.
    for node_id, node in flow.operators.items():
        if node.spec.kind not in ("trigger-on", "trigger-off"):
            continue
        controlled = flow.controlled_sources(node_id)
        if not controlled:
            error(node_id, "trigger has no control edges to sources")
            continue
        declared = set(node.spec.targets)
        for source_id in controlled:
            source = flow.sources[source_id]
            ids = set(source.filter.sensor_ids)
            if ids and not (ids & declared):
                match = any(
                    registry is not None
                    and target in registry
                    and source.filter.matches(registry.get(target))
                    for target in declared
                )
                if not match:
                    warning(
                        source_id,
                        f"controlled source's filter does not overlap the "
                        f"trigger's declared targets {sorted(declared)}",
                    )
            if source.initially_active and node.spec.kind == "trigger-on":
                warning(
                    source_id,
                    "trigger-on controls a source that is initially active; "
                    "the trigger will have nothing to activate",
                )

    # C8: warehouse sinks need a non-empty payload schema.
    for node_id, sink in flow.sinks.items():
        schema = schemas.get(node_id)
        if sink.sink_kind == SinkKind.WAREHOUSE and schema is not None and len(schema) == 0:
            error(node_id, "warehouse sink receives an empty payload schema")

    return ValidationReport(issues=issues, schemas=schemas)


def _is_trigger_target(flow: Dataflow, source_id: str) -> bool:
    return any(edge.source_id == source_id for edge in flow.control_edges)
