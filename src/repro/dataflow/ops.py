"""Declarative operator specifications for the conceptual dataflow.

A spec is the design-time twin of a runtime operator: it holds the
parameters the user typed into the canvas, knows how to type-check them
against the upstream schema(s), how to infer its output schema, how to
build the runtime operator, and how to (de)serialize itself for the canvas
document and the DSN program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataflowError, SchemaError
from repro.expr.eval import compile_expression
from repro.schema.infer import (
    AGGREGATION_FUNCTIONS,
    aggregate_schema,
    join_schema,
    with_virtual_property,
)
from repro.schema.schema import Attribute, StreamSchema
from repro.schema.types import AttributeType
from repro.streams.aggregate import AggregationOperator
from repro.streams.base import Operator
from repro.streams.cull import CullSpaceOperator, CullTimeOperator
from repro.streams.filter import FilterOperator
from repro.streams.join import JoinOperator
from repro.streams.transform import TransformOperator, ValidateOperator
from repro.streams.trigger import TriggerOffOperator, TriggerOnOperator
from repro.streams.virtual import VirtualPropertyOperator


def statistics_schema(schema: StreamSchema) -> StreamSchema:
    """The window-statistics schema trigger conditions are checked against.

    See :mod:`repro.streams.trigger`: ``count`` plus, for numeric
    attributes, ``avg_/min_/max_/sum_/last_`` columns, and ``last_`` for
    the rest.
    """
    attrs: list[Attribute] = [Attribute("count", AttributeType.INT)]
    for attr in schema.attributes:
        if attr.type.is_numeric:
            for prefix in ("avg", "min", "max", "sum"):
                attrs.append(
                    Attribute(f"{prefix}_{attr.name}", AttributeType.FLOAT, attr.unit)
                )
        attrs.append(Attribute(f"last_{attr.name}", attr.type, attr.unit))
    return StreamSchema(
        attributes=tuple(attrs),
        temporal_granularity=schema.temporal_granularity,
        spatial_granularity=schema.spatial_granularity,
        themes=schema.themes,
    )


class OperatorSpec:
    """Base class for Table 1 operator specifications."""

    #: Canonical kind tag used in serialization and DSN programs.
    kind: str = ""
    input_count: int = 1
    #: Whether the spec has data output (triggers do not).
    has_output: bool = True

    def infer_schema(self, inputs: "list[StreamSchema]") -> "StreamSchema | None":
        """Output schema given input schemas; None for control-only specs.

        Raises :class:`SchemaError`/:class:`DataflowError` on inconsistent
        parameters — the validator converts those into canvas issues.
        """
        raise NotImplementedError

    def build_operator(self) -> Operator:
        """Instantiate the runtime operator for deployment."""
        raise NotImplementedError

    def params(self) -> dict:
        """JSON-serializable parameter dict (without the kind tag)."""
        raise NotImplementedError

    def partition_keys(self) -> "tuple[str, ...] | None":
        """Key attributes a sharded deployment partitions on, or None.

        None means the operator cannot be sharded: it is non-blocking, or
        blocking without a key the partitioner could split the tuple
        space on (an ungrouped aggregation, a join with no equi-conjunct).
        """
        return None

    def combine_safe(self) -> bool:
        """Whether a hot partition key may be *split* across replicas.

        True only when one key's tuples can be processed independently on
        several shards and the resulting partial outputs folded back into
        the unsharded result by the merge's combine stage.  Default False:
        splitting is opt-in per spec, never assumed.
        """
        return False

    def to_dict(self) -> dict:
        return {"kind": self.kind, **self.params()}

    def describe(self) -> str:
        return self.build_operator().describe()

    def _check_inputs(self, inputs: "list[StreamSchema]") -> None:
        if len(inputs) != self.input_count:
            raise DataflowError(
                f"{self.kind} takes {self.input_count} input(s), got {len(inputs)}"
            )


@dataclass(frozen=True)
class FilterSpec(OperatorSpec):
    """σ(s, cond)."""

    condition: str

    kind = "filter"

    def infer_schema(self, inputs: "list[StreamSchema]") -> StreamSchema:
        self._check_inputs(inputs)
        compile_expression(self.condition).check_boolean(inputs[0])
        return inputs[0]

    def build_operator(self) -> Operator:
        return FilterOperator(self.condition)

    def params(self) -> dict:
        return {"condition": self.condition}


@dataclass(frozen=True)
class TransformSpec(OperatorSpec):
    """▷trans s — assignments / renames / projection."""

    assignments: "dict[str, str]" = field(default_factory=dict)
    rename: "dict[str, str]" = field(default_factory=dict)
    project: "tuple[str, ...] | None" = None

    kind = "transform"

    def __post_init__(self) -> None:
        if not self.assignments and not self.rename and self.project is None:
            raise DataflowError(
                "transform needs at least one of assignments/rename/project"
            )
        if self.project is not None:
            object.__setattr__(self, "project", tuple(self.project))

    def infer_schema(self, inputs: "list[StreamSchema]") -> StreamSchema:
        self._check_inputs(inputs)
        schema = inputs[0]
        attrs = list(schema.attributes)
        for name, source in self.assignments.items():
            expr = compile_expression(source)
            new_type = expr.type_check(schema)
            for index, attr in enumerate(attrs):
                if attr.name == name:
                    unit = attr.unit if new_type.is_numeric else ""
                    attrs[index] = Attribute(name, new_type, unit, attr.nullable)
                    break
            else:
                attrs.append(Attribute(name, new_type))
        result = StreamSchema(
            attributes=tuple(attrs),
            temporal_granularity=schema.temporal_granularity,
            spatial_granularity=schema.spatial_granularity,
            themes=schema.themes,
        )
        if self.rename:
            from repro.schema.infer import rename_schema

            result = rename_schema(result, dict(self.rename))
        if self.project is not None:
            result = result.project(list(self.project))
        return result

    def build_operator(self) -> Operator:
        return TransformOperator(
            assignments=dict(self.assignments),
            rename=dict(self.rename),
            project=list(self.project) if self.project is not None else None,
        )

    def params(self) -> dict:
        return {
            "assignments": dict(self.assignments),
            "rename": dict(self.rename),
            "project": list(self.project) if self.project is not None else None,
        }


@dataclass(frozen=True)
class ValidateSpec(OperatorSpec):
    """Validation rules (the transform family's rule-checking face)."""

    rules: tuple[str, ...]

    kind = "validate"

    def __post_init__(self) -> None:
        if not self.rules:
            raise DataflowError("validate needs at least one rule")
        object.__setattr__(self, "rules", tuple(self.rules))

    def infer_schema(self, inputs: "list[StreamSchema]") -> StreamSchema:
        self._check_inputs(inputs)
        for rule in self.rules:
            compile_expression(rule).check_boolean(inputs[0])
        return inputs[0]

    def build_operator(self) -> Operator:
        return ValidateOperator(list(self.rules))

    def params(self) -> dict:
        return {"rules": list(self.rules)}


@dataclass(frozen=True)
class VirtualPropertySpec(OperatorSpec):
    """⊎ s⟨p, spec⟩."""

    property_name: str
    spec: str

    kind = "virtual-property"

    def infer_schema(self, inputs: "list[StreamSchema]") -> StreamSchema:
        self._check_inputs(inputs)
        expr = compile_expression(self.spec)
        value_type = expr.type_check(inputs[0])
        return with_virtual_property(inputs[0], self.property_name, value_type)

    def build_operator(self) -> Operator:
        return VirtualPropertyOperator(self.property_name, self.spec)

    def params(self) -> dict:
        return {"property_name": self.property_name, "spec": self.spec}


@dataclass(frozen=True)
class CullTimeSpec(OperatorSpec):
    """γr(s, ⟨t1, t2⟩)."""

    rate: int
    start: float
    end: float

    kind = "cull-time"

    def infer_schema(self, inputs: "list[StreamSchema]") -> StreamSchema:
        self._check_inputs(inputs)
        if self.end < self.start:
            raise DataflowError(
                f"cull-time interval end ({self.end}) precedes start ({self.start})"
            )
        if self.rate < 1:
            raise DataflowError(f"cull-time rate must be >= 1, got {self.rate}")
        return inputs[0]

    def build_operator(self) -> Operator:
        return CullTimeOperator(rate=self.rate, start=self.start, end=self.end)

    def params(self) -> dict:
        return {"rate": self.rate, "start": self.start, "end": self.end}


@dataclass(frozen=True)
class CullSpaceSpec(OperatorSpec):
    """γr(s, ⟨coord1, coord2⟩)."""

    rate: int
    corner1: tuple[float, float]
    corner2: tuple[float, float]

    kind = "cull-space"

    def infer_schema(self, inputs: "list[StreamSchema]") -> StreamSchema:
        self._check_inputs(inputs)
        if self.rate < 1:
            raise DataflowError(f"cull-space rate must be >= 1, got {self.rate}")
        self.build_operator()  # validates coordinates
        return inputs[0]

    def build_operator(self) -> Operator:
        return CullSpaceOperator(
            rate=self.rate, corner1=tuple(self.corner1), corner2=tuple(self.corner2)
        )

    def params(self) -> dict:
        return {
            "rate": self.rate,
            "corner1": list(self.corner1),
            "corner2": list(self.corner2),
        }


@dataclass(frozen=True)
class AggregationSpec(OperatorSpec):
    """@t,{a1..an} op (s), optionally grouped and/or sliding.

    ``group_by`` emits one tuple per key per window; ``window`` (>=
    interval) computes over a sliding lookback instead of tumbling.
    """

    interval: float
    attributes: tuple[str, ...]
    function: str
    group_by: "str | None" = None
    window: "float | None" = None

    kind = "aggregation"

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))
        object.__setattr__(self, "function", self.function.upper())
        if self.function not in AGGREGATION_FUNCTIONS:
            raise DataflowError(
                f"unknown aggregation function {self.function!r}; "
                f"known: {', '.join(AGGREGATION_FUNCTIONS)}"
            )

    def infer_schema(self, inputs: "list[StreamSchema]") -> StreamSchema:
        self._check_inputs(inputs)
        if self.window is not None and self.window < self.interval:
            raise DataflowError(
                f"aggregation window ({self.window}) must cover at least "
                f"one flush interval ({self.interval})"
            )
        return aggregate_schema(
            inputs[0], list(self.attributes), self.function, self.interval,
            group_by=self.group_by,
        )

    def build_operator(self) -> Operator:
        return AggregationOperator(
            interval=self.interval,
            attributes=list(self.attributes),
            function=self.function,
            group_by=self.group_by,
            window=self.window,
        )

    def partition_keys(self) -> "tuple[str, ...] | None":
        # Grouped windows shard cleanly: a group lives wholly on the
        # shard that owns its key.  Ungrouped aggregation is one global
        # group and cannot be split.
        return (self.group_by,) if self.group_by is not None else None

    def combine_safe(self) -> bool:
        # COUNT/AVG/SUM/MIN/MAX all fold from per-replica
        # [count, sum, min, max] partials, so a grouped aggregation's hot
        # key may be sprayed across replicas.
        return self.group_by is not None

    def params(self) -> dict:
        return {
            "interval": self.interval,
            "attributes": list(self.attributes),
            "function": self.function,
            "group_by": self.group_by,
            "window": self.window,
        }


@dataclass(frozen=True)
class JoinSpec(OperatorSpec):
    """s1 ⋈ᵗ_pred s2."""

    interval: float
    predicate: str
    left_prefix: str = "left"
    right_prefix: str = "right"

    kind = "join"
    input_count = 2

    def infer_schema(self, inputs: "list[StreamSchema]") -> StreamSchema:
        self._check_inputs(inputs)
        left, right = inputs
        expr = compile_expression(self.predicate)
        expr.check_boolean(**{self.left_prefix: left, self.right_prefix: right})
        return join_schema(left, right, self.left_prefix, self.right_prefix)

    def build_operator(self) -> Operator:
        return JoinOperator(
            interval=self.interval,
            predicate=self.predicate,
            left_prefix=self.left_prefix,
            right_prefix=self.right_prefix,
        )

    def partition_keys(self) -> "tuple[str, ...] | None":
        # The first equi-conjunct is the partition key pair (left attr
        # for port 0, right attr for port 1).  Any matching pair
        # satisfies *every* equi-conjunct, the first included, so both
        # sides of a match always hash to the same shard.
        equi = self.build_operator().equi_keys  # type: ignore[attr-defined]
        return (equi[0][0], equi[0][1]) if equi else None

    def combine_safe(self) -> bool:
        # Never: spraying one equi-key over replicas separates left and
        # right tuples that must meet in the same window — pairs would be
        # silently lost, and no partial-fold can recover them.
        return False

    def params(self) -> dict:
        return {
            "interval": self.interval,
            "predicate": self.predicate,
            "left_prefix": self.left_prefix,
            "right_prefix": self.right_prefix,
        }


@dataclass(frozen=True)
class _TriggerSpecBase(OperatorSpec):
    interval: float
    condition: str
    targets: tuple[str, ...]
    window: "float | None" = None

    has_output = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "targets", tuple(self.targets))
        if not self.targets:
            raise DataflowError("trigger needs at least one target")

    def infer_schema(self, inputs: "list[StreamSchema]") -> None:
        self._check_inputs(inputs)
        stats = statistics_schema(inputs[0])
        compile_expression(self.condition).check_boolean(stats)
        return None

    def params(self) -> dict:
        return {
            "interval": self.interval,
            "condition": self.condition,
            "targets": list(self.targets),
            "window": self.window,
        }


@dataclass(frozen=True)
class TriggerOnSpec(_TriggerSpecBase):
    """⊕ON,t(s, {s1..sn}, cond)."""

    kind = "trigger-on"

    def build_operator(self) -> Operator:
        return TriggerOnOperator(
            interval=self.interval,
            condition=self.condition,
            targets=list(self.targets),
            window=self.window,
        )


@dataclass(frozen=True)
class TriggerOffSpec(_TriggerSpecBase):
    """⊕OFF,t(s, {s1..sn}, cond)."""

    kind = "trigger-off"

    def build_operator(self) -> Operator:
        return TriggerOffOperator(
            interval=self.interval,
            condition=self.condition,
            targets=list(self.targets),
            window=self.window,
        )


_SPEC_CLASSES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        FilterSpec,
        TransformSpec,
        ValidateSpec,
        VirtualPropertySpec,
        CullTimeSpec,
        CullSpaceSpec,
        AggregationSpec,
        JoinSpec,
        TriggerOnSpec,
        TriggerOffSpec,
    )
}


def spec_from_dict(data: dict) -> OperatorSpec:
    """Rebuild a spec from its :meth:`OperatorSpec.to_dict` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = _SPEC_CLASSES.get(kind)
    if cls is None:
        known = ", ".join(sorted(_SPEC_CLASSES))
        raise DataflowError(f"unknown operator kind {kind!r}; known: {known}")
    if kind == "transform" and payload.get("project") is not None:
        payload["project"] = tuple(payload["project"])
    if kind == "validate":
        payload["rules"] = tuple(payload["rules"])
    if kind == "aggregation":
        payload["attributes"] = tuple(payload["attributes"])
    if kind in ("trigger-on", "trigger-off"):
        payload["targets"] = tuple(payload["targets"])
    if kind == "cull-space":
        payload["corner1"] = tuple(payload["corner1"])
        payload["corner2"] = tuple(payload["corner2"])
    try:
        return cls(**payload)
    except TypeError as exc:
        raise DataflowError(f"bad parameters for {kind!r}: {exc}") from exc
