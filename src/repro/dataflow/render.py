"""Canvas renderings: Graphviz DOT and ASCII (the Figure 2 stand-ins).

The paper's canvas is a Cytoscape graph; these renderers produce the same
picture as data — DOT for real tooling, ASCII for terminals and tests.
Data edges are solid, trigger control edges dashed; nodes carry their
operator descriptions so the rendering *is* the dataflow, not a sketch.
"""

from __future__ import annotations

from repro.dataflow.graph import Dataflow


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(flow: Dataflow) -> str:
    """Graphviz DOT of the canvas.

    Sources are houses, operators boxes, sinks cylinders; control edges
    are dashed red.
    """
    lines = [f'digraph "{_dot_escape(flow.name)}" {{', "  rankdir=LR;"]
    for node_id, source in flow.sources.items():
        state = "" if source.initially_active else "\\n(dormant)"
        label = _dot_escape(f"{node_id}{state}")
        lines.append(
            f'  "{_dot_escape(node_id)}" [shape=house, label="{label}"];'
        )
    for node_id, node in flow.operators.items():
        label = _dot_escape(f"{node_id}\\n{node.spec.kind}")
        lines.append(
            f'  "{_dot_escape(node_id)}" [shape=box, label="{label}"];'
        )
    for node_id, sink in flow.sinks.items():
        label = _dot_escape(f"{node_id}\\n[{sink.sink_kind}]")
        lines.append(
            f'  "{_dot_escape(node_id)}" [shape=cylinder, label="{label}"];'
        )
    for edge in flow.data_edges:
        port = f' [label="port {edge.port}"]' if edge.port else ""
        lines.append(
            f'  "{_dot_escape(edge.source_id)}" -> '
            f'"{_dot_escape(edge.target_id)}"{port};'
        )
    for edge in flow.control_edges:
        lines.append(
            f'  "{_dot_escape(edge.trigger_id)}" -> '
            f'"{_dot_escape(edge.source_id)}" '
            f"[style=dashed, color=red, label=\"control\"];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_ascii(flow: Dataflow) -> str:
    """A terminal rendering: nodes in topological layers, edge list below.

    >>> print(render_ascii(flow))          # doctest: +SKIP
    """
    try:
        order = flow.topological_order()
    except Exception:
        order = flow.node_ids

    # Assign layers: sources at 0, each node one past its deepest input.
    layers: dict[str, int] = {}
    for node_id in order:
        inputs = flow.inputs_of(node_id)
        if not inputs:
            layers[node_id] = 0
        else:
            layers[node_id] = 1 + max(
                layers.get(edge.source_id, 0) for edge in inputs
            )
    by_layer: dict[int, list[str]] = {}
    for node_id, layer in layers.items():
        by_layer.setdefault(layer, []).append(node_id)

    def decorate(node_id: str) -> str:
        if node_id in flow.sources:
            marker = "(src)" if flow.sources[node_id].initially_active else "(src, dormant)"
            return f"{node_id} {marker}"
        if node_id in flow.operators:
            return f"{node_id} [{flow.operators[node_id].spec.kind}]"
        return f"{node_id} <{flow.sinks[node_id].sink_kind}>"

    lines = [f"dataflow {flow.name!r}"]
    for layer in sorted(by_layer):
        entries = "   ".join(decorate(n) for n in sorted(by_layer[layer]))
        lines.append(f"  layer {layer}: {entries}")
    if flow.data_edges:
        lines.append("  data edges:")
        for edge in flow.data_edges:
            port = f" (port {edge.port})" if edge.port else ""
            lines.append(f"    {edge.source_id} --> {edge.target_id}{port}")
    if flow.control_edges:
        lines.append("  control edges:")
        for edge in flow.control_edges:
            lines.append(f"    {edge.trigger_id} ~~> {edge.source_id}")
    return "\n".join(lines)
