"""Conceptual dataflow model — the canvas behind Figure 2.

A :class:`Dataflow` is the designer's document: source nodes bound to
published sensors, operator nodes carrying declarative Table 1
specifications, sink nodes (warehouse, visualization, collector), data
edges and trigger control edges.  The validator propagates schemas and
runs the consistency checks that guarantee "only dataflows that can be
soundly translated in the DSN/SCN specification" reach deployment; the
sampler supports the step-by-step debugging of demo part P1.
"""

from repro.dataflow.ops import (
    OperatorSpec,
    FilterSpec,
    TransformSpec,
    ValidateSpec,
    VirtualPropertySpec,
    CullTimeSpec,
    CullSpaceSpec,
    AggregationSpec,
    JoinSpec,
    TriggerOnSpec,
    TriggerOffSpec,
    spec_from_dict,
)
from repro.dataflow.graph import (
    Dataflow,
    SourceNode,
    OperatorNode,
    SinkNode,
    SinkKind,
)
from repro.dataflow.validate import (
    ValidationIssue,
    ValidationReport,
    validate_dataflow,
)
from repro.dataflow.sample import run_sample
from repro.dataflow.serialize import dataflow_to_dict, dataflow_from_dict
from repro.dataflow.render import to_dot, render_ascii

__all__ = [
    "OperatorSpec",
    "FilterSpec",
    "TransformSpec",
    "ValidateSpec",
    "VirtualPropertySpec",
    "CullTimeSpec",
    "CullSpaceSpec",
    "AggregationSpec",
    "JoinSpec",
    "TriggerOnSpec",
    "TriggerOffSpec",
    "spec_from_dict",
    "Dataflow",
    "SourceNode",
    "OperatorNode",
    "SinkNode",
    "SinkKind",
    "ValidationIssue",
    "ValidationReport",
    "validate_dataflow",
    "run_sample",
    "dataflow_to_dict",
    "dataflow_from_dict",
    "to_dot",
    "render_ascii",
]
