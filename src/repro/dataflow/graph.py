"""The conceptual dataflow graph (the designer's canvas document).

Three node kinds mirror the canvas palette: sources (bound to published
sensors through a subscription filter), operators (Table 1 specs), and
sinks (warehouse / visualization / collector).  Edges are either *data*
edges (stream flow, into a numbered input port) or *control* edges (a
trigger governing the activation of a source).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import DataflowError, PortError
from repro.dataflow.ops import OperatorSpec
from repro.network.qos import QosPolicy
from repro.pubsub.subscription import SubscriptionFilter
from repro.schema.schema import StreamSchema


class SinkKind:
    """Sink destinations the paper names (P2)."""

    WAREHOUSE = "warehouse"
    VISUALIZATION = "visualization"
    COLLECTOR = "collector"

    ALL = (WAREHOUSE, VISUALIZATION, COLLECTOR)


@dataclass
class SourceNode:
    """A canvas source: which sensor stream(s) feed this input.

    ``schema`` is filled from the sensor advertisement when the source is
    bound (designer) or validated against the registry (headless use).
    ``initially_active`` is False for trigger-gated sources — the Osaka
    rain/tweets/traffic streams start dormant until Trigger On fires.
    """

    node_id: str
    filter: SubscriptionFilter
    schema: "StreamSchema | None" = None
    initially_active: bool = True
    label: str = ""


@dataclass
class OperatorNode:
    """A canvas operator carrying its declarative specification."""

    node_id: str
    spec: OperatorSpec
    label: str = ""


@dataclass
class SinkNode:
    """A canvas sink: where the processed stream lands."""

    node_id: str
    sink_kind: str = SinkKind.COLLECTOR
    config: dict = field(default_factory=dict)
    qos: QosPolicy = field(default_factory=QosPolicy)
    label: str = ""

    def __post_init__(self) -> None:
        if self.sink_kind not in SinkKind.ALL:
            raise DataflowError(
                f"unknown sink kind {self.sink_kind!r}; known: {SinkKind.ALL}"
            )


@dataclass(frozen=True)
class DataEdge:
    """Stream flow from a node's output into an operator/sink input port."""

    source_id: str
    target_id: str
    port: int = 0


@dataclass(frozen=True)
class ControlEdge:
    """A trigger node governing a source node's activation."""

    trigger_id: str
    source_id: str


class Dataflow:
    """The canvas document: nodes plus data and control edges.

    >>> flow = Dataflow("demo")
    >>> src = flow.add_source(SubscriptionFilter(sensor_type="temperature"))
    >>> op = flow.add_operator(FilterSpec("temperature > 24"))  # doctest: +SKIP
    >>> flow.connect(src, op)                                   # doctest: +SKIP
    """

    def __init__(self, name: str = "dataflow") -> None:
        self.name = name
        self.sources: dict[str, SourceNode] = {}
        self.operators: dict[str, OperatorNode] = {}
        self.sinks: dict[str, SinkNode] = {}
        self.data_edges: list[DataEdge] = []
        self.control_edges: list[ControlEdge] = []
        self._ids = itertools.count(1)

    # -- node management ------------------------------------------------------

    def _new_id(self, prefix: str) -> str:
        while True:
            node_id = f"{prefix}-{next(self._ids)}"
            if node_id not in self:
                return node_id

    def add_source(
        self,
        filter_: SubscriptionFilter,
        schema: "StreamSchema | None" = None,
        node_id: str = "",
        initially_active: bool = True,
        label: str = "",
    ) -> str:
        node_id = node_id or self._new_id("source")
        self._check_new_id(node_id)
        self.sources[node_id] = SourceNode(
            node_id=node_id,
            filter=filter_,
            schema=schema,
            initially_active=initially_active,
            label=label,
        )
        return node_id

    def add_operator(
        self, spec: OperatorSpec, node_id: str = "", label: str = ""
    ) -> str:
        node_id = node_id or self._new_id(spec.kind)
        self._check_new_id(node_id)
        self.operators[node_id] = OperatorNode(node_id=node_id, spec=spec, label=label)
        return node_id

    def add_sink(
        self,
        sink_kind: str = SinkKind.COLLECTOR,
        config: "dict | None" = None,
        qos: "QosPolicy | None" = None,
        node_id: str = "",
        label: str = "",
    ) -> str:
        node_id = node_id or self._new_id("sink")
        self._check_new_id(node_id)
        self.sinks[node_id] = SinkNode(
            node_id=node_id,
            sink_kind=sink_kind,
            config=dict(config or {}),
            qos=qos or QosPolicy(),
            label=label,
        )
        return node_id

    def remove_node(self, node_id: str) -> None:
        """Remove a node and every edge touching it (P3: on-the-fly edits)."""
        if node_id not in self:
            raise DataflowError(f"no node {node_id!r} in dataflow {self.name!r}")
        self.sources.pop(node_id, None)
        self.operators.pop(node_id, None)
        self.sinks.pop(node_id, None)
        self.data_edges = [
            edge
            for edge in self.data_edges
            if node_id not in (edge.source_id, edge.target_id)
        ]
        self.control_edges = [
            edge
            for edge in self.control_edges
            if node_id not in (edge.trigger_id, edge.source_id)
        ]

    def replace_operator(self, node_id: str, spec: OperatorSpec) -> None:
        """Swap an operator's spec in place, keeping its edges (P3)."""
        node = self.operators.get(node_id)
        if node is None:
            raise DataflowError(f"no operator node {node_id!r}")
        old = node.spec
        if old.input_count != spec.input_count:
            raise DataflowError(
                f"replacement for {node_id!r} must keep {old.input_count} "
                f"input port(s), new spec has {spec.input_count}"
            )
        node.spec = spec

    def _check_new_id(self, node_id: str) -> None:
        if node_id in self:
            raise DataflowError(f"node id {node_id!r} already used")

    # -- edges ---------------------------------------------------------------

    def connect(self, source_id: str, target_id: str, port: int = 0) -> None:
        """Draw a data edge: source_id's output into target_id's port."""
        out_node = self._node(source_id)
        in_node = self._node(target_id)
        if isinstance(out_node, SinkNode):
            raise PortError(f"sink {source_id!r} has no output to connect")
        if isinstance(out_node, OperatorNode) and not out_node.spec.has_output:
            raise PortError(
                f"{out_node.spec.kind} {source_id!r} is control-only; "
                f"it has no data output"
            )
        if isinstance(in_node, SourceNode):
            raise PortError(f"source {target_id!r} cannot receive a data edge")
        max_ports = (
            in_node.spec.input_count if isinstance(in_node, OperatorNode) else 1
        )
        if not (0 <= port < max_ports):
            raise PortError(
                f"{target_id!r} has ports 0..{max_ports - 1}, got {port}"
            )
        for edge in self.data_edges:
            if edge.target_id == target_id and edge.port == port:
                raise PortError(
                    f"port {port} of {target_id!r} is already connected "
                    f"(from {edge.source_id!r})"
                )
        self.data_edges.append(DataEdge(source_id, target_id, port))

    def connect_control(self, trigger_id: str, source_id: str) -> None:
        """Draw a control edge from a trigger to a source it governs."""
        trigger = self.operators.get(trigger_id)
        if trigger is None or trigger.spec.kind not in ("trigger-on", "trigger-off"):
            raise PortError(f"{trigger_id!r} is not a trigger node")
        if source_id not in self.sources:
            raise PortError(f"control edges must target sources, not {source_id!r}")
        edge = ControlEdge(trigger_id, source_id)
        if edge in self.control_edges:
            raise PortError(f"control edge {trigger_id!r}->{source_id!r} exists")
        self.control_edges.append(edge)

    def disconnect(self, source_id: str, target_id: str, port: int = 0) -> None:
        edge = DataEdge(source_id, target_id, port)
        try:
            self.data_edges.remove(edge)
        except ValueError:
            raise DataflowError(f"no data edge {source_id!r}->{target_id!r}") from None

    # -- introspection ---------------------------------------------------------

    def _node(self, node_id: str):
        for table in (self.sources, self.operators, self.sinks):
            if node_id in table:
                return table[node_id]
        raise DataflowError(f"no node {node_id!r} in dataflow {self.name!r}")

    def node(self, node_id: str):
        return self._node(node_id)

    def __contains__(self, node_id: object) -> bool:
        return (
            node_id in self.sources
            or node_id in self.operators
            or node_id in self.sinks
        )

    @property
    def node_ids(self) -> list[str]:
        return list(self.sources) + list(self.operators) + list(self.sinks)

    def inputs_of(self, node_id: str) -> list[DataEdge]:
        """Incoming data edges, sorted by port."""
        return sorted(
            (edge for edge in self.data_edges if edge.target_id == node_id),
            key=lambda edge: edge.port,
        )

    def outputs_of(self, node_id: str) -> list[DataEdge]:
        return [edge for edge in self.data_edges if edge.source_id == node_id]

    def controlled_sources(self, trigger_id: str) -> list[str]:
        return [
            edge.source_id
            for edge in self.control_edges
            if edge.trigger_id == trigger_id
        ]

    def data_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(self.node_ids)
        for edge in self.data_edges:
            graph.add_edge(edge.source_id, edge.target_id, port=edge.port)
        return graph

    def topological_order(self) -> list[str]:
        """Node ids in data-edge topological order.

        Raises :class:`DataflowError` on cycles — callers that want a
        diagnostic list use the validator instead.
        """
        graph = self.data_graph()
        try:
            return list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            raise DataflowError(
                f"dataflow {self.name!r} contains a cycle"
            ) from None
