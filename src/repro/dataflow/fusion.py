"""Fusion planner: find operator chains that can share one process.

A *fusible chain* is a maximal linear run of non-blocking operator
services the executor may host in a single process (see
:class:`repro.streams.fused.FusedOperator`) without changing the flow's
observable behaviour.  Two adjacent services ``a -> b`` link into the
same chain only when the hop is private to them:

- both are operator services of a non-blocking kind (filter, transform,
  validate, virtual-property, cull-time, cull-space);
- neither carries a ``shard`` fan-out directive (a sharded service runs
  as N replica processes — there is no single process to fuse into, and
  none of the non-blocking kinds shard anyway);
- ``a`` has exactly one outgoing channel (to ``b``) — no cross-cut
  subscriber taps the intermediate stream, so eliding the hop is
  unobservable;
- ``b`` has exactly one incoming channel (from ``a``, on port 0) — every
  tuple entering ``b`` really did traverse ``a`` first.

The chain *head* may be fed by anything (a source, a blocking operator,
even several channels fanning in) and the *tail* may fan out to any
consumers — only the interior hops collapse.  Blocking operators,
triggers, sinks, and sources never join a chain.

The planner is the default-on deploy path; a DSN program may instead pin
its chains explicitly with ``fuse "a" -> "b";`` clauses, which
:func:`chains_for` validates against the same link rules.
"""

from __future__ import annotations

from repro.dsn.ast import DsnProgram, ServiceRole
from repro.errors import DsnError

#: Operator kinds eligible for fusion — exactly the paper's non-blocking
#: set.  Blocking kinds keep their own process (they need flush timers
#: and checkpoints); triggers are control-plane and emit no data.
FUSIBLE_KINDS = frozenset({
    "filter",
    "transform",
    "validate",
    "virtual-property",
    "cull-time",
    "cull-space",
})

#: Operator kinds whose runtime classes expose a column kernel
#: (``columnar_step``) — the whole per-tuple operator family.  Today
#: this coincides with :data:`FUSIBLE_KINDS`; it is kept separate so a
#: future fusible-but-row-only kind (e.g. a stateful dedup) degrades a
#: chain to the row batch path instead of blocking fusion.
COLUMNAR_KINDS = frozenset(FUSIBLE_KINDS)


def columnar_eligible(program: DsnProgram, chain: "tuple[str, ...]") -> bool:
    """Whether every member of a planned chain has a column kernel.

    Chain eligibility (fusibility) is necessary but not sufficient for
    columnar execution: the executor clears the fused operator's
    ``columnar`` flag for chains failing this, so they keep the row
    batch path.  Uniform-schema and batch-size checks remain runtime
    per-batch decisions — this is the static, plan-time gate.
    """
    kinds = {
        service.name: service.kind
        for service in program.services
        if service.role is ServiceRole.OPERATOR
    }
    return all(kinds.get(name) in COLUMNAR_KINDS for name in chain)


def _fusible_services(program: DsnProgram) -> "set[str]":
    sharded = {shard.service for shard in program.shards if shard.count > 1}
    return {
        service.name
        for service in program.services
        if service.role is ServiceRole.OPERATOR
        and service.kind in FUSIBLE_KINDS
        and service.name not in sharded
    }


def _links(program: DsnProgram) -> "dict[str, str]":
    """``a -> b`` pairs whose hop may be elided (see module docstring)."""
    fusible = _fusible_services(program)
    out_degree: "dict[str, int]" = {}
    in_degree: "dict[str, int]" = {}
    for channel in program.channels:
        out_degree[channel.source] = out_degree.get(channel.source, 0) + 1
        in_degree[channel.target] = in_degree.get(channel.target, 0) + 1
    next_of: "dict[str, str]" = {}
    for channel in program.channels:
        if (
            channel.source in fusible
            and channel.target in fusible
            and channel.port == 0
            and out_degree[channel.source] == 1
            and in_degree[channel.target] == 1
        ):
            next_of[channel.source] = channel.target
    return next_of


def plan_fusion(program: DsnProgram) -> "list[tuple[str, ...]]":
    """Maximal fusible chains (length >= 2), in service declaration order.

    Every service appears in at most one chain; a validated program's
    dataflow is acyclic, so following the link relation terminates.
    """
    next_of = _links(program)
    prev_of = {target: source for source, target in next_of.items()}
    chains: "list[tuple[str, ...]]" = []
    for service in program.services:
        name = service.name
        if name in prev_of or name not in next_of:
            continue  # not a chain head (mid-chain, tail, or unlinked)
        chain = [name]
        while chain[-1] in next_of:
            chain.append(next_of[chain[-1]])
        chains.append(tuple(chain))
    return chains


def validate_chains(
    program: DsnProgram, chains: "list[tuple[str, ...]]"
) -> None:
    """Check explicit ``fuse`` hints against the planner's link rules.

    Raises :class:`repro.errors.DsnError` on a chain the fused runtime
    could not host faithfully (a blocking member, a tapped interior hop,
    overlapping chains, ...).
    """
    next_of = _links(program)
    seen: "set[str]" = set()
    for chain in chains:
        if len(chain) < 2:
            raise DsnError(
                f"fuse hint {list(chain)!r} needs at least 2 services"
            )
        for name in chain:
            if name in seen:
                raise DsnError(
                    f"service {name!r} appears in more than one fuse hint"
                )
            seen.add(name)
        for source, target in zip(chain, chain[1:]):
            if next_of.get(source) != target:
                raise DsnError(
                    f"fuse hint {list(chain)!r}: {source!r} -> {target!r} "
                    "is not a fusible hop (members must be unsharded "
                    "non-blocking operators on a private single-in/"
                    "single-out channel)"
                )


def chains_for(program: DsnProgram, fuse: bool = True) -> "list[tuple[str, ...]]":
    """The chains a deployment should fuse.

    Explicit ``fuse`` clauses in the program pin the plan (validated
    against the link rules); otherwise the planner derives maximal
    chains.  ``fuse=False`` (the ``--no-fuse`` escape hatch) disables
    fusion entirely.
    """
    if not fuse:
        return []
    declared = [tuple(hint.members) for hint in program.fuses]
    if declared:
        validate_chains(program, declared)
        return declared
    return plan_fusion(program)
