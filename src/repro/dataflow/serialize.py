"""Canvas document (de)serialization.

The designer saves and loads dataflows as JSON documents; the same format
travels alongside the DSN program so a deployed flow can be re-opened on
the canvas.  Round-trip is exact for everything except source schemas,
which are re-resolved from the registry at load time (schemas belong to
the live sensors, not the document).
"""

from __future__ import annotations

from repro.errors import DataflowError
from repro.dataflow.graph import Dataflow
from repro.dataflow.ops import spec_from_dict
from repro.network.qos import QosPolicy
from repro.pubsub.subscription import SubscriptionFilter
from repro.stt.spatial import Box
from repro.stt.thematic import Theme


def _filter_to_dict(filter_: SubscriptionFilter) -> dict:
    data: dict = {}
    if filter_.sensor_ids:
        data["sensor_ids"] = list(filter_.sensor_ids)
    if filter_.sensor_type:
        data["sensor_type"] = filter_.sensor_type
    if filter_.theme is not None:
        data["theme"] = filter_.theme.path
    if filter_.area is not None:
        area = filter_.area
        data["area"] = [area.south, area.west, area.north, area.east]
    if filter_.min_frequency > 0.0:
        data["min_frequency"] = filter_.min_frequency
    if filter_.max_frequency != float("inf"):
        data["max_frequency"] = filter_.max_frequency
    return data


def _filter_from_dict(data: dict) -> SubscriptionFilter:
    kwargs: dict = {}
    if "sensor_ids" in data:
        kwargs["sensor_ids"] = tuple(data["sensor_ids"])
    if "sensor_type" in data:
        kwargs["sensor_type"] = data["sensor_type"]
    if "theme" in data:
        kwargs["theme"] = Theme(data["theme"])
    if "area" in data:
        south, west, north, east = data["area"]
        kwargs["area"] = Box(south=south, west=west, north=north, east=east)
    if "min_frequency" in data:
        kwargs["min_frequency"] = data["min_frequency"]
    if "max_frequency" in data:
        kwargs["max_frequency"] = data["max_frequency"]
    return SubscriptionFilter(**kwargs)


def _qos_to_dict(qos: QosPolicy) -> dict:
    return {
        "qos_class": qos.qos_class.value,
        "segment_bytes": qos.segment_bytes,
        "priority": qos.priority,
        "max_latency": qos.max_latency if qos.max_latency != float("inf") else None,
    }


def _qos_from_dict(data: dict) -> QosPolicy:
    max_latency = data.get("max_latency")
    return QosPolicy(
        qos_class=data.get("qos_class", "best-effort"),
        segment_bytes=data.get("segment_bytes", 65536),
        priority=data.get("priority", 0),
        max_latency=float("inf") if max_latency is None else max_latency,
    )


def dataflow_to_dict(flow: Dataflow) -> dict:
    """Serialize a canvas to a JSON-compatible dict."""
    return {
        "name": flow.name,
        "sources": [
            {
                "node_id": source.node_id,
                "filter": _filter_to_dict(source.filter),
                "initially_active": source.initially_active,
                "label": source.label,
            }
            for source in flow.sources.values()
        ],
        "operators": [
            {
                "node_id": node.node_id,
                "spec": node.spec.to_dict(),
                "label": node.label,
            }
            for node in flow.operators.values()
        ],
        "sinks": [
            {
                "node_id": sink.node_id,
                "sink_kind": sink.sink_kind,
                "config": dict(sink.config),
                "qos": _qos_to_dict(sink.qos),
                "label": sink.label,
            }
            for sink in flow.sinks.values()
        ],
        "data_edges": [
            {"source": edge.source_id, "target": edge.target_id, "port": edge.port}
            for edge in flow.data_edges
        ],
        "control_edges": [
            {"trigger": edge.trigger_id, "source": edge.source_id}
            for edge in flow.control_edges
        ],
    }


def dataflow_from_dict(data: dict) -> Dataflow:
    """Rebuild a canvas from :func:`dataflow_to_dict` output."""
    try:
        flow = Dataflow(data.get("name", "dataflow"))
        for source in data.get("sources", []):
            flow.add_source(
                _filter_from_dict(source["filter"]),
                node_id=source["node_id"],
                initially_active=source.get("initially_active", True),
                label=source.get("label", ""),
            )
        for node in data.get("operators", []):
            flow.add_operator(
                spec_from_dict(node["spec"]),
                node_id=node["node_id"],
                label=node.get("label", ""),
            )
        for sink in data.get("sinks", []):
            flow.add_sink(
                sink_kind=sink.get("sink_kind", "collector"),
                config=sink.get("config", {}),
                qos=_qos_from_dict(sink.get("qos", {})),
                node_id=sink["node_id"],
                label=sink.get("label", ""),
            )
        for edge in data.get("data_edges", []):
            flow.connect(edge["source"], edge["target"], edge.get("port", 0))
        for edge in data.get("control_edges", []):
            flow.connect_control(edge["trigger"], edge["source"])
    except KeyError as exc:
        raise DataflowError(f"malformed dataflow document: missing {exc}") from exc
    return flow
