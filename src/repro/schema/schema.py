"""Stream schemas with STT metadata.

A :class:`StreamSchema` describes the tuples a sensor (or a derived stream)
produces: an ordered list of typed attributes plus the stamping metadata the
pub-sub layer publishes alongside the stream — default temporal and spatial
granularities and thematic tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SchemaError, TypeMismatchError
from repro.schema.types import AttributeType, value_fits, widens_to
from repro.stt.granularity import (
    SpatialGranularity,
    TemporalGranularity,
    spatial_granularity,
    temporal_granularity,
)
from repro.stt.thematic import Theme

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _IDENT_OK for c in name):
        raise SchemaError(
            f"invalid attribute name {name!r}: must be an identifier "
            f"(letters, digits, underscore; not starting with a digit)"
        )
    return name


@dataclass(frozen=True)
class Attribute:
    """One typed attribute of a stream schema.

    Attributes:
        name: identifier, unique within the schema.
        type: value type.
        unit: unit of measure name for numeric attributes (optional).
        nullable: whether tuples may omit / null this attribute.
    """

    name: str
    type: AttributeType
    unit: str = ""
    nullable: bool = False

    def __post_init__(self) -> None:
        _check_name(self.name)
        object.__setattr__(self, "type", AttributeType.parse(self.type))
        if self.unit and not self.type.is_numeric:
            raise SchemaError(
                f"attribute {self.name!r}: unit {self.unit!r} requires a "
                f"numeric type, got {self.type.value}"
            )

    def accepts(self, value: object) -> bool:
        if value is None:
            return self.nullable
        return value_fits(value, self.type) or (
            isinstance(value, bool) is False
            and isinstance(value, int)
            and self.type is AttributeType.FLOAT
        )

    def renamed(self, name: str) -> "Attribute":
        return replace(self, name=_check_name(name))


@dataclass(frozen=True)
class StreamSchema:
    """Ordered, named, typed attributes plus STT stamping metadata.

    The attribute order is the display order in the designer's schema pane;
    lookups are by name.
    """

    attributes: tuple[Attribute, ...]
    temporal_granularity: TemporalGranularity = field(
        default_factory=lambda: temporal_granularity("second")
    )
    spatial_granularity: SpatialGranularity = field(
        default_factory=lambda: spatial_granularity("point")
    )
    themes: tuple[Theme, ...] = ()

    def __post_init__(self) -> None:
        attrs = tuple(self.attributes)
        object.__setattr__(self, "attributes", attrs)
        seen: set[str] = set()
        for attr in attrs:
            if not isinstance(attr, Attribute):
                raise SchemaError(f"not an Attribute: {attr!r}")
            if attr.name in seen:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            seen.add(attr.name)
        object.__setattr__(
            self, "temporal_granularity", temporal_granularity(self.temporal_granularity)
        )
        object.__setattr__(
            self, "spatial_granularity", spatial_granularity(self.spatial_granularity)
        )
        themes = tuple(
            theme if isinstance(theme, Theme) else Theme(theme) for theme in self.themes
        )
        object.__setattr__(self, "themes", themes)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(
        cls,
        attrs: "list[tuple] | dict[str, str | AttributeType]",
        temporal: "str | TemporalGranularity" = "second",
        spatial: "str | SpatialGranularity" = "point",
        themes: "tuple | list" = (),
    ) -> "StreamSchema":
        """Concise constructor.

        ``attrs`` is either ``{"temp": "float", ...}`` or a list of
        ``(name, type)`` / ``(name, type, unit)`` tuples.
        """
        attributes: list[Attribute] = []
        if isinstance(attrs, dict):
            items = [(name, attr_type) for name, attr_type in attrs.items()]
        else:
            items = list(attrs)
        for item in items:
            if isinstance(item, Attribute):
                attributes.append(item)
            elif len(item) == 2:
                attributes.append(Attribute(item[0], AttributeType.parse(item[1])))
            elif len(item) == 3:
                attributes.append(
                    Attribute(item[0], AttributeType.parse(item[1]), unit=item[2])
                )
            else:
                raise SchemaError(f"cannot build attribute from {item!r}")
        return cls(
            attributes=tuple(attributes),
            temporal_granularity=temporal,
            spatial_granularity=spatial,
            themes=tuple(themes),
        )

    # -- lookups ---------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(attr.name == name for attr in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"no attribute {name!r} in schema {self.names}")

    def type_of(self, name: str) -> AttributeType:
        return self.attribute(name).type

    # -- validation --------------------------------------------------------------

    def validate_payload(self, payload: dict) -> None:
        """Raise unless ``payload`` is a valid tuple body for this schema.

        Extra keys are rejected (a tuple must match its stream's schema —
        the designer relies on this to keep the schema pane truthful).
        """
        for attr in self.attributes:
            if attr.name not in payload:
                if not attr.nullable:
                    raise TypeMismatchError(
                        f"missing non-nullable attribute {attr.name!r}"
                    )
                continue
            value = payload[attr.name]
            if value is None:
                if not attr.nullable:
                    raise TypeMismatchError(f"null in non-nullable {attr.name!r}")
                continue
            if not value_fits(value, attr.type) and not (
                attr.type is AttributeType.FLOAT
                and isinstance(value, int)
                and not isinstance(value, bool)
            ):
                raise TypeMismatchError(
                    f"attribute {attr.name!r}: value {value!r} does not fit "
                    f"type {attr.type.value}"
                )
        extra = set(payload) - set(self.names)
        if extra:
            raise TypeMismatchError(
                f"payload has attributes not in the schema: {sorted(extra)}"
            )

    def accepts_payload(self, payload: dict) -> bool:
        try:
            self.validate_payload(payload)
        except TypeMismatchError:
            return False
        return True

    # -- derivation -----------------------------------------------------------

    def with_attribute(self, attr: Attribute) -> "StreamSchema":
        if attr.name in self:
            raise SchemaError(f"attribute {attr.name!r} already in schema")
        return replace(self, attributes=self.attributes + (attr,))

    def without_attribute(self, name: str) -> "StreamSchema":
        self.attribute(name)  # raises if absent
        return replace(
            self,
            attributes=tuple(a for a in self.attributes if a.name != name),
        )

    def project(self, names: "list[str] | tuple[str, ...]") -> "StreamSchema":
        kept = tuple(self.attribute(name) for name in names)
        return replace(self, attributes=kept)

    def renamed(self, mapping: dict[str, str]) -> "StreamSchema":
        new_attrs = tuple(
            attr.renamed(mapping[attr.name]) if attr.name in mapping else attr
            for attr in self.attributes
        )
        return replace(self, attributes=new_attrs)

    def prefixed(self, prefix: str) -> "StreamSchema":
        """All attributes renamed ``prefix_name`` — join disambiguation."""
        return self.renamed({name: f"{prefix}_{name}" for name in self.names})

    def coarsened(
        self,
        temporal: "str | TemporalGranularity | None" = None,
        spatial: "str | SpatialGranularity | None" = None,
    ) -> "StreamSchema":
        schema = self
        if temporal is not None:
            schema = replace(schema, temporal_granularity=temporal_granularity(temporal))
        if spatial is not None:
            schema = replace(schema, spatial_granularity=spatial_granularity(spatial))
        return schema

    def compatible_with(self, other: "StreamSchema") -> bool:
        """Structural compatibility: same names, pairwise-widening types."""
        if self.names != other.names:
            return False
        return all(
            widens_to(mine.type, theirs.type) or widens_to(theirs.type, mine.type)
            for mine, theirs in zip(self.attributes, other.attributes)
        )

    def describe(self) -> str:
        """Human-readable one-liner, as shown in the designer schema pane."""
        cols = ", ".join(
            f"{a.name}:{a.type.value}" + (f"[{a.unit}]" if a.unit else "")
            for a in self.attributes
        )
        themes = ",".join(str(t) for t in self.themes) or "-"
        return (
            f"({cols}) @ {self.temporal_granularity.name}/"
            f"{self.spatial_granularity.name} themes={themes}"
        )
