"""Attribute types and the coercion lattice.

Heterogeneous sensors disagree on representations, so the type system is
deliberately small and the widening rules explicit: ``BOOL < INT < FLOAT``
widen implicitly; everything else requires an explicit Transform.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import TypeMismatchError


class AttributeType(Enum):
    """Types an attribute of a sensor stream can take."""

    BOOL = "bool"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    TIMESTAMP = "timestamp"
    GEO = "geo"

    @classmethod
    def parse(cls, name: "str | AttributeType") -> "AttributeType":
        if isinstance(name, AttributeType):
            return name
        key = name.strip().lower()
        aliases = {
            "boolean": "bool",
            "integer": "int",
            "double": "float",
            "real": "float",
            "number": "float",
            "str": "string",
            "text": "string",
            "time": "timestamp",
            "datetime": "timestamp",
            "point": "geo",
            "location": "geo",
        }
        key = aliases.get(key, key)
        for member in cls:
            if member.value == key:
                return member
        known = ", ".join(m.value for m in cls)
        raise TypeMismatchError(f"unknown attribute type {name!r}; known: {known}")

    @property
    def is_numeric(self) -> bool:
        return self in (AttributeType.INT, AttributeType.FLOAT)

    @property
    def is_orderable(self) -> bool:
        """Whether values of this type support <, <=, >, >= comparisons."""
        return self in (
            AttributeType.INT,
            AttributeType.FLOAT,
            AttributeType.STRING,
            AttributeType.TIMESTAMP,
            AttributeType.BOOL,
        )


#: Implicit widening order: a type widens to any type at or after its own
#: position in this chain (only within the chain).
_WIDENING_CHAIN = [AttributeType.BOOL, AttributeType.INT, AttributeType.FLOAT]


def widens_to(source: AttributeType, target: AttributeType) -> bool:
    """True when ``source`` values are implicitly usable as ``target``."""
    if source is target:
        return True
    if source in _WIDENING_CHAIN and target in _WIDENING_CHAIN:
        return _WIDENING_CHAIN.index(source) <= _WIDENING_CHAIN.index(target)
    return False


def common_type(a: AttributeType, b: AttributeType) -> AttributeType:
    """Least common type of two attribute types, for comparisons and joins.

    Raises :class:`TypeMismatchError` when no implicit common type exists.
    """
    if widens_to(a, b):
        return b
    if widens_to(b, a):
        return a
    raise TypeMismatchError(f"no common type between {a.value} and {b.value}")


def value_fits(value: object, attr_type: AttributeType) -> bool:
    """True when a runtime value is a valid instance of ``attr_type``.

    ``None`` never fits — nullability is a property of the attribute, not of
    the type — and booleans do *not* fit INT/FLOAT despite being ``int``
    subclasses in Python.
    """
    if value is None:
        return False
    if attr_type is AttributeType.BOOL:
        return isinstance(value, bool)
    if attr_type is AttributeType.INT:
        return isinstance(value, int) and not isinstance(value, bool)
    if attr_type is AttributeType.FLOAT:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if attr_type is AttributeType.STRING:
        return isinstance(value, str)
    if attr_type is AttributeType.TIMESTAMP:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if attr_type is AttributeType.GEO:
        from repro.stt.spatial import Box, GridCell, Point

        return isinstance(value, (Point, Box, GridCell))
    return False  # pragma: no cover - exhaustive over the enum


def coerce_value(value: object, attr_type: AttributeType) -> object:
    """Coerce ``value`` to ``attr_type`` under the implicit widening rules.

    Raises :class:`TypeMismatchError` for values that neither fit nor widen.
    """
    if value_fits(value, attr_type):
        if attr_type is AttributeType.FLOAT and isinstance(value, int):
            return float(value)
        return value
    if attr_type is AttributeType.INT and isinstance(value, bool):
        return int(value)
    if attr_type is AttributeType.FLOAT and isinstance(value, bool):
        return float(value)
    raise TypeMismatchError(
        f"value {value!r} ({type(value).__name__}) does not fit type {attr_type.value}"
    )


def infer_type(value: object) -> AttributeType:
    """The tightest :class:`AttributeType` for a Python value."""
    if isinstance(value, bool):
        return AttributeType.BOOL
    if isinstance(value, int):
        return AttributeType.INT
    if isinstance(value, float):
        return AttributeType.FLOAT
    if isinstance(value, str):
        return AttributeType.STRING
    from repro.stt.spatial import Box, GridCell, Point

    if isinstance(value, (Point, Box, GridCell)):
        return AttributeType.GEO
    raise TypeMismatchError(f"no attribute type for value {value!r}")
