"""Schema inference primitives for the dataflow operators.

Each function computes the *output* schema of one operator kind from its
input schema(s) and parameters, raising :class:`repro.errors.SchemaError`
when the combination is inconsistent.  The dataflow validator calls these
to propagate schemas across the canvas, which is what lets the designer
show "the schema of data that are processed by the operation" at every
node and reject unsound designs before translation.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import SchemaError
from repro.schema.schema import Attribute, StreamSchema
from repro.schema.types import AttributeType
from repro.stt.granularity import (
    common_spatial,
    common_temporal,
    temporal_granularity,
)

#: Aggregation functions of Table 1 and their output types.
AGGREGATION_FUNCTIONS = ("COUNT", "AVG", "SUM", "MIN", "MAX")


def project_schema(schema: StreamSchema, names: "list[str]") -> StreamSchema:
    """Schema after projecting onto ``names`` (order given by the list)."""
    return schema.project(names)


def rename_schema(schema: StreamSchema, mapping: dict[str, str]) -> StreamSchema:
    """Schema after renaming attributes per ``mapping``."""
    for old in mapping:
        schema.attribute(old)  # raise on unknown source names
    taken = set(schema.names) - set(mapping)
    for new in mapping.values():
        if new in taken:
            raise SchemaError(f"rename target {new!r} collides with existing attribute")
        taken.add(new)
    return schema.renamed(mapping)


def with_virtual_property(
    schema: StreamSchema,
    name: str,
    attr_type: "str | AttributeType",
    unit: str = "",
) -> StreamSchema:
    """Schema after the Virtual Property operator adds attribute ``name``.

    Mirrors Table 1's ⊎ s⟨p, spec⟩: "a new attribute p is added to the
    schema of s according to the specification spec".
    """
    if name in schema:
        raise SchemaError(
            f"virtual property {name!r} collides with an existing attribute"
        )
    return schema.with_attribute(Attribute(name, AttributeType.parse(attr_type), unit))


def aggregate_schema(
    schema: StreamSchema,
    attributes: "list[str]",
    function: str,
    interval: float,
    group_by: "str | None" = None,
) -> StreamSchema:
    """Schema after @t,{a1..an} op (s).

    The output carries one aggregated column per requested attribute named
    ``<fn>_<attr>`` (plus the ``group_by`` key attribute when grouping),
    stamped at a temporal granularity coarsened to cover the aggregation
    interval.
    """
    fn = function.upper()
    if fn not in AGGREGATION_FUNCTIONS:
        raise SchemaError(
            f"unknown aggregation function {function!r}; "
            f"known: {', '.join(AGGREGATION_FUNCTIONS)}"
        )
    if interval <= 0:
        raise SchemaError(f"aggregation interval must be positive, got {interval}")
    if not attributes:
        raise SchemaError("aggregation requires at least one attribute")
    if group_by is not None and group_by in attributes:
        raise SchemaError(
            f"group_by attribute {group_by!r} cannot also be aggregated"
        )

    out_attrs: list[Attribute] = []
    if group_by is not None:
        out_attrs.append(schema.attribute(group_by))
    for name in attributes:
        attr = schema.attribute(name)
        if fn == "COUNT":
            out_attrs.append(Attribute(f"count_{name}", AttributeType.INT))
            continue
        if not attr.type.is_numeric:
            raise SchemaError(
                f"cannot {fn} non-numeric attribute {name!r} ({attr.type.value})"
            )
        out_type = AttributeType.FLOAT if fn == "AVG" else attr.type
        out_attrs.append(Attribute(f"{fn.lower()}_{name}", out_type, unit=attr.unit))

    out_gran = schema.temporal_granularity
    for candidate in ("second", "minute", "hour", "day", "week", "month", "year"):
        gran = temporal_granularity(candidate)
        if gran.seconds >= interval or candidate == "year":
            out_gran = common_temporal(schema.temporal_granularity, gran)
            break
    return replace(
        schema,
        attributes=tuple(out_attrs),
        temporal_granularity=out_gran,
    )


def join_schema(
    left: StreamSchema,
    right: StreamSchema,
    left_prefix: str = "l",
    right_prefix: str = "r",
) -> StreamSchema:
    """Schema after s1 ⋈ᵗ s2: concatenation with collision disambiguation.

    Attributes whose names collide across the two inputs are prefixed;
    non-colliding names are kept as-is.  The output's STT metadata is the
    coarsest common granularity pair and the union of themes — the
    granularity consistency constraint the paper imposes on composition.
    """
    if left_prefix == right_prefix:
        raise SchemaError("join prefixes must differ")
    collisions = set(left.names) & set(right.names)

    def _rename(schema: StreamSchema, prefix: str) -> StreamSchema:
        mapping = {name: f"{prefix}_{name}" for name in schema.names if name in collisions}
        return schema.renamed(mapping) if mapping else schema

    left_rn = _rename(left, left_prefix)
    right_rn = _rename(right, right_prefix)
    merged = left_rn.attributes + right_rn.attributes
    seen: set[str] = set()
    for attr in merged:
        if attr.name in seen:
            raise SchemaError(
                f"join output still has duplicate attribute {attr.name!r}; "
                f"choose different prefixes"
            )
        seen.add(attr.name)
    themes = left.themes + tuple(t for t in right.themes if t not in left.themes)
    return StreamSchema(
        attributes=merged,
        temporal_granularity=common_temporal(
            left.temporal_granularity, right.temporal_granularity
        ),
        spatial_granularity=common_spatial(
            left.spatial_granularity, right.spatial_granularity
        ),
        themes=themes,
    )
