"""Stream schemas.

The paper stresses that *"data schema are not fixed but depend on the
sensors"*: each published sensor exposes its own schema, and the designer
propagates schemas through every operator so the user always sees "the
schema of data that are processed by the operation".  This package defines
attribute types, stream schemas with STT metadata, and the schema-inference
primitives used by the dataflow validator.
"""

from repro.schema.types import AttributeType, coerce_value, common_type, value_fits
from repro.schema.schema import Attribute, StreamSchema
from repro.schema.infer import (
    aggregate_schema,
    join_schema,
    project_schema,
    rename_schema,
    with_virtual_property,
)

__all__ = [
    "AttributeType",
    "coerce_value",
    "common_type",
    "value_fits",
    "Attribute",
    "StreamSchema",
    "aggregate_schema",
    "join_schema",
    "project_schema",
    "rename_schema",
    "with_virtual_property",
]
