"""The Osaka scenario fleet (Section 3 of the paper).

"There are different sensors in the area of Osaka that produce data about
the temperatures and levels of rains monitored in the current year.
Moreover, tweets and traffic information from the same area in the current
year can be acquired."

:func:`osaka_fleet` builds that fleet over a given topology: temperature
and rain stations spread over the metro area, a tweet slice, traffic
detectors, and (optionally) the richer set — humidity, wind, pressure,
tide, train and flight feeds — used by the wider examples.
"""

from __future__ import annotations

from repro.network.topology import Topology
from repro.sensors.base import SimulatedSensor
from repro.sensors.physical import (
    humidity_sensor,
    pressure_sensor,
    rain_sensor,
    sea_level_sensor,
    temperature_sensor,
    wind_sensor,
)
from repro.sensors.social import (
    flight_schedule_sensor,
    traffic_sensor,
    train_schedule_sensor,
    twitter_sensor,
)
from repro.stt.spatial import Box, Point

#: Central Osaka (Umeda) and the metro bounding box.
OSAKA_CENTER = Point(34.6937, 135.5023)
OSAKA_AREA = Box(south=34.55, west=135.35, north=34.80, east=135.65)

#: Station sites spread across the metro area (name, lat, lon).
_SITES = [
    ("umeda", 34.7025, 135.4959),
    ("namba", 34.6661, 135.5000),
    ("tennoji", 34.6466, 135.5133),
    ("yodogawa", 34.7300, 135.4800),
    ("sakai", 34.5733, 135.4830),
    ("port", 34.6380, 135.4120),
]


def osaka_fleet(
    topology: Topology,
    hot: bool = True,
    extended: bool = False,
    seed: int = 7,
    replicas: int = 1,
) -> list[SimulatedSensor]:
    """Build the scenario's sensor fleet over ``topology``.

    Sensors are assigned round-robin to the topology's nodes (each node
    "manages a bunch of sensors").  ``hot=True`` biases temperatures so the
    1-hour mean crosses 25 °C during virtual afternoons — the regime in
    which the scenario's Trigger On must fire; ``hot=False`` keeps the mean
    safely below, the regime in which it must stay silent.

    ``extended=True`` adds the full physical/social roster beyond the four
    stream types the scenario itself uses.  ``replicas`` multiplies the
    core roster (ids suffixed ``-r1``, ``-r2``, ...) for scaling studies.
    """
    node_ids = topology.node_ids
    if not node_ids:
        raise ValueError("topology has no nodes to manage sensors")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    counter = {"i": 0}

    def next_node() -> str:
        node = node_ids[counter["i"] % len(node_ids)]
        counter["i"] += 1
        return node

    base_temp = 26.0 if hot else 16.0
    fleet: list[SimulatedSensor] = []

    for replica in range(replicas):
        suffix = f"-r{replica}" if replica else ""
        for name, lat, lon in _SITES[:4]:
            fleet.append(
                temperature_sensor(
                    f"osaka-temp-{name}{suffix}",
                    Point(lat, lon),
                    next_node(),
                    base_temp=base_temp,
                    seed=seed,
                )
            )
        for name, lat, lon in _SITES[:3]:
            fleet.append(
                rain_sensor(
                    f"osaka-rain-{name}{suffix}", Point(lat, lon), next_node(),
                    seed=seed,
                )
            )
        fleet.append(
            twitter_sensor(f"osaka-tweets{suffix}", OSAKA_AREA, next_node(),
                           seed=seed)
        )
        for name, lat, lon in _SITES[:2]:
            fleet.append(
                traffic_sensor(
                    f"osaka-traffic-{name}{suffix}", Point(lat, lon),
                    next_node(), seed=seed,
                )
            )

    if extended:
        for name, lat, lon in _SITES[:2]:
            fleet.append(
                humidity_sensor(
                    f"osaka-humidity-{name}", Point(lat, lon), next_node(), seed=seed
                )
            )
        fleet.append(
            wind_sensor("osaka-wind-umeda", Point(*_SITES[0][1:]), next_node(), seed=seed)
        )
        fleet.append(
            pressure_sensor(
                "osaka-pressure-umeda", Point(*_SITES[0][1:]), next_node(), seed=seed
            )
        )
        fleet.append(
            sea_level_sensor(
                "osaka-tide-port", Point(*_SITES[5][1:]), next_node(), seed=seed
            )
        )
        fleet.append(
            train_schedule_sensor(
                "osaka-trains-umeda", Point(*_SITES[0][1:]), next_node(), seed=seed
            )
        )
        fleet.append(
            flight_schedule_sensor(
                "osaka-flights-itami", Point(34.7855, 135.4382), next_node(), seed=seed
            )
        )
    return fleet
