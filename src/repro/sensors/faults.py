"""Fault-injection sensors for the P3 walkthrough and failure tests.

P3 demonstrates "how the system react when sensors ... are modified on the
fly" — which includes sensors that misbehave.  :class:`FlakySensor` drops
out and rejoins; :class:`MalformedPayloadSensor` occasionally emits tuples
that violate its advertised schema, exercising the Validate operator and
the error-quarantine path.
"""

from __future__ import annotations

import numpy as np

from repro.network.simclock import SimClock
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.sensors.base import SimulatedSensor, ValueGenerator


class FlakySensor(SimulatedSensor):
    """A sensor that alternates between live and dead phases.

    While dead it is unpublished (leaves the network entirely, as the
    paper's plug-and-play dynamics require), then republishes when it
    recovers.  Attach once; the flapping is self-scheduled.
    """

    def __init__(
        self,
        metadata: SensorMetadata,
        generator: ValueGenerator,
        up_duration: float = 600.0,
        down_duration: float = 300.0,
        seed: int = 7,
    ) -> None:
        super().__init__(metadata, generator, seed=seed)
        if up_duration <= 0 or down_duration <= 0:
            raise ValueError("up/down durations must be positive")
        self.up_duration = up_duration
        self.down_duration = down_duration
        self.outages = 0
        self._flap_network: "BrokerNetwork | None" = None
        self._flap_clock: "SimClock | None" = None
        self._stopped = False

    def attach(self, network: BrokerNetwork, clock: SimClock) -> None:
        super().attach(network, clock)
        self._flap_network = network
        self._flap_clock = clock
        self._stopped = False
        clock.schedule(self.up_duration, self._go_down)

    def stop_flapping(self) -> None:
        """Freeze the flap cycle (leaves the sensor in its current state)."""
        self._stopped = True

    def _go_down(self) -> None:
        if self._stopped or not self.attached:
            return
        assert self._flap_clock is not None
        self.outages += 1
        self.detach()
        self._flap_clock.schedule(self.down_duration, self._go_up)

    def _go_up(self) -> None:
        if self._stopped:
            return
        assert self._flap_network is not None and self._flap_clock is not None
        super().attach(self._flap_network, self._flap_clock)
        self._flap_clock.schedule(self.up_duration, self._go_down)


class MalformedPayloadSensor(SimulatedSensor):
    """Wraps a generator so a fraction of readings violate the schema.

    Corruptions: a numeric attribute becomes a string, or a required
    attribute disappears.  Downstream, a Validate operator (or the schema
    check in a warehouse loader) must quarantine these without stalling the
    stream.
    """

    def __init__(
        self,
        metadata: SensorMetadata,
        generator: ValueGenerator,
        corruption_rate: float = 0.1,
        seed: int = 7,
    ) -> None:
        if not (0.0 <= corruption_rate <= 1.0):
            raise ValueError(f"corruption_rate must be in [0,1]: {corruption_rate}")
        self.corruption_rate = corruption_rate
        self.corrupted = 0
        inner_rng = np.random.default_rng(seed ^ 0xBEEF)

        def corrupting(now: float, rng: np.random.Generator) -> "dict | None":
            payload = generator(now, rng)
            if payload is None:
                return None
            if inner_rng.random() >= self.corruption_rate:
                return payload
            self.corrupted += 1
            corrupted = dict(payload)
            names = list(corrupted)
            victim = names[int(inner_rng.integers(0, len(names)))]
            if inner_rng.random() < 0.5:
                # Wrong-typed value: strings become ints and vice versa,
                # so the result always violates the advertised schema.
                if isinstance(corrupted[victim], str):
                    corrupted[victim] = 0xBAD
                else:
                    corrupted[victim] = "CORRUPT"
            else:
                del corrupted[victim]
            return corrupted

        super().__init__(metadata, corrupting, seed=seed)
