"""Physical sensor models.

The motivation section enumerates them: "temperature, humidity, wind, rain,
pressure, level of sea water".  Each factory builds a
:class:`SimulatedSensor` whose generator produces a physically plausible
signal — diurnal cycles for temperature, temperature-anticorrelated
humidity, two-state (wet/dry) bursty rain, tidal sea level, slow pressure
walks — because the benchmarks need realistic *shape*: trigger conditions
must actually cross their thresholds at the right times of day.
"""

from __future__ import annotations

import math

import numpy as np

from repro.pubsub.registry import SensorMetadata
from repro.schema.schema import StreamSchema
from repro.sensors.base import SimulatedSensor
from repro.stt.spatial import Point

_DAY = 86400.0


def _diurnal(now: float, base: float, amplitude: float) -> float:
    """Sinusoid peaking at 14:00 virtual time, troughing at 02:00."""
    phase = 2.0 * math.pi * ((now % _DAY) / _DAY - 14.0 / 24.0)
    return base + amplitude * math.cos(phase)


def temperature_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 60.0,
    base_temp: float = 22.0,
    amplitude: float = 6.0,
    noise: float = 0.4,
    seed: int = 7,
) -> SimulatedSensor:
    """Air temperature in °C with a diurnal cycle.

    Defaults cross the paper's 25 °C trigger threshold during virtual
    afternoons (base 22 ± 6), which is what the Osaka scenario needs.
    """
    schema = StreamSchema.build(
        [("temperature", "float", "celsius"), ("station", "string")],
        temporal="second",
        spatial="point",
        themes=("weather/temperature",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type="temperature",
        schema=schema,
        frequency=frequency,
        location=location,
        node_id=node_id,
        description=f"air temperature station at ({location.lat}, {location.lon})",
    )

    def generate(now: float, rng: np.random.Generator) -> dict:
        value = _diurnal(now, base_temp, amplitude) + rng.normal(0.0, noise)
        return {"temperature": round(float(value), 2), "station": sensor_id}

    return SimulatedSensor(metadata, generate, seed=seed)


def humidity_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 60.0,
    base_humidity: float = 0.65,
    amplitude: float = 0.15,
    noise: float = 0.03,
    seed: int = 7,
) -> SimulatedSensor:
    """Relative humidity (fraction), anticorrelated with the diurnal cycle."""
    schema = StreamSchema.build(
        [("humidity", "float", "fraction"), ("station", "string")],
        temporal="second",
        spatial="point",
        themes=("weather/humidity",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type="humidity",
        schema=schema,
        frequency=frequency,
        location=location,
        node_id=node_id,
        description="relative humidity probe",
    )

    def generate(now: float, rng: np.random.Generator) -> dict:
        # Humid at night, drier at mid-afternoon.
        value = base_humidity - (_diurnal(now, 0.0, amplitude)) + rng.normal(0.0, noise)
        return {
            "humidity": round(float(min(1.0, max(0.0, value))), 3),
            "station": sensor_id,
        }

    return SimulatedSensor(metadata, generate, seed=seed)


def rain_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 120.0,
    wet_probability: float = 0.08,
    stay_wet: float = 0.85,
    heavy_rate_mmh: float = 25.0,
    seed: int = 7,
) -> SimulatedSensor:
    """Rain gauge (mm/h) with bursty two-state (dry/wet) behaviour.

    The wet state persists (``stay_wet``), producing the multi-reading
    torrential episodes the scenario's "torrential rain" stream needs.
    """
    schema = StreamSchema.build(
        [("rain_rate", "float", "mmh"), ("station", "string")],
        temporal="second",
        spatial="point",
        themes=("weather/rain",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type="rain",
        schema=schema,
        frequency=frequency,
        location=location,
        node_id=node_id,
        description="tipping-bucket rain gauge",
    )
    state = {"wet": False}

    def generate(now: float, rng: np.random.Generator) -> dict:
        if state["wet"]:
            state["wet"] = rng.random() < stay_wet
        else:
            state["wet"] = rng.random() < wet_probability
        if not state["wet"]:
            rate = 0.0
        else:
            # Gamma-distributed intensity; occasionally torrential.
            rate = float(rng.gamma(shape=2.0, scale=heavy_rate_mmh / 2.0))
        return {"rain_rate": round(rate, 2), "station": sensor_id}

    return SimulatedSensor(metadata, generate, seed=seed)


def wind_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 60.0,
    base_speed: float = 3.0,
    gust_probability: float = 0.05,
    seed: int = 7,
) -> SimulatedSensor:
    """Wind speed (m/s) and direction (degrees), with occasional gusts."""
    schema = StreamSchema.build(
        [
            ("wind_speed", "float", "mps"),
            ("wind_direction", "float"),
            ("station", "string"),
        ],
        temporal="second",
        spatial="point",
        themes=("weather/wind",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type="wind",
        schema=schema,
        frequency=frequency,
        location=location,
        node_id=node_id,
        description="anemometer",
    )
    state = {"direction": 225.0}

    def generate(now: float, rng: np.random.Generator) -> dict:
        state["direction"] = (state["direction"] + rng.normal(0.0, 10.0)) % 360.0
        speed = max(0.0, rng.normal(base_speed, 1.0))
        if rng.random() < gust_probability:
            speed += float(rng.gamma(2.0, 4.0))
        return {
            "wind_speed": round(float(speed), 2),
            "wind_direction": round(state["direction"], 1),
            "station": sensor_id,
        }

    return SimulatedSensor(metadata, generate, seed=seed)


def pressure_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 300.0,
    base_pressure: float = 1013.25,
    seed: int = 7,
) -> SimulatedSensor:
    """Barometric pressure (hPa) following a slow bounded random walk."""
    schema = StreamSchema.build(
        [("pressure", "float", "hectopascal"), ("station", "string")],
        temporal="second",
        spatial="point",
        themes=("weather/pressure",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type="pressure",
        schema=schema,
        frequency=frequency,
        location=location,
        node_id=node_id,
        description="barometer",
    )
    state = {"value": base_pressure}

    def generate(now: float, rng: np.random.Generator) -> dict:
        state["value"] += rng.normal(0.0, 0.3)
        # Mean-revert to keep the walk inside meteorological bounds.
        state["value"] += 0.01 * (base_pressure - state["value"])
        return {"pressure": round(state["value"], 2), "station": sensor_id}

    return SimulatedSensor(metadata, generate, seed=seed)


def sea_level_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 300.0,
    mean_level_m: float = 1.2,
    tidal_amplitude_m: float = 0.8,
    seed: int = 7,
) -> SimulatedSensor:
    """Sea water level (m) with the M2 semidiurnal tide (12.42 h period)."""
    schema = StreamSchema.build(
        [("water_level", "float", "meter"), ("station", "string")],
        temporal="second",
        spatial="point",
        themes=("sea/water-level",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type="sea-level",
        schema=schema,
        frequency=frequency,
        location=location,
        node_id=node_id,
        description="tide gauge",
    )
    tide_period = 12.42 * 3600.0

    def generate(now: float, rng: np.random.Generator) -> dict:
        tide = tidal_amplitude_m * math.sin(2.0 * math.pi * now / tide_period)
        level = mean_level_m + tide + rng.normal(0.0, 0.03)
        return {"water_level": round(float(level), 3), "station": sensor_id}

    return SimulatedSensor(metadata, generate, seed=seed)
