"""Synthetic sensor fleet.

Substitutes the live Osaka feeds of the paper's demo with seeded,
deterministic generators: physical sensors (temperature, humidity, rain,
wind, pressure, sea water level) with realistic diurnal/tidal/burst
structure, and social sensors (tweets, traffic, train and flight
schedules).  Each simulated sensor publishes itself through the pub-sub
layer and emits stamped tuples on the shared virtual clock at its
advertised frequency.
"""

from repro.sensors.base import BatchingPolicy, SimulatedSensor, ValueGenerator
from repro.sensors.physical import (
    temperature_sensor,
    humidity_sensor,
    rain_sensor,
    wind_sensor,
    pressure_sensor,
    sea_level_sensor,
)
from repro.sensors.social import (
    twitter_sensor,
    traffic_sensor,
    train_schedule_sensor,
    flight_schedule_sensor,
)
from repro.sensors.osaka import osaka_fleet, OSAKA_AREA, OSAKA_CENTER
from repro.sensors.faults import FlakySensor, MalformedPayloadSensor

__all__ = [
    "BatchingPolicy",
    "SimulatedSensor",
    "ValueGenerator",
    "temperature_sensor",
    "humidity_sensor",
    "rain_sensor",
    "wind_sensor",
    "pressure_sensor",
    "sea_level_sensor",
    "twitter_sensor",
    "traffic_sensor",
    "train_schedule_sensor",
    "flight_schedule_sensor",
    "osaka_fleet",
    "OSAKA_AREA",
    "OSAKA_CENTER",
    "FlakySensor",
    "MalformedPayloadSensor",
]
