"""Social sensor models.

The paper's motivation: "social sensors able to collect data from people
(like, twitter data, traffic information, train or flight schedule)".
Social feeds are event-like and text-bearing: tweets carry hashtag pools
biased by the (virtual) weather, traffic reports follow rush-hour cycles,
and schedule feeds emit per-service delay updates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.pubsub.registry import SensorMetadata
from repro.schema.schema import StreamSchema
from repro.sensors.base import SimulatedSensor
from repro.stt.spatial import Box, Point, SpatialObject

_DAY = 86400.0

_TWEET_TOPICS = {
    "weather": ["so hot today", "heavy rain again", "lovely weather", "typhoon coming?"],
    "traffic": ["stuck on the hanshin expressway", "accident near umeda", "roads clear"],
    "events": ["match day at the dome", "festival in namba", "fireworks tonight"],
}
_HASHTAGS = {
    "weather": ["#osaka", "#weather", "#rain", "#heat"],
    "traffic": ["#osaka", "#traffic", "#commute"],
    "events": ["#osaka", "#event", "#matsuri"],
}


def twitter_sensor(
    sensor_id: str,
    area: "Box | SpatialObject",
    node_id: str,
    frequency: float = 0.5,
    burst_hour: int = 18,
    seed: int = 7,
) -> SimulatedSensor:
    """Geo-tagged tweet stream over an area, rate-modulated by time of day.

    Emission probability peaks around ``burst_hour``; quiet hours skip
    readings, so the advertised frequency is the *maximum* rate — matching
    how social feeds actually behave against their advertised caps.
    """
    schema = StreamSchema.build(
        [
            ("user", "string"),
            ("text", "string"),
            ("hashtags", "string"),
            ("retweets", "int"),
        ],
        temporal="second",
        spatial="district",
        themes=("social/twitter",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type="twitter",
        schema=schema,
        frequency=frequency,
        location=area,
        node_id=node_id,
        physical=False,
        description="geo-tagged tweet firehose slice",
    )

    def generate(now: float, rng: np.random.Generator) -> "dict | None":
        hour = (now % _DAY) / 3600.0
        activity = 0.35 + 0.65 * math.exp(-(((hour - burst_hour) % 24.0) ** 2) / 18.0)
        if rng.random() > activity:
            return None
        topic = rng.choice(list(_TWEET_TOPICS))
        text = str(rng.choice(_TWEET_TOPICS[topic]))
        tags = " ".join(
            rng.choice(_HASHTAGS[topic], size=min(2, len(_HASHTAGS[topic])), replace=False)
        )
        return {
            "user": f"user{int(rng.integers(1, 5000))}",
            "text": text,
            "hashtags": tags,
            "retweets": int(rng.poisson(2)),
        }

    return SimulatedSensor(metadata, generate, seed=seed)


def traffic_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 120.0,
    road: str = "hanshin-expressway",
    capacity_vph: float = 3600.0,
    seed: int = 7,
) -> SimulatedSensor:
    """Road segment telemetry: vehicle flow, mean speed, congestion level.

    Flow follows the double-peaked commuter curve (08:00 and 18:00); speed
    drops as flow approaches capacity.
    """
    schema = StreamSchema.build(
        [
            ("road", "string"),
            ("vehicles_per_hour", "float"),
            ("mean_speed", "float", "kmh"),
            ("congestion", "float", "fraction"),
        ],
        temporal="second",
        spatial="district",
        themes=("mobility/traffic",),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type="traffic",
        schema=schema,
        frequency=frequency,
        location=location,
        node_id=node_id,
        physical=False,
        description=f"loop detector on {road}",
    )

    def generate(now: float, rng: np.random.Generator) -> dict:
        hour = (now % _DAY) / 3600.0
        morning = math.exp(-((hour - 8.0) ** 2) / 3.0)
        evening = math.exp(-((hour - 18.0) ** 2) / 4.0)
        demand = 0.15 + 0.85 * max(morning, evening)
        flow = capacity_vph * demand * float(rng.uniform(0.9, 1.1))
        congestion = min(1.0, flow / capacity_vph)
        speed = 90.0 * (1.0 - 0.75 * congestion**2) + float(rng.normal(0.0, 3.0))
        return {
            "road": road,
            "vehicles_per_hour": round(flow, 1),
            "mean_speed": round(max(5.0, speed), 1),
            "congestion": round(congestion, 3),
        }

    return SimulatedSensor(metadata, generate, seed=seed)


def _schedule_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float,
    sensor_type: str,
    theme: str,
    services: list[str],
    headway_s: float,
    delay_scale_min: float,
    seed: int,
) -> SimulatedSensor:
    schema = StreamSchema.build(
        [
            ("service", "string"),
            ("scheduled_time", "float"),
            ("delay_minutes", "float", "minute"),
            ("cancelled", "bool"),
        ],
        temporal="minute",
        spatial="city",
        themes=(theme,),
    )
    metadata = SensorMetadata(
        sensor_id=sensor_id,
        sensor_type=sensor_type,
        schema=schema,
        frequency=frequency,
        location=location,
        node_id=node_id,
        physical=False,
        description=f"{sensor_type} status feed",
    )

    def generate(now: float, rng: np.random.Generator) -> "dict | None":
        # A status update exists only when a service departs near this tick.
        if rng.random() > min(1.0, (1.0 / frequency) / headway_s):
            return None
        service = str(rng.choice(services))
        delay = max(0.0, float(rng.exponential(delay_scale_min)) - delay_scale_min / 2)
        return {
            "service": service,
            "scheduled_time": float(int(now // 60) * 60),
            "delay_minutes": round(delay, 1),
            "cancelled": bool(rng.random() < 0.01),
        }

    return SimulatedSensor(metadata, generate, seed=seed)


def train_schedule_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 60.0,
    seed: int = 7,
) -> SimulatedSensor:
    """Train departure/delay feed for a station."""
    lines = ["loop-line", "midosuji", "hankyu-kobe", "jr-kyoto", "nankai-airport"]
    return _schedule_sensor(
        sensor_id,
        location,
        node_id,
        frequency,
        sensor_type="train-schedule",
        theme="mobility/train-schedule",
        services=lines,
        headway_s=180.0,
        delay_scale_min=3.0,
        seed=seed,
    )


def flight_schedule_sensor(
    sensor_id: str,
    location: Point,
    node_id: str,
    frequency: float = 1.0 / 300.0,
    seed: int = 7,
) -> SimulatedSensor:
    """Flight departure/delay feed for an airport."""
    flights = ["NH31", "JL207", "MM107", "NH975", "JL2081", "GK351"]
    return _schedule_sensor(
        sensor_id,
        location,
        node_id,
        frequency,
        sensor_type="flight-schedule",
        theme="mobility/flight-schedule",
        services=flights,
        headway_s=600.0,
        delay_scale_min=12.0,
        seed=seed,
    )
