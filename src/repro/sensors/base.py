"""Simulated sensors: clock-driven emission through the pub-sub layer.

A :class:`SimulatedSensor` pairs a :class:`SensorMetadata` advertisement
with a deterministic value generator.  Attaching it to a broker network
publishes the advertisement and schedules periodic emissions at the
advertised frequency; each emission is stamp-backfilled and routed to
subscribers.  Sensors are seeded individually (id-derived), so fleets are
reproducible regardless of attachment order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.errors import PubSubError
from repro.network.simclock import ScheduledEvent, SimClock
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.stamping import backfill_stamp


@dataclass(frozen=True)
class BatchingPolicy:
    """Adaptive micro-batch flushing for a source.

    Readings buffer at the sensor and flush as one
    :meth:`~repro.pubsub.broker.BrokerNetwork.publish_batch` when either
    ``max_batch`` tuples have accumulated or ``max_delay`` virtual seconds
    have passed since the first buffered reading — whichever comes first.
    ``max_batch=1`` disables buffering entirely: every reading goes
    straight through ``publish_data``, byte-for-byte today's behaviour.
    """

    max_batch: int = 1
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise PubSubError(f"max_batch must be >= 1: {self.max_batch}")
        if self.max_batch > 1 and self.max_delay <= 0:
            raise PubSubError(
                f"max_delay must be positive when batching: {self.max_delay}"
            )


class ValueGenerator(Protocol):
    """Produces one payload given the virtual time and the sensor's RNG.

    May return ``None`` to skip an emission (event-style sensors such as
    schedule feeds emit only when something happens).
    """

    def __call__(self, now: float, rng: np.random.Generator) -> "dict | None": ...


def _seed_for(sensor_id: str, base_seed: int) -> int:
    digest = hashlib.sha256(f"{base_seed}:{sensor_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SimulatedSensor:
    """A sensor that lives on the virtual clock.

    >>> sensor = SimulatedSensor(metadata, generator)   # doctest: +SKIP
    >>> sensor.attach(broker_network, clock)            # doctest: +SKIP
    """

    def __init__(
        self,
        metadata: SensorMetadata,
        generator: ValueGenerator,
        seed: int = 7,
        batching: "BatchingPolicy | None" = None,
    ) -> None:
        self.metadata = metadata
        self.generator = generator
        self.seed = seed
        self.rng = np.random.default_rng(_seed_for(metadata.sensor_id, seed))
        self.emitted = 0
        self.skipped = 0
        self.batches_flushed = 0
        self.batching = batching if batching is not None else BatchingPolicy()
        self._buffer: list = []
        self._flush_event: "ScheduledEvent | None" = None
        self._cancel: "Callable[[], None] | None" = None
        self._network: "BrokerNetwork | None" = None
        self._clock: "SimClock | None" = None

    @property
    def sensor_id(self) -> str:
        return self.metadata.sensor_id

    @property
    def attached(self) -> bool:
        return self._cancel is not None

    def attach(self, network: BrokerNetwork, clock: SimClock) -> None:
        """Publish the sensor and start emitting on the clock."""
        if self.attached:
            raise PubSubError(f"sensor {self.sensor_id!r} is already attached")
        network.publish(self.metadata)
        self._network = network
        self._clock = clock
        self._cancel = clock.schedule_periodic(
            self.metadata.period, lambda: self._emit(clock.now)
        )

    def detach(self) -> None:
        """Stop emitting and unpublish (a sensor leaving the network).

        Buffered readings are flushed first — detaching never loses data
        that was already generated.
        """
        if not self.attached:
            raise PubSubError(f"sensor {self.sensor_id!r} is not attached")
        assert self._cancel is not None and self._network is not None
        self.flush()
        self._cancel()
        self._network.unpublish(self.sensor_id)
        self._cancel = None
        self._network = None
        self._clock = None

    def set_batching(self, batching: "BatchingPolicy | None") -> None:
        """Change the flush policy; any buffered readings flush first."""
        self.flush()
        self.batching = batching if batching is not None else BatchingPolicy()

    def _emit(self, now: float) -> None:
        assert self._network is not None
        payload = self.generator(now, self.rng)
        if payload is None:
            self.skipped += 1
            return
        tuple_ = backfill_stamp(
            payload=payload,
            metadata=self.metadata,
            now=now,
            seq=self.emitted,
        )
        self.emitted += 1
        max_batch = self.batching.max_batch
        if max_batch <= 1:
            self._network.publish_data(self.sensor_id, tuple_)
            return
        # Adaptive flusher: hold the reading back until the batch fills or
        # the delay budget for its first buffered sibling expires.
        self._buffer.append(tuple_)
        if len(self._buffer) >= max_batch:
            self.flush()
        elif len(self._buffer) == 1:
            assert self._clock is not None
            self._flush_event = self._clock.schedule(
                self.batching.max_delay, self.flush
            )

    def flush(self) -> int:
        """Publish any buffered readings now; returns tuples flushed."""
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        if not self._buffer:
            return 0
        batch = self._buffer
        self._buffer = []
        self.batches_flushed += 1
        assert self._network is not None
        self._network.publish_batch(self.sensor_id, batch)
        return len(batch)

    def probe(self, now: float) -> "dict | None":
        """Generate a payload without emitting (designer sample preview).

        Uses a disposable RNG so probing never perturbs the live stream.
        """
        rng = np.random.default_rng(_seed_for(self.sensor_id, self.seed) ^ 0xA5)
        return self.generator(now, rng)
