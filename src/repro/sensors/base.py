"""Simulated sensors: clock-driven emission through the pub-sub layer.

A :class:`SimulatedSensor` pairs a :class:`SensorMetadata` advertisement
with a deterministic value generator.  Attaching it to a broker network
publishes the advertisement and schedules periodic emissions at the
advertised frequency; each emission is stamp-backfilled and routed to
subscribers.  Sensors are seeded individually (id-derived), so fleets are
reproducible regardless of attachment order.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol

import numpy as np

from repro.errors import PubSubError
from repro.network.simclock import SimClock
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.stamping import backfill_stamp


class ValueGenerator(Protocol):
    """Produces one payload given the virtual time and the sensor's RNG.

    May return ``None`` to skip an emission (event-style sensors such as
    schedule feeds emit only when something happens).
    """

    def __call__(self, now: float, rng: np.random.Generator) -> "dict | None": ...


def _seed_for(sensor_id: str, base_seed: int) -> int:
    digest = hashlib.sha256(f"{base_seed}:{sensor_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SimulatedSensor:
    """A sensor that lives on the virtual clock.

    >>> sensor = SimulatedSensor(metadata, generator)   # doctest: +SKIP
    >>> sensor.attach(broker_network, clock)            # doctest: +SKIP
    """

    def __init__(
        self,
        metadata: SensorMetadata,
        generator: ValueGenerator,
        seed: int = 7,
    ) -> None:
        self.metadata = metadata
        self.generator = generator
        self.seed = seed
        self.rng = np.random.default_rng(_seed_for(metadata.sensor_id, seed))
        self.emitted = 0
        self.skipped = 0
        self._cancel: "Callable[[], None] | None" = None
        self._network: "BrokerNetwork | None" = None

    @property
    def sensor_id(self) -> str:
        return self.metadata.sensor_id

    @property
    def attached(self) -> bool:
        return self._cancel is not None

    def attach(self, network: BrokerNetwork, clock: SimClock) -> None:
        """Publish the sensor and start emitting on the clock."""
        if self.attached:
            raise PubSubError(f"sensor {self.sensor_id!r} is already attached")
        network.publish(self.metadata)
        self._network = network
        self._cancel = clock.schedule_periodic(
            self.metadata.period, lambda: self._emit(clock.now)
        )

    def detach(self) -> None:
        """Stop emitting and unpublish (a sensor leaving the network)."""
        if not self.attached:
            raise PubSubError(f"sensor {self.sensor_id!r} is not attached")
        assert self._cancel is not None and self._network is not None
        self._cancel()
        self._network.unpublish(self.sensor_id)
        self._cancel = None
        self._network = None

    def _emit(self, now: float) -> None:
        assert self._network is not None
        payload = self.generator(now, self.rng)
        if payload is None:
            self.skipped += 1
            return
        tuple_ = backfill_stamp(
            payload=payload,
            metadata=self.metadata,
            now=now,
            seq=self.emitted,
        )
        self.emitted += 1
        self._network.publish_data(self.sensor_id, tuple_)

    def probe(self, now: float) -> "dict | None":
        """Generate a payload without emitting (designer sample preview).

        Uses a disposable RNG so probing never perturbs the live stream.
        """
        rng = np.random.default_rng(_seed_for(self.sensor_id, self.seed) ^ 0xA5)
        return self.generator(now, rng)
