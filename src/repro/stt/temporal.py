"""Temporal values of the STT model: instants, intervals, granules.

All times in the library are numeric **virtual-time seconds** relative to an
arbitrary epoch (the start of a simulation).  Using plain floats keeps the
discrete-event simulator and the stream operators fast, while calendar
granularities (day/week/month/year) are handled by explicit alignment
arithmetic on top of a configurable epoch calendar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GranularityError
from repro.stt.granularity import TemporalGranularity, temporal_granularity

#: Days per month used by the nominal calendar (non-leap year starting March
#: is irrelevant here: the simulation epoch is taken as Jan 1, 00:00).
_MONTH_DAYS = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]
_SECONDS_PER_DAY = 86400.0
_SECONDS_PER_YEAR = 365 * _SECONDS_PER_DAY

_MONTH_STARTS = []
_acc = 0.0
for _d in _MONTH_DAYS:
    _MONTH_STARTS.append(_acc)
    _acc += _d * _SECONDS_PER_DAY


@dataclass(frozen=True)
class Instant:
    """A point on the virtual time line, stamped with a granularity.

    ``seconds`` is the offset from the simulation epoch.  The granularity
    records the precision the producing sensor reported: an instant at
    granularity ``hour`` is understood as "somewhere within that hour".
    """

    seconds: float
    granularity: TemporalGranularity

    def __post_init__(self) -> None:
        object.__setattr__(self, "granularity", temporal_granularity(self.granularity))

    def aligned(self) -> float:
        """Start of the granule containing this instant."""
        return align_instant(self.seconds, self.granularity)

    def granule(self) -> "Granule":
        """The granule (index + bounds) containing this instant."""
        start = self.aligned()
        end = _granule_end(start, self.granularity)
        return Granule(self.granularity, start, end)

    def coarsened(self, to: "str | TemporalGranularity") -> "Instant":
        """This instant re-stamped at a coarser granularity."""
        target = temporal_granularity(to)
        if target.rank < self.granularity.rank:
            raise GranularityError(
                f"cannot coarsen {self.granularity.name} instant to finer "
                f"granularity {target.name}"
            )
        return Instant(align_instant(self.seconds, target), target)

    def same_granule(self, other: "Instant") -> bool:
        """True when both instants fall in the same granule of the coarser
        of the two granularities."""
        coarser = max(self.granularity, other.granularity, key=lambda g: g.rank)
        return align_instant(self.seconds, coarser) == align_instant(
            other.seconds, coarser
        )


@dataclass(frozen=True)
class Interval:
    """A half-open interval ``[start, end)`` on the virtual time line."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise GranularityError(
                f"interval end ({self.end}) precedes start ({self.start})"
            )

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains(self, t: "float | Instant") -> bool:
        seconds = t.seconds if isinstance(t, Instant) else t
        return self.start <= seconds < self.end

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo >= hi:
            return None
        return Interval(lo, hi)


@dataclass(frozen=True)
class Granule:
    """One cell of a temporal granularity: its level and its bounds."""

    granularity: TemporalGranularity
    start: float
    end: float

    def as_interval(self) -> Interval:
        return Interval(self.start, self.end)

    def contains(self, t: "float | Instant") -> bool:
        seconds = t.seconds if isinstance(t, Instant) else t
        return self.start <= seconds < self.end


def _year_and_offset(seconds: float) -> tuple[int, float]:
    year = int(seconds // _SECONDS_PER_YEAR)
    return year, seconds - year * _SECONDS_PER_YEAR


def _month_start(seconds: float) -> float:
    year, offset = _year_and_offset(seconds)
    base = year * _SECONDS_PER_YEAR
    # Find the last month whose start is <= offset.
    start = _MONTH_STARTS[0]
    for month_start in _MONTH_STARTS:
        if month_start <= offset:
            start = month_start
        else:
            break
    return base + start


def align_instant(seconds: float, granularity: "str | TemporalGranularity") -> float:
    """Align ``seconds`` to the start of its granule at ``granularity``.

    Regular granularities floor to a multiple of the granule length;
    ``month`` and ``year`` follow the nominal (non-leap) calendar anchored
    at the epoch.
    """
    gran = temporal_granularity(granularity)
    if gran.name == "month":
        return _month_start(seconds)
    if gran.name == "year":
        year, _ = _year_and_offset(seconds)
        return year * _SECONDS_PER_YEAR
    size = gran.seconds
    return (seconds // size) * size


def _granule_end(start: float, gran: TemporalGranularity) -> float:
    if gran.name == "month":
        year, offset = _year_and_offset(start)
        base = year * _SECONDS_PER_YEAR
        for index, month_start in enumerate(_MONTH_STARTS):
            if base + month_start == start:
                if index + 1 < len(_MONTH_STARTS):
                    return base + _MONTH_STARTS[index + 1]
                return base + _SECONDS_PER_YEAR
        # Not a month boundary (shouldn't happen for aligned starts).
        return start + gran.seconds
    if gran.name == "year":
        return start + _SECONDS_PER_YEAR
    return start + gran.seconds


def granule_index(seconds: float, granularity: "str | TemporalGranularity") -> int:
    """Dense integer index of the granule containing ``seconds``.

    Two instants share a granule iff their indices are equal; useful as a
    grouping key in windowed operators.
    """
    gran = temporal_granularity(granularity)
    if gran.name == "month":
        year, offset = _year_and_offset(seconds)
        month = 0
        for index, month_start in enumerate(_MONTH_STARTS):
            if month_start <= offset:
                month = index
        return year * 12 + month
    if gran.name == "year":
        year, _ = _year_and_offset(seconds)
        return year
    return int(seconds // gran.seconds)
