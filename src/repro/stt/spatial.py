"""Spatial values of the STT model: points, boxes, grid cells.

Coordinates are WGS84 latitude/longitude degrees unless stated otherwise.
Spatial granularities partition space into square grid cells whose edge
length (in meters) is defined by :mod:`repro.stt.granularity`; a reading at
granularity ``city`` is associated with the city-sized cell containing it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CoordinateError, GranularityError
from repro.stt.granularity import SpatialGranularity, spatial_granularity

#: Meters per degree of latitude (spherical approximation).
METERS_PER_DEG_LAT = 111_320.0


def _validate_lat_lon(lat: float, lon: float) -> None:
    if not (-90.0 <= lat <= 90.0):
        raise CoordinateError(f"latitude {lat} out of range [-90, 90]")
    if not (-180.0 <= lon <= 180.0):
        raise CoordinateError(f"longitude {lon} out of range [-180, 180]")


@dataclass(frozen=True)
class Point:
    """A WGS84 point (latitude, longitude in degrees)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        _validate_lat_lon(self.lat, self.lon)

    def distance_m(self, other: "Point") -> float:
        """Great-circle distance to ``other`` in meters."""
        from repro.stt.geo import haversine_m

        return haversine_m(self.lat, self.lon, other.lat, other.lon)


@dataclass(frozen=True)
class Box:
    """An axis-aligned lat/lon rectangle ``[south, north] x [west, east]``.

    This is the "area delimited by coord1, coord2" of the paper's Cull Space
    operator: two corner coordinates define the box.
    """

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        _validate_lat_lon(self.south, self.west)
        _validate_lat_lon(self.north, self.east)
        if self.south > self.north:
            raise CoordinateError(
                f"box south ({self.south}) exceeds north ({self.north})"
            )
        if self.west > self.east:
            raise CoordinateError(f"box west ({self.west}) exceeds east ({self.east})")

    @classmethod
    def from_corners(cls, corner1: Point, corner2: Point) -> "Box":
        """Build a box from two arbitrary opposite corners."""
        return cls(
            south=min(corner1.lat, corner2.lat),
            west=min(corner1.lon, corner2.lon),
            north=max(corner1.lat, corner2.lat),
            east=max(corner1.lon, corner2.lon),
        )

    def contains(self, point: Point) -> bool:
        return (
            self.south <= point.lat <= self.north
            and self.west <= point.lon <= self.east
        )

    def center(self) -> Point:
        return Point((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    def intersects(self, other: "Box") -> bool:
        return (
            self.south <= other.north
            and other.south <= self.north
            and self.west <= other.east
            and other.west <= self.east
        )


@dataclass(frozen=True)
class GridCell:
    """One cell of a spatial granularity grid.

    Cells are indexed by integer (row, col) within the granularity's global
    grid anchored at (lat=-90, lon=-180).  A cell knows its bounding box, so
    it doubles as a spatial object for coarse-granularity readings.
    """

    granularity: SpatialGranularity
    row: int
    col: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "granularity", spatial_granularity(self.granularity))
        if self.granularity.cell_meters <= 0:
            raise GranularityError(
                "grid cells are undefined at the 'point' granularity"
            )

    @property
    def _deg_lat(self) -> float:
        return self.granularity.cell_meters / METERS_PER_DEG_LAT

    def bounds(self) -> Box:
        """Bounding box of this cell (clamped to valid lat/lon).

        Boundaries are computed from the global grid lines (``-90 + k*d``)
        so adjacent cells share them exactly — no floating-point cracks.
        """
        d = self._deg_lat
        south = max(-90.0, -90.0 + self.row * d)
        west = max(-180.0, -180.0 + self.col * d)
        north = min(90.0, -90.0 + (self.row + 1) * d)
        east = min(180.0, -180.0 + (self.col + 1) * d)
        return Box(south=south, west=west, north=north, east=east)

    def center(self) -> Point:
        return self.bounds().center()


#: A spatial object is any of the shapes a sensor reading can carry.
SpatialObject = Point | Box | GridCell


def grid_cell_for(point: Point, granularity: "str | SpatialGranularity") -> GridCell:
    """The granularity grid cell containing ``point``.

    The grid uses equal *degree* spacing derived from the granularity's
    nominal cell edge at the equator — a deliberate simplification (the STT
    papers use administrative regions, which we approximate with a uniform
    grid; the library only needs *consistent* cell assignment, and a uniform
    grid gives identical cells for identical inputs).
    """
    gran = spatial_granularity(granularity)
    if gran.cell_meters <= 0:
        raise GranularityError("cannot snap to grid at the 'point' granularity")
    d = gran.cell_meters / METERS_PER_DEG_LAT
    row = int((point.lat + 90.0) // d)
    col = int((point.lon + 180.0) // d)
    cell = GridCell(gran, row, col)
    # Floating-point boundary cases: nudge so the cell always contains the
    # point (bounds are computed with slightly different arithmetic).
    bounds = cell.bounds()
    if point.lat < bounds.south:
        cell = GridCell(gran, row - 1, col)
    elif point.lat > bounds.north:
        cell = GridCell(gran, row + 1, col)
    bounds = cell.bounds()
    if point.lon < bounds.west:
        cell = GridCell(gran, cell.row, col - 1)
    elif point.lon > bounds.east:
        cell = GridCell(gran, cell.row, col + 1)
    return cell


def coarsen(
    obj: SpatialObject, granularity: "str | SpatialGranularity"
) -> SpatialObject:
    """Re-represent a spatial object at a coarser granularity.

    Points map to the containing grid cell; cells map to the containing
    coarser cell (via their center); boxes map to the cell containing their
    center.  Coarsening to ``point`` is only an identity for points.
    """
    gran = spatial_granularity(granularity)
    if gran.cell_meters <= 0:
        if isinstance(obj, Point):
            return obj
        raise GranularityError(
            f"cannot coarsen {type(obj).__name__} to 'point' granularity"
        )
    if isinstance(obj, Point):
        return grid_cell_for(obj, gran)
    if isinstance(obj, GridCell):
        if obj.granularity.rank > gran.rank:
            raise GranularityError(
                f"cannot coarsen {obj.granularity.name} cell to finer "
                f"granularity {gran.name}"
            )
        return grid_cell_for(obj.center(), gran)
    if isinstance(obj, Box):
        return grid_cell_for(obj.center(), gran)
    raise CoordinateError(f"unsupported spatial object {type(obj).__name__}")


def representative_point(obj: SpatialObject) -> Point:
    """A canonical point for any spatial object (itself, or its center)."""
    if isinstance(obj, Point):
        return obj
    if isinstance(obj, (Box, GridCell)):
        return obj.center()
    raise CoordinateError(f"unsupported spatial object {type(obj).__name__}")


def within(obj: SpatialObject, box: Box) -> bool:
    """True when the object's representative point falls inside ``box``."""
    return box.contains(representative_point(obj))
