"""Temporal and spatial granularity lattices.

A *granularity* partitions a domain (the time line, or geographic space)
into granules.  The paper relies on granularities to correlate data from
heterogeneous sensors ("temperature in a room versus temperatures in a
geographical area") and to impose consistency constraints when streams are
composed: two streams can only be joined or aggregated together at a
granularity both can be coarsened to.

Both lattices here are total orders (a chain), which matches the model in
the STT papers: `second < minute < hour < day < week < month < year` for
time and `point < block < district < ward < city < prefecture < region <
country` for space.  Regular granularities expose an exact size (seconds,
or meters of cell edge); irregular calendar granularities (month, year)
expose a *nominal* size used only for rate computations, while calendar
arithmetic lives in :mod:`repro.stt.temporal`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GranularityError


@dataclass(frozen=True, order=False)
class TemporalGranularity:
    """One level of the temporal granularity chain.

    Attributes:
        name: canonical lower-case name, e.g. ``"hour"``.
        seconds: exact granule length in seconds for regular granularities;
            nominal length for ``month`` (30 days) and ``year`` (365 days).
        regular: whether every granule has exactly ``seconds`` length.
        rank: position in the chain; higher rank means coarser.
    """

    name: str
    seconds: float
    regular: bool
    rank: int

    def is_finer_than(self, other: "TemporalGranularity") -> bool:
        return self.rank < other.rank

    def is_coarser_than(self, other: "TemporalGranularity") -> bool:
        return self.rank > other.rank

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, order=False)
class SpatialGranularity:
    """One level of the spatial granularity chain.

    Spatial granularities are modelled as square grid cells of a given edge
    length in meters.  ``point`` is the degenerate finest level (edge 0).

    Attributes:
        name: canonical lower-case name, e.g. ``"city"``.
        cell_meters: edge length of a granule cell in meters (0 for point).
        rank: position in the chain; higher rank means coarser.
    """

    name: str
    cell_meters: float
    rank: int

    def is_finer_than(self, other: "SpatialGranularity") -> bool:
        return self.rank < other.rank

    def is_coarser_than(self, other: "SpatialGranularity") -> bool:
        return self.rank > other.rank

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


_TEMPORAL_CHAIN = [
    ("second", 1.0, True),
    ("minute", 60.0, True),
    ("hour", 3600.0, True),
    ("day", 86400.0, True),
    ("week", 7 * 86400.0, True),
    ("month", 30 * 86400.0, False),
    ("year", 365 * 86400.0, False),
]

_SPATIAL_CHAIN = [
    ("point", 0.0),
    ("block", 100.0),
    ("district", 1000.0),
    ("ward", 5000.0),
    ("city", 20000.0),
    ("prefecture", 100000.0),
    ("region", 500000.0),
    ("country", 2000000.0),
]

TEMPORAL_GRANULARITIES: dict[str, TemporalGranularity] = {
    name: TemporalGranularity(name, seconds, regular, rank)
    for rank, (name, seconds, regular) in enumerate(_TEMPORAL_CHAIN)
}

SPATIAL_GRANULARITIES: dict[str, SpatialGranularity] = {
    name: SpatialGranularity(name, meters, rank)
    for rank, (name, meters) in enumerate(_SPATIAL_CHAIN)
}

_TEMPORAL_ALIASES = {
    "s": "second",
    "sec": "second",
    "seconds": "second",
    "min": "minute",
    "minutes": "minute",
    "h": "hour",
    "hours": "hour",
    "d": "day",
    "days": "day",
    "w": "week",
    "weeks": "week",
    "months": "month",
    "y": "year",
    "years": "year",
}

_SPATIAL_ALIASES = {
    "pt": "point",
    "neighbourhood": "district",
    "neighborhood": "district",
    "town": "city",
    "state": "prefecture",
    "province": "prefecture",
}


def temporal_granularity(name: "str | TemporalGranularity") -> TemporalGranularity:
    """Resolve a temporal granularity by name (accepting common aliases)."""
    if isinstance(name, TemporalGranularity):
        return name
    key = name.strip().lower()
    key = _TEMPORAL_ALIASES.get(key, key)
    try:
        return TEMPORAL_GRANULARITIES[key]
    except KeyError:
        known = ", ".join(TEMPORAL_GRANULARITIES)
        raise GranularityError(
            f"unknown temporal granularity {name!r}; known: {known}"
        ) from None


def spatial_granularity(name: "str | SpatialGranularity") -> SpatialGranularity:
    """Resolve a spatial granularity by name (accepting common aliases)."""
    if isinstance(name, SpatialGranularity):
        return name
    key = name.strip().lower()
    key = _SPATIAL_ALIASES.get(key, key)
    try:
        return SPATIAL_GRANULARITIES[key]
    except KeyError:
        known = ", ".join(SPATIAL_GRANULARITIES)
        raise GranularityError(
            f"unknown spatial granularity {name!r}; known: {known}"
        ) from None


def common_temporal(*grans: "str | TemporalGranularity") -> TemporalGranularity:
    """Return the coarsest of the given temporal granularities.

    This is the least upper bound in the chain: the finest granularity at
    which all inputs can be consistently combined.  Streams stamped at
    different temporal granularities must be coarsened to this level before
    a join or aggregation is meaningful.
    """
    if not grans:
        raise GranularityError("common_temporal requires at least one granularity")
    resolved = [temporal_granularity(g) for g in grans]
    return max(resolved, key=lambda g: g.rank)


def common_spatial(*grans: "str | SpatialGranularity") -> SpatialGranularity:
    """Return the coarsest of the given spatial granularities."""
    if not grans:
        raise GranularityError("common_spatial requires at least one granularity")
    resolved = [spatial_granularity(g) for g in grans]
    return max(resolved, key=lambda g: g.rank)


def temporal_conversion_factor(
    finer: "str | TemporalGranularity", coarser: "str | TemporalGranularity"
) -> float:
    """How many ``finer`` granules (nominally) fit in one ``coarser`` granule.

    Raises :class:`GranularityError` if ``finer`` is actually coarser than
    ``coarser``.  For irregular granularities the nominal sizes are used;
    exact calendar alignment is done by :func:`repro.stt.temporal.align_instant`.
    """
    f = temporal_granularity(finer)
    c = temporal_granularity(coarser)
    if f.rank > c.rank:
        raise GranularityError(
            f"cannot convert from {f.name} to finer granularity {c.name}"
        )
    return c.seconds / f.seconds
