"""Units of measure and conversions.

The paper's Transform operator family includes operations "for changing the
unit of measure (e.g. from yards to meters)".  This module implements a
small dimensional unit registry: every unit belongs to a *dimension*
(length, temperature, speed, ...) and converts to the dimension's base unit
via an affine map ``base = scale * value + offset`` (offset is only nonzero
for temperatures).  Conversions between units of different dimensions raise
:class:`repro.errors.UnitError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnitError


@dataclass(frozen=True)
class Unit:
    """A unit of measure.

    Attributes:
        name: canonical name, e.g. ``"meter"``.
        dimension: physical dimension, e.g. ``"length"``.
        scale: multiplicative factor to the dimension's base unit.
        offset: additive offset to the base unit (``base = scale*v + offset``).
    """

    name: str
    dimension: str
    scale: float
    offset: float = 0.0

    def to_base(self, value: float) -> float:
        return self.scale * value + self.offset

    def from_base(self, value: float) -> float:
        return (value - self.offset) / self.scale


class UnitRegistry:
    """Registry of units with alias resolution and conversion.

    >>> reg = UnitRegistry.standard()
    >>> round(reg.convert(100.0, "yard", "meter"), 2)
    91.44
    """

    def __init__(self) -> None:
        self._units: dict[str, Unit] = {}
        self._aliases: dict[str, str] = {}

    def register(self, unit: Unit, aliases: "list[str] | None" = None) -> Unit:
        key = unit.name.lower()
        if key in self._units:
            raise UnitError(f"unit {unit.name!r} already registered")
        self._units[key] = unit
        for alias in aliases or []:
            alias_key = alias.lower()
            if alias_key in self._aliases or alias_key in self._units:
                raise UnitError(f"unit alias {alias!r} already registered")
            self._aliases[alias_key] = key
        return unit

    def resolve(self, name: "str | Unit") -> Unit:
        if isinstance(name, Unit):
            return name
        key = name.strip().lower()
        key = self._aliases.get(key, key)
        try:
            return self._units[key]
        except KeyError:
            raise UnitError(f"unknown unit {name!r}") from None

    def convert(self, value: float, source: "str | Unit", target: "str | Unit") -> float:
        """Convert ``value`` from ``source`` to ``target`` units."""
        src = self.resolve(source)
        dst = self.resolve(target)
        if src.dimension != dst.dimension:
            raise UnitError(
                f"cannot convert {src.name} ({src.dimension}) to "
                f"{dst.name} ({dst.dimension})"
            )
        return dst.from_base(src.to_base(value))

    def compatible(self, source: "str | Unit", target: "str | Unit") -> bool:
        try:
            return self.resolve(source).dimension == self.resolve(target).dimension
        except UnitError:
            return False

    def units_of(self, dimension: str) -> list[Unit]:
        return sorted(
            (u for u in self._units.values() if u.dimension == dimension),
            key=lambda u: u.name,
        )

    @classmethod
    def standard(cls) -> "UnitRegistry":
        """Registry with the units the paper's sensor types need."""
        reg = cls()
        # Length (base: meter).
        reg.register(Unit("meter", "length", 1.0), ["m", "meters", "metre", "metres"])
        reg.register(Unit("kilometer", "length", 1000.0), ["km", "kilometers"])
        reg.register(Unit("centimeter", "length", 0.01), ["cm", "centimeters"])
        reg.register(Unit("millimeter", "length", 0.001), ["mm", "millimeters"])
        reg.register(Unit("yard", "length", 0.9144), ["yd", "yards"])
        reg.register(Unit("foot", "length", 0.3048), ["ft", "feet"])
        reg.register(Unit("mile", "length", 1609.344), ["mi", "miles"])
        # Temperature (base: kelvin).
        reg.register(Unit("kelvin", "temperature", 1.0), ["k"])
        reg.register(
            Unit("celsius", "temperature", 1.0, 273.15), ["c", "degc", "°c"]
        )
        reg.register(
            Unit("fahrenheit", "temperature", 5.0 / 9.0, 273.15 - 32.0 * 5.0 / 9.0),
            ["f", "degf", "°f"],
        )
        # Speed (base: meter/second).
        reg.register(Unit("mps", "speed", 1.0), ["m/s", "meters-per-second"])
        reg.register(Unit("kmh", "speed", 1000.0 / 3600.0), ["km/h", "kph"])
        reg.register(Unit("mph", "speed", 1609.344 / 3600.0), ["miles-per-hour"])
        reg.register(Unit("knot", "speed", 1852.0 / 3600.0), ["kn", "knots"])
        # Pressure (base: pascal).
        reg.register(Unit("pascal", "pressure", 1.0), ["pa"])
        reg.register(Unit("hectopascal", "pressure", 100.0), ["hpa", "millibar", "mbar"])
        reg.register(Unit("atmosphere", "pressure", 101325.0), ["atm"])
        # Precipitation rate (base: millimeter/hour).
        reg.register(Unit("mmh", "precipitation", 1.0), ["mm/h"])
        reg.register(Unit("inh", "precipitation", 25.4), ["in/h", "inches-per-hour"])
        # Ratio (base: fraction 0..1).
        reg.register(Unit("fraction", "ratio", 1.0), [])
        reg.register(Unit("percent", "ratio", 0.01), ["%", "pct"])
        # Duration (base: second) — for schedule delays.
        reg.register(Unit("second", "duration", 1.0), ["s", "sec", "seconds"])
        reg.register(Unit("minute", "duration", 60.0), ["min", "minutes"])
        reg.register(Unit("hour", "duration", 3600.0), ["h", "hours"])
        # Count (dimensionless).
        reg.register(Unit("count", "count", 1.0), ["items", "tuples"])
        return reg


#: Shared default registry (module-level convenience).
DEFAULT_UNITS = UnitRegistry.standard()


def convert(value: float, source: "str | Unit", target: "str | Unit") -> float:
    """Convert using the default registry."""
    return DEFAULT_UNITS.convert(value, source, target)
