"""Events and STT stamps — the atoms of the multigranular data model.

Following the paper: *"an event is a value represented at a given
spatio-temporal granularity for which thematic information is added"*.
Every stream tuple carries an :class:`SttStamp`; an :class:`Event` pairs a
stamp with a value, which is how readings land in the Event Data Warehouse.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import GranularityError
from repro.stt.granularity import (
    SpatialGranularity,
    TemporalGranularity,
    spatial_granularity,
    temporal_granularity,
)
from repro.stt.spatial import (
    Point,
    SpatialObject,
    coarsen as coarsen_spatial,
    representative_point,
)
from repro.stt.temporal import Instant, align_instant
from repro.stt.thematic import Theme


@dataclass(frozen=True)
class SttStamp:
    """Space-time-thematic stamp attached to every stream tuple.

    Attributes:
        time: virtual-time seconds of the reading.
        location: spatial object of the reading (point, box or grid cell).
        temporal_granularity: precision of ``time``.
        spatial_granularity: precision of ``location``.
        themes: thematic tags, e.g. ``(Theme("weather/rain"),)``.
    """

    time: float
    location: SpatialObject
    temporal_granularity: TemporalGranularity = field(
        default_factory=lambda: temporal_granularity("second")
    )
    spatial_granularity: SpatialGranularity = field(
        default_factory=lambda: spatial_granularity("point")
    )
    themes: tuple[Theme, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "temporal_granularity", temporal_granularity(self.temporal_granularity)
        )
        object.__setattr__(
            self, "spatial_granularity", spatial_granularity(self.spatial_granularity)
        )
        themes = tuple(
            theme if isinstance(theme, Theme) else Theme(theme) for theme in self.themes
        )
        object.__setattr__(self, "themes", themes)

    @property
    def instant(self) -> Instant:
        return Instant(self.time, self.temporal_granularity)

    @property
    def point(self) -> Point:
        """Representative point of the stamped location."""
        return representative_point(self.location)

    def has_theme(self, theme: "Theme | str") -> bool:
        """True when any stamped theme matches (refines or generalises)."""
        target = theme if isinstance(theme, Theme) else Theme(theme)
        return any(t.matches(target) for t in self.themes)

    def with_themes(self, *themes: "Theme | str") -> "SttStamp":
        extra = tuple(t if isinstance(t, Theme) else Theme(t) for t in themes)
        merged = self.themes + tuple(t for t in extra if t not in self.themes)
        return replace(self, themes=merged)

    def coarsened(
        self,
        temporal: "str | TemporalGranularity | None" = None,
        spatial: "str | SpatialGranularity | None" = None,
    ) -> "SttStamp":
        """This stamp re-expressed at coarser granularities.

        Only granularities at or above the current one are accepted; the
        time is aligned to the granule start and the location snapped to the
        containing grid cell.
        """
        stamp = self
        if temporal is not None:
            target = temporal_granularity(temporal)
            if target.rank < stamp.temporal_granularity.rank:
                raise GranularityError(
                    f"cannot coarsen temporal granularity "
                    f"{stamp.temporal_granularity.name} to finer {target.name}"
                )
            stamp = replace(
                stamp,
                time=align_instant(stamp.time, target),
                temporal_granularity=target,
            )
        if spatial is not None:
            target_sp = spatial_granularity(spatial)
            if target_sp.rank < stamp.spatial_granularity.rank:
                raise GranularityError(
                    f"cannot coarsen spatial granularity "
                    f"{stamp.spatial_granularity.name} to finer {target_sp.name}"
                )
            stamp = replace(
                stamp,
                location=coarsen_spatial(stamp.location, target_sp),
                spatial_granularity=target_sp,
            )
        return stamp

    def compatible_with(self, other: "SttStamp") -> bool:
        """Thematic-agnostic composability: granules align once coarsened.

        Two stamps are compatible when, at the coarser of their granularity
        pairs, they fall in the same temporal granule and spatial cell.
        """
        t_gran = max(
            self.temporal_granularity, other.temporal_granularity, key=lambda g: g.rank
        )
        if align_instant(self.time, t_gran) != align_instant(other.time, t_gran):
            return False
        s_gran = max(
            self.spatial_granularity, other.spatial_granularity, key=lambda g: g.rank
        )
        if s_gran.cell_meters <= 0:
            return self.point == other.point
        return coarsen_spatial(self.location, s_gran) == coarsen_spatial(
            other.location, s_gran
        )


@dataclass(frozen=True)
class Event:
    """A value bound to an STT stamp — the unit stored in the warehouse."""

    value: object
    stamp: SttStamp
    source: str = ""

    def coarsened(
        self,
        temporal: "str | TemporalGranularity | None" = None,
        spatial: "str | SpatialGranularity | None" = None,
    ) -> "Event":
        return replace(self, stamp=self.stamp.coarsened(temporal, spatial))
