"""Space-Time-Thematic (STT) multigranular data model.

Implements the data model the paper inherits from EventShop [Dao et al.,
2012]: sensor readings are *events* — a value associated with a spatial
object at a given time, represented at explicit temporal and spatial
granularities, enriched with thematic tags.  Granularities drive both the
correlation of data produced by different sensors and the consistency
constraints enforced when heterogeneous streams are composed.
"""

from repro.stt.granularity import (
    TemporalGranularity,
    SpatialGranularity,
    TEMPORAL_GRANULARITIES,
    SPATIAL_GRANULARITIES,
    temporal_granularity,
    spatial_granularity,
    common_temporal,
    common_spatial,
)
from repro.stt.temporal import Instant, Interval, Granule, align_instant
from repro.stt.spatial import Point, Box, GridCell, SpatialObject, grid_cell_for
from repro.stt.thematic import Theme, ThemeTaxonomy, DEFAULT_TAXONOMY
from repro.stt.units import Unit, UnitRegistry, DEFAULT_UNITS, convert
from repro.stt.geo import CoordinateSystem, to_web_mercator, from_web_mercator, haversine_m
from repro.stt.event import SttStamp, Event

__all__ = [
    "TemporalGranularity",
    "SpatialGranularity",
    "TEMPORAL_GRANULARITIES",
    "SPATIAL_GRANULARITIES",
    "temporal_granularity",
    "spatial_granularity",
    "common_temporal",
    "common_spatial",
    "Instant",
    "Interval",
    "Granule",
    "align_instant",
    "Point",
    "Box",
    "GridCell",
    "SpatialObject",
    "grid_cell_for",
    "Theme",
    "ThemeTaxonomy",
    "DEFAULT_TAXONOMY",
    "Unit",
    "UnitRegistry",
    "DEFAULT_UNITS",
    "convert",
    "CoordinateSystem",
    "to_web_mercator",
    "from_web_mercator",
    "haversine_m",
    "SttStamp",
    "Event",
]
