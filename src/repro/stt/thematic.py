"""Thematic dimension of the STT model.

Every sensor reading carries one or more *themes* ("data about traffic jams
vs data about pollutions").  Themes are organised in a taxonomy (a forest):
``weather/rain`` is a sub-theme of ``weather``, so a subscription to
``weather`` matches a ``weather/rain`` stream.  Theme matching drives sensor
discovery and the thematic consistency checks of dataflow composition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SttError


@dataclass(frozen=True)
class Theme:
    """A node in the thematic taxonomy, addressed by its slash path.

    ``Theme("weather/rain")`` has parent ``Theme("weather")``.
    """

    path: str

    def __post_init__(self) -> None:
        cleaned = self.path.strip().strip("/").lower()
        if not cleaned:
            raise SttError("theme path must be non-empty")
        for part in cleaned.split("/"):
            if not part or not all(c.isalnum() or c in "-_" for c in part):
                raise SttError(f"invalid theme path segment {part!r} in {self.path!r}")
        object.__setattr__(self, "path", cleaned)

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(self.path.split("/"))

    @property
    def parent(self) -> "Theme | None":
        parts = self.parts
        if len(parts) == 1:
            return None
        return Theme("/".join(parts[:-1]))

    @property
    def root(self) -> "Theme":
        return Theme(self.parts[0])

    def is_subtheme_of(self, other: "Theme | str") -> bool:
        """True when ``self`` equals or refines ``other``."""
        other_theme = other if isinstance(other, Theme) else Theme(other)
        return (
            self.path == other_theme.path
            or self.path.startswith(other_theme.path + "/")
        )

    def matches(self, other: "Theme | str") -> bool:
        """Symmetric thematic compatibility: one refines the other."""
        other_theme = other if isinstance(other, Theme) else Theme(other)
        return self.is_subtheme_of(other_theme) or other_theme.is_subtheme_of(self)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.path


class ThemeTaxonomy:
    """A registered forest of themes, used to validate sensor metadata.

    Registration is optional for matching (any syntactically valid theme can
    be compared to another) but a taxonomy lets the designer reject typos:
    a sensor declaring ``wheather/rain`` fails validation against the
    default taxonomy.
    """

    def __init__(self, themes: "list[str | Theme] | None" = None) -> None:
        self._themes: set[str] = set()
        for theme in themes or []:
            self.register(theme)

    def register(self, theme: "str | Theme") -> Theme:
        """Register a theme and all its ancestors; returns the theme."""
        resolved = theme if isinstance(theme, Theme) else Theme(theme)
        node: Theme | None = resolved
        while node is not None:
            self._themes.add(node.path)
            node = node.parent
        return resolved

    def known(self, theme: "str | Theme") -> bool:
        resolved = theme if isinstance(theme, Theme) else Theme(theme)
        return resolved.path in self._themes

    def validate(self, theme: "str | Theme") -> Theme:
        resolved = theme if isinstance(theme, Theme) else Theme(theme)
        if not self.known(resolved):
            raise SttError(
                f"theme {resolved.path!r} is not part of the taxonomy; "
                f"register it first or fix the spelling"
            )
        return resolved

    def children(self, theme: "str | Theme") -> list[Theme]:
        resolved = theme if isinstance(theme, Theme) else Theme(theme)
        prefix = resolved.path + "/"
        depth = len(resolved.parts) + 1
        return sorted(
            (
                Theme(path)
                for path in self._themes
                if path.startswith(prefix) and len(path.split("/")) == depth
            ),
            key=lambda t: t.path,
        )

    def roots(self) -> list[Theme]:
        return sorted(
            (Theme(path) for path in self._themes if "/" not in path),
            key=lambda t: t.path,
        )

    def __len__(self) -> int:
        return len(self._themes)

    def __contains__(self, theme: object) -> bool:
        if isinstance(theme, (str, Theme)):
            return self.known(theme)
        return False


#: Taxonomy covering the sensor families named in the paper's motivation:
#: physical phenomena plus social sensors.
DEFAULT_TAXONOMY = ThemeTaxonomy(
    [
        "weather/temperature",
        "weather/humidity",
        "weather/rain",
        "weather/wind",
        "weather/pressure",
        "weather/apparent-temperature",
        "sea/water-level",
        "mobility/traffic",
        "mobility/train-schedule",
        "mobility/flight-schedule",
        "social/twitter",
        "pollution/air",
        "disaster/flood",
        "disaster/storm",
        "disaster/extreme-temperature",
    ]
)
