"""Geographic coordinate conversions.

The paper's Transform operators include changing "geographical coordinates
(from one standard to another one)".  We implement the conversions a sensor
fleet actually needs: WGS84 lat/lon <-> Web-Mercator meters (the standard of
web maps), WGS84 <-> a local tangent-plane grid (meters east/north of a
reference point, the common representation of municipal sensor networks),
and great-circle distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.errors import CoordinateError

#: WGS84 spherical-approximation Earth radius in meters.
EARTH_RADIUS_M = 6_378_137.0

#: Latitude limit of the Web-Mercator projection.
WEB_MERCATOR_MAX_LAT = 85.05112878


class CoordinateSystem(Enum):
    """Coordinate reference systems supported by the Transform operator."""

    WGS84 = "wgs84"
    WEB_MERCATOR = "web-mercator"
    LOCAL_ENU = "local-enu"

    @classmethod
    def parse(cls, name: "str | CoordinateSystem") -> "CoordinateSystem":
        if isinstance(name, CoordinateSystem):
            return name
        key = name.strip().lower().replace("_", "-")
        for system in cls:
            if system.value == key:
                return system
        known = ", ".join(s.value for s in cls)
        raise CoordinateError(f"unknown coordinate system {name!r}; known: {known}")


def to_web_mercator(lat: float, lon: float) -> tuple[float, float]:
    """WGS84 degrees -> Web-Mercator meters ``(x, y)``."""
    if not (-WEB_MERCATOR_MAX_LAT <= lat <= WEB_MERCATOR_MAX_LAT):
        raise CoordinateError(
            f"latitude {lat} outside Web-Mercator domain "
            f"[-{WEB_MERCATOR_MAX_LAT}, {WEB_MERCATOR_MAX_LAT}]"
        )
    if not (-180.0 <= lon <= 180.0):
        raise CoordinateError(f"longitude {lon} out of range [-180, 180]")
    x = math.radians(lon) * EARTH_RADIUS_M
    y = math.log(math.tan(math.pi / 4.0 + math.radians(lat) / 2.0)) * EARTH_RADIUS_M
    return x, y


def from_web_mercator(x: float, y: float) -> tuple[float, float]:
    """Web-Mercator meters -> WGS84 degrees ``(lat, lon)``."""
    lon = math.degrees(x / EARTH_RADIUS_M)
    lat = math.degrees(2.0 * math.atan(math.exp(y / EARTH_RADIUS_M)) - math.pi / 2.0)
    if not (-180.0 <= lon <= 180.0):
        raise CoordinateError(f"x={x} maps outside the longitude domain")
    return lat, lon


@dataclass(frozen=True)
class LocalGrid:
    """A local east-north tangent plane anchored at a reference point.

    Municipal sensor feeds often report meter offsets from a city datum;
    this grid converts such offsets to and from WGS84 using the equirect-
    angular approximation (sub-meter accurate over a metropolitan area).
    """

    origin_lat: float
    origin_lon: float

    def to_local(self, lat: float, lon: float) -> tuple[float, float]:
        """WGS84 degrees -> meters ``(east, north)`` of the origin."""
        east = (
            math.radians(lon - self.origin_lon)
            * EARTH_RADIUS_M
            * math.cos(math.radians(self.origin_lat))
        )
        north = math.radians(lat - self.origin_lat) * EARTH_RADIUS_M
        return east, north

    def to_wgs84(self, east: float, north: float) -> tuple[float, float]:
        """Meters east/north of the origin -> WGS84 degrees ``(lat, lon)``."""
        lat = self.origin_lat + math.degrees(north / EARTH_RADIUS_M)
        lon = self.origin_lon + math.degrees(
            east / (EARTH_RADIUS_M * math.cos(math.radians(self.origin_lat)))
        )
        if not (-90.0 <= lat <= 90.0) or not (-180.0 <= lon <= 180.0):
            raise CoordinateError(
                f"local offset ({east}, {north}) maps outside the WGS84 domain"
            )
        return lat, lon


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two WGS84 points in meters."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def convert_coordinates(
    lat_or_x: float,
    lon_or_y: float,
    source: "str | CoordinateSystem",
    target: "str | CoordinateSystem",
    grid: "LocalGrid | None" = None,
) -> tuple[float, float]:
    """Convert a coordinate pair between reference systems.

    ``LOCAL_ENU`` conversions require a :class:`LocalGrid` anchor.
    """
    src = CoordinateSystem.parse(source)
    dst = CoordinateSystem.parse(target)
    if src is dst:
        return lat_or_x, lon_or_y
    if (src is CoordinateSystem.LOCAL_ENU or dst is CoordinateSystem.LOCAL_ENU) and (
        grid is None
    ):
        raise CoordinateError("local-enu conversions require a LocalGrid anchor")

    # Normalise to WGS84 first.
    if src is CoordinateSystem.WGS84:
        lat, lon = lat_or_x, lon_or_y
    elif src is CoordinateSystem.WEB_MERCATOR:
        lat, lon = from_web_mercator(lat_or_x, lon_or_y)
    else:
        assert grid is not None
        lat, lon = grid.to_wgs84(lat_or_x, lon_or_y)

    if dst is CoordinateSystem.WGS84:
        return lat, lon
    if dst is CoordinateSystem.WEB_MERCATOR:
        return to_web_mercator(lat, lon)
    assert grid is not None
    return grid.to_local(lat, lon)
