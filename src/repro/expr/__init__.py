"""Condition / specification expression language.

One small, safe language serves every textual parameter of Table 1: Filter
conditions (``σ(s, cond)``), Join predicates, Trigger conditions, Virtual
Property specifications (``⊎ s⟨p, spec⟩``) and Transform definitions.  The
pipeline is classic: :mod:`lexer` → :mod:`parser` → typed :mod:`ast` →
:mod:`eval`, with a :mod:`functions` registry providing the math, string,
temporal, spatial and unit-conversion built-ins the ETL operators need.

>>> from repro.expr import compile_expression
>>> expr = compile_expression("temperature > 24 and humidity >= 0.6")
>>> expr.evaluate({"temperature": 26.0, "humidity": 0.7})
True
"""

from repro.expr.ast import (
    AttributeRef,
    BinaryOp,
    Call,
    Expression,
    Literal,
    Node,
    UnaryOp,
)
from repro.expr.lexer import Token, TokenKind, tokenize
from repro.expr.parser import parse
from repro.expr.eval import compile_expression, EvalContext
from repro.expr.functions import FunctionRegistry, DEFAULT_FUNCTIONS

__all__ = [
    "AttributeRef",
    "BinaryOp",
    "Call",
    "Expression",
    "Literal",
    "Node",
    "UnaryOp",
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
    "compile_expression",
    "EvalContext",
    "FunctionRegistry",
    "DEFAULT_FUNCTIONS",
]
