"""Vectorized expression kernels: whole-column lowering of condition ASTs.

:mod:`repro.expr.compile` lowers an AST to a closure of one payload —
the per-row unit the operators call in a loop.  This module lowers the
same AST one level further out: into a *column kernel* that takes a
struct-of-arrays batch (:class:`repro.streams.columnar.ColumnarBatch`
columns) and a selection vector, and runs the whole loop inside one
generated function.  Attribute references compile to pre-fetched local
list indexing (``_col0[_i]``) instead of a dict probe per row, and the
per-row closure call disappears entirely.

The generator reuses the scalar emitter verbatim — constant folding,
pre-bound registry calls, guard specialisation — by overriding only the
attribute-reference lowering.  Error semantics are preserved exactly:

- a reference to a column the batch does not carry raises the same
  ``UnknownAttributeError`` *at the point the evaluation reaches the
  reference* (the presence check is per row, inside the loop, so
  short-circuited references still never fire — identical laziness to
  the scalar path);
- every row evaluates under its own ``try/except ExpressionError``, so
  a failing row is quarantined individually and the rest of the column
  proceeds (the operator error-quarantine convention).

Two kernel shapes cover the operator family:

- **predicate kernels** (filter, validate): ``kernel(columns, sel) ->
  (kept_rows, error_count)`` where a row is kept iff the condition is
  exactly ``True``; non-boolean results count as errors, replicating
  ``bind_bool``'s non-boolean rejection without constructing the
  exception.
- **value kernels** (transform assignments, virtual properties):
  ``kernel(columns, sel) -> (values, error_rows)`` with ``values``
  aligned to ``sel`` (``None`` at failed positions) and ``error_rows``
  the failing row indices (usually empty).

Non-vectorizable nodes — today only qualified references (``left.temp``),
which never occur in the single-input operator family — fall back to a
per-row kernel that drives the PR 2 scalar closure over a column row
view.  The fallback raises the *real* compiled-path errors, so the
taxonomy and messages stay bit-identical; only the loop moves here.
Every kernel carries a ``vectorized`` attribute saying which path it is.

``tests/property/test_prop_columnar_parity.py`` pins column ≡ row
equivalence end to end through deployed flows.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ExpressionError
from repro.expr.ast import AttributeRef, Node
from repro.expr.compile import _BASE_ENV, _Emitter
from repro.expr.eval import _NO_QUALIFIED, CompiledExpression


class _NotVectorizable(Exception):
    """Internal signal: this AST needs the per-row fallback."""


class _VectorEmitter(_Emitter):
    """The scalar emitter with references lowered to column indexing.

    Everything else — folding, guards, logical short-circuits, pre-bound
    calls — is inherited unchanged, so the per-row *body* of a kernel is
    the same bytecode the scalar closure runs.
    """

    def __init__(self, functions) -> None:
        super().__init__(functions)
        #: attribute name -> hoisted column local (``_col0 = _COLS.get(..)``).
        self.column_locals: dict[str, str] = {}

    def column_local(self, name: str) -> str:
        var = self.column_locals.get(name)
        if var is None:
            var = f"_col{len(self.column_locals)}"
            self.column_locals[name] = var
        return var

    def _emit_ref(self, node: AttributeRef, indent: int) -> str:
        if node.qualifier:
            # Qualified refs bind join payloads; columns carry exactly one
            # payload, so these expressions take the per-row fallback.
            raise _NotVectorizable(f"qualified reference {node.unparse()!r}")
        col = self.column_local(node.name)
        out = self.temp()
        # The presence check sits at the reference, not the kernel entry:
        # a short-circuited branch that never reaches the reference never
        # raises, exactly like the scalar path.
        self.line(indent, f"if {col} is None: _missing_attr({node.name!r})")
        self.line(indent, f"{out} = {col}[_i]")
        return out


def _assemble(emitter: _VectorEmitter, result: str, tail: "list[str]",
              setup: "list[str]", returns: str) -> Callable:
    lines = ["def _vkernel(_COLS, _SEL):"]
    lines += [
        f"    {var} = _COLS.get({name!r})"
        for name, var in emitter.column_locals.items()
    ]
    lines += [f"    {line}" for line in setup]
    lines += ["    for _i in _SEL:", "        try:"]
    lines += emitter.lines
    lines += [f"            _res = {result}"]
    lines += tail
    lines += [f"    return {returns}"]
    source = "\n".join(lines)
    env = dict(_BASE_ENV)
    env.update(emitter.consts)
    exec(compile(source, "<expr-vectorize>", "exec"), env)
    kernel = env["_vkernel"]
    kernel.__expr_source__ = source  # introspection / debugging aid
    return kernel


def _emit_predicate(root: Node, functions) -> "Callable | None":
    emitter = _VectorEmitter(functions)
    try:
        result = emitter.emit(root, 3)
    except _NotVectorizable:
        return None
    tail = [
        "            if _res is True:",
        "                _ka(_i)",
        "            elif _res is not False:",
        "                _err += 1",
        "        except _ExpressionError:",
        "            _err += 1",
    ]
    setup = ["_keep = []", "_ka = _keep.append", "_err = 0"]
    return _assemble(emitter, result, tail, setup, "_keep, _err")


def _emit_values(root: Node, functions) -> "Callable | None":
    emitter = _VectorEmitter(functions)
    try:
        result = emitter.emit(root, 3)
    except _NotVectorizable:
        return None
    tail = [
        "            _va(_res)",
        "        except _ExpressionError:",
        "            _va(None)",
        "            _ea(_i)",
    ]
    setup = [
        "_vals = []", "_va = _vals.append",
        "_errs = []", "_ea = _errs.append",
    ]
    return _assemble(emitter, result, tail, setup, "_vals, _errs")


class _RowView:
    """A one-row dict view over columns, for the per-row fallback.

    The compiled scalar closures read payloads through exactly one
    method — ``values.get(name, _MISSING)`` — so this view implements
    just that, re-pointed at ``columns[name][index]``.  One view is
    reused across the whole loop by re-assigning ``index``.
    """

    __slots__ = ("columns", "index")

    def __init__(self, columns: dict) -> None:
        self.columns = columns
        self.index = 0

    def get(self, name: str, default: object = None) -> object:
        column = self.columns.get(name)
        if column is None:
            return default
        return column[self.index]


def _fallback_predicate(expression: CompiledExpression) -> Callable:
    run = expression.prepare()._fast
    assert run is not None

    def kernel(columns: dict, sel: "Sequence[int]") -> "tuple[list[int], int]":
        view = _RowView(columns)
        keep: "list[int]" = []
        append = keep.append
        errors = 0
        for i in sel:
            view.index = i
            try:
                result = run(view, _NO_QUALIFIED)
            except ExpressionError:
                errors += 1
                continue
            if result is True:
                append(i)
            elif result is not False:
                errors += 1
        return keep, errors

    kernel.vectorized = False
    return kernel


def _fallback_values(expression: CompiledExpression) -> Callable:
    run = expression.prepare()._fast
    assert run is not None

    def kernel(columns: dict, sel: "Sequence[int]") -> "tuple[list, list[int]]":
        view = _RowView(columns)
        values: list = []
        errors: "list[int]" = []
        append = values.append
        for i in sel:
            view.index = i
            try:
                append(run(view, _NO_QUALIFIED))
            except ExpressionError:
                append(None)
                errors.append(i)
        return values, errors

    kernel.vectorized = False
    return kernel


def predicate_kernel(expression: CompiledExpression) -> Callable:
    """A boolean column kernel for ``expression``.

    ``kernel(columns, sel) -> (kept_rows, error_count)``: kept rows are
    exactly those where the condition evaluated to ``True``; rows whose
    evaluation raised, or returned a non-boolean, are neither kept nor
    errored silently — they add to the error count (the caller charges
    them to ``stats.errors``).  Validate derives its per-rule error count
    as ``len(sel) - len(kept)`` since every non-True row violates.
    """
    kernel = _emit_predicate(expression.root, expression.functions)
    if kernel is None:
        return _fallback_predicate(expression)
    kernel.vectorized = True
    return kernel


def values_kernel(expression: CompiledExpression) -> Callable:
    """A value column kernel for ``expression``.

    ``kernel(columns, sel) -> (values, error_rows)`` with ``values``
    aligned to ``sel`` (``None`` placeholders at failed positions) and
    ``error_rows`` listing the failing row indices.
    """
    kernel = _emit_values(expression.root, expression.functions)
    if kernel is None:
        return _fallback_values(expression)
    kernel.vectorized = True
    return kernel
