"""Recursive-descent parser for the condition language.

Grammar (standard precedence, loosest first)::

    expr        := or_expr
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := not_expr ('and' not_expr)*
    not_expr    := 'not' not_expr | comparison
    comparison  := additive (('=='|'!='|'<'|'<='|'>'|'>='|'in') additive)?
    additive    := term (('+'|'-') term)*
    term        := unary (('*'|'/'|'%') unary)*
    unary       := '-' unary | primary
    primary     := NUMBER | STRING | 'true' | 'false' | 'null'
                 | IDENT '(' [expr (',' expr)*] ')'
                 | IDENT ['.' IDENT]
                 | '(' expr ')'
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.expr.ast import AttributeRef, BinaryOp, Call, Literal, Node, UnaryOp
from repro.expr.lexer import Token, TokenKind, tokenize

_COMPARATORS = ("==", "!=", "<=", ">=", "<", ">")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _match_op(self, *ops: str) -> "Token | None":
        token = self._peek()
        if token.kind is TokenKind.OP and token.text in ops:
            return self._advance()
        return None

    def _match_keyword(self, *words: str) -> "Token | None":
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.text in words:
            return self._advance()
        return None

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Node:
        node = self._or_expr()
        trailing = self._peek()
        if trailing.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected trailing input {trailing.text!r}", trailing.position
            )
        return node

    def _or_expr(self) -> Node:
        node = self._and_expr()
        while self._match_keyword("or"):
            node = BinaryOp("or", node, self._and_expr())
        return node

    def _and_expr(self) -> Node:
        node = self._not_expr()
        while self._match_keyword("and"):
            node = BinaryOp("and", node, self._not_expr())
        return node

    def _not_expr(self) -> Node:
        if self._match_keyword("not"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Node:
        node = self._additive()
        op_token = self._match_op(*_COMPARATORS)
        if op_token is not None:
            return BinaryOp(op_token.text, node, self._additive())
        if self._match_keyword("in"):
            return BinaryOp("in", node, self._additive())
        return node

    def _additive(self) -> Node:
        node = self._term()
        while True:
            op_token = self._match_op("+", "-")
            if op_token is None:
                return node
            node = BinaryOp(op_token.text, node, self._term())

    def _term(self) -> Node:
        node = self._unary()
        while True:
            op_token = self._match_op("*", "/", "%")
            if op_token is None:
                return node
            node = BinaryOp(op_token.text, node, self._unary())

    def _unary(self) -> Node:
        if self._match_op("-"):
            operand = self._unary()
            # Fold negative numeric literals so "-1" parses as Literal(-1)
            # and the printer/parser pair round-trips exactly.
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        return self._primary()

    def _primary(self) -> Node:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.text)
        if token.kind is TokenKind.KEYWORD and token.text in ("true", "false", "null"):
            self._advance()
            if token.text == "null":
                return Literal(None)
            return Literal(token.text == "true")
        if token.kind is TokenKind.LPAREN:
            self._advance()
            node = self._or_expr()
            self._expect(TokenKind.RPAREN)
            return node
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._peek().kind is TokenKind.LPAREN:
                return self._call(token.text)
            if self._match_op("."):
                attr = self._expect(TokenKind.IDENT)
                return AttributeRef(attr.text, qualifier=token.text)
            return AttributeRef(token.text)
        raise ParseError(
            f"unexpected token {token.text or 'end of input'!r}", token.position
        )

    def _call(self, name: str) -> Node:
        self._expect(TokenKind.LPAREN)
        args: list[Node] = []
        if self._peek().kind is not TokenKind.RPAREN:
            args.append(self._or_expr())
            while self._peek().kind is TokenKind.COMMA:
                self._advance()
                args.append(self._or_expr())
        self._expect(TokenKind.RPAREN)
        return Call(name, tuple(args))


def parse(source: str) -> Node:
    """Parse ``source`` into an AST.

    Raises :class:`repro.errors.LexError` or :class:`repro.errors.ParseError`.
    """
    return _Parser(tokenize(source)).parse()
