"""Evaluation of condition-language expressions against stream tuples.

Two evaluation paths share one semantics:

- :meth:`CompiledExpression.evaluate` lowers the AST once to a Python
  closure (:mod:`repro.expr.compile`) and runs that per tuple — the hot
  path every operator uses;
- :meth:`CompiledExpression.interpret` walks the AST — the slow reference
  oracle the property tests compare the compiled path against.

Both raise the same :class:`ExpressionError` subclasses with the same
messages on the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import (
    EvaluationError,
    TypeMismatchError,
    UnknownAttributeError,
)
from repro.expr.ast import (
    AttributeRef,
    BinaryOp,
    Call,
    Literal,
    Node,
    SchemaScope,
    UnaryOp,
)
from repro.expr.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from repro.expr.parser import parse
from repro.schema.schema import StreamSchema
from repro.schema.types import AttributeType

#: Shared empty qualified-payload binding for the bound single-payload
#: evaluators.  Compiled closures only read from it.
_NO_QUALIFIED: dict = {}


@dataclass
class EvalContext:
    """Name bindings for one evaluation.

    ``values`` binds unqualified attribute names; ``qualified`` binds
    qualifier -> payload for join predicates (``left.temp``).
    """

    values: dict = field(default_factory=dict)
    qualified: dict[str, dict] = field(default_factory=dict)

    def lookup(self, qualifier: str, name: str) -> object:
        if qualifier:
            payload = self.qualified.get(qualifier)
            if payload is None:
                raise UnknownAttributeError(f"unbound qualifier {qualifier!r}")
            if name not in payload:
                raise UnknownAttributeError(f"no attribute {qualifier}.{name}")
            return payload[name]
        if name not in self.values:
            raise UnknownAttributeError(f"no attribute {name!r} in tuple")
        return self.values[name]


def _evaluate(node: Node, ctx: EvalContext, functions: FunctionRegistry) -> object:
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, AttributeRef):
        return ctx.lookup(node.qualifier, node.name)
    if isinstance(node, UnaryOp):
        if node.op == "not":
            value = _evaluate(node.operand, ctx, functions)
            _require_bool(value, "not")
            return not value
        value = _evaluate(node.operand, ctx, functions)
        _require_number(value, "-")
        return -value
    if isinstance(node, BinaryOp):
        return _evaluate_binary(node, ctx, functions)
    if isinstance(node, Call):
        args = [_evaluate(arg, ctx, functions) for arg in node.args]
        return functions.call(node.name, args)
    raise EvaluationError(f"unknown AST node {type(node).__name__}")


def _require_bool(value: object, op: str) -> None:
    if not isinstance(value, bool):
        raise EvaluationError(f"'{op}' needs a boolean, got {value!r}")


def _require_number(value: object, op: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"'{op}' needs a number, got {value!r}")


def _evaluate_binary(
    node: BinaryOp, ctx: EvalContext, functions: FunctionRegistry
) -> object:
    op = node.op
    # Short-circuit logical connectives.
    if op == "and":
        left = _evaluate(node.left, ctx, functions)
        _require_bool(left, "and")
        if not left:
            return False
        right = _evaluate(node.right, ctx, functions)
        _require_bool(right, "and")
        return right
    if op == "or":
        left = _evaluate(node.left, ctx, functions)
        _require_bool(left, "or")
        if left:
            return True
        right = _evaluate(node.right, ctx, functions)
        _require_bool(right, "or")
        return right

    left = _evaluate(node.left, ctx, functions)
    right = _evaluate(node.right, ctx, functions)

    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return False
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {left!r} {op} {right!r}: {exc}"
            ) from exc
    if op == "in":
        if not isinstance(left, str) or not isinstance(right, str):
            raise EvaluationError(f"'in' needs strings, got {left!r} in {right!r}")
        return left in right
    if op == "+":
        if isinstance(left, str) and isinstance(right, str):
            return left + right
        _require_number(left, "+")
        _require_number(right, "+")
        return left + right
    if op in ("-", "*", "/", "%"):
        _require_number(left, op)
        _require_number(right, op)
        try:
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right
            return left % right
        except ZeroDivisionError as exc:
            raise EvaluationError(f"division by zero: {node.unparse()}") from exc
    raise EvaluationError(f"unknown operator {op!r}")


@dataclass(frozen=True)
class CompiledExpression:
    """A parsed, reusable expression.

    Compile once at design/deploy time, evaluate per tuple.  ``source`` is
    kept for display in the designer and inclusion in DSN programs.
    """

    source: str
    root: Node
    functions: FunctionRegistry = field(default=DEFAULT_FUNCTIONS, compare=False)
    #: Lazily-built fast evaluator (see :mod:`repro.expr.compile`).
    _fast: "Callable[[dict, dict], object] | None" = field(
        default=None, compare=False, repr=False
    )

    def prepare(self) -> "CompiledExpression":
        """Force the fast evaluator to build now (operators call this at
        construction so the first tuple does not pay the lowering cost)."""
        if self._fast is None:
            from repro.expr.compile import compile_node

            object.__setattr__(self, "_fast", compile_node(self.root, self.functions))
        return self

    def evaluate(self, values: "dict | None" = None, **qualified: dict) -> object:
        """Evaluate against a payload dict (and/or qualified payloads).

        Runs the compiled closure; semantically identical to
        :meth:`interpret`, which the property suite pins.
        """
        fast = self._fast
        if fast is None:
            fast = self.prepare()._fast
        return fast(values if values else {}, qualified)

    def interpret(self, values: "dict | None" = None, **qualified: dict) -> object:
        """Reference tree-walking evaluation (the compiled path's oracle)."""
        ctx = EvalContext(values=values or {}, qualified=qualified)
        return _evaluate(self.root, ctx, self.functions)

    def evaluate_bool(self, values: "dict | None" = None, **qualified: dict) -> bool:
        result = self.evaluate(values, **qualified)
        if not isinstance(result, bool):
            raise EvaluationError(
                f"condition {self.source!r} returned non-boolean {result!r}"
            )
        return result

    # -- hot-path entries --------------------------------------------------
    #
    # ``evaluate``/``evaluate_bool`` allocate a ``**qualified`` dict on
    # every call even though per-tuple operators never pass qualified
    # payloads.  The bound closures below are for exactly that case —
    # operators grab one at construction and run it per tuple.

    def bind(self) -> "Callable[[Mapping], object]":
        """A single-payload evaluator: ``closure(values) -> result``.

        Semantically identical to ``evaluate(values)`` — same result,
        same :class:`ExpressionError` subclasses on malformed input.
        """
        fast = self.prepare()._fast
        assert fast is not None

        def run(values: "Mapping") -> object:
            return fast(values, _NO_QUALIFIED)

        return run

    def bind_bool(self) -> "Callable[[Mapping], bool]":
        """A single-payload condition: ``closure(values) -> bool``.

        Semantically identical to ``evaluate_bool(values)`` including the
        non-boolean-result error.
        """
        fast = self.prepare()._fast
        assert fast is not None
        source = self.source

        def run_bool(values: "Mapping") -> bool:
            result = fast(values, _NO_QUALIFIED)
            if result is True or result is False:
                return result
            raise EvaluationError(
                f"condition {source!r} returned non-boolean {result!r}"
            )

        return run_bool

    def type_check(
        self,
        schema: "StreamSchema | None" = None,
        **qualified: StreamSchema,
    ) -> AttributeType:
        """Static type of the expression against the given schema(s).

        Raises :class:`TypeMismatchError` / :class:`UnknownAttributeError`
        when the expression cannot run against tuples of those schemas.
        """
        scope = SchemaScope(default=schema, qualifiers=qualified or None)
        return self.root.infer_type(scope)

    def check_boolean(
        self,
        schema: "StreamSchema | None" = None,
        **qualified: StreamSchema,
    ) -> None:
        """Assert the expression is a boolean condition over the schema(s)."""
        result = self.type_check(schema, **qualified)
        if result is not AttributeType.BOOL:
            raise TypeMismatchError(
                f"condition {self.source!r} has type {result.value}, expected bool"
            )

    def attributes(self) -> set[tuple[str, str]]:
        return self.root.attributes()

    def unparse(self) -> str:
        return self.root.unparse()


def compile_expression(
    source: str, functions: "FunctionRegistry | None" = None
) -> CompiledExpression:
    """Parse ``source`` into a reusable :class:`CompiledExpression`."""
    return CompiledExpression(
        source=source,
        root=parse(source),
        functions=functions or DEFAULT_FUNCTIONS,
    )
