"""Compilation of condition-language ASTs to Python closures.

The interpreter in :mod:`repro.expr.eval` walks the AST per evaluation —
an isinstance-dispatch per node per tuple.  Non-blocking operators "are
directly applied on each tuple", so that walk is the hottest code in the
data plane.  This module lowers a parsed AST once into a plain Python
function of ``(values, qualified)`` and lets CPython's bytecode do the
per-tuple work.

The lowering performs three optimisations:

- **constant folding**: any subtree without attribute references is
  evaluated once at compile time (with the reference interpreter, so
  folding can never change semantics) and embedded as a constant; a
  subtree whose evaluation *fails* is left dynamic so the error still
  surfaces at evaluation time, exactly like the interpreter.  Registry
  functions are assumed pure, which the built-in registry guarantees.
- **pre-resolved function lookups**: ``Call`` nodes bind the registry
  implementation at compile time instead of a name+arity lookup per call;
  unknown names/arities fall back to a runtime ``registry.call`` so the
  error and its message stay identical.
- **pre-split qualified refs**: ``left.temp`` becomes two pre-bound dict
  probes instead of string handling per evaluation.

The compiled closure preserves the interpreter's **error taxonomy and
messages** bit-for-bit: the same :class:`ExpressionError` subclass with
the same text is raised for the same input, in the same operand order.
``tests/property/test_prop_compile_parity.py`` pins this equivalence on
random ASTs and payloads.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import (
    EvaluationError,
    ExpressionError,
    StreamLoaderError,
    UnknownAttributeError,
    UnknownFunctionError,
)
from repro.expr.ast import AttributeRef, BinaryOp, Call, Literal, Node, UnaryOp
from repro.expr.functions import FunctionRegistry

#: Sentinel distinguishing "attribute absent" from "attribute is None".
_MISSING = object()


# -- runtime helpers (cold paths of the generated code) ----------------------
#
# The generated code only calls into these on failure; the success path is
# pure bytecode.  Messages replicate repro.expr.eval exactly.


def _missing_attr(name: str) -> None:
    raise UnknownAttributeError(f"no attribute {name!r} in tuple")


def _unbound_qualifier(qualifier: str) -> None:
    raise UnknownAttributeError(f"unbound qualifier {qualifier!r}")


def _missing_qualified(qualifier: str, name: str) -> None:
    raise UnknownAttributeError(f"no attribute {qualifier}.{name}")


def _not_bool(value: object, op: str) -> None:
    raise EvaluationError(f"'{op}' needs a boolean, got {value!r}")


def _not_number(value: object, op: str) -> None:
    raise EvaluationError(f"'{op}' needs a number, got {value!r}")


def _compare_failed(left: object, op: str, right: object, exc: Exception) -> None:
    raise EvaluationError(f"cannot compare {left!r} {op} {right!r}: {exc}") from exc


def _in_needs_strings(left: object, right: object) -> None:
    raise EvaluationError(f"'in' needs strings, got {left!r} in {right!r}")


def _division_by_zero(rendered: str, exc: Exception) -> None:
    raise EvaluationError(f"division by zero: {rendered}") from exc


def _call_failed(name: str, args: list, exc: Exception) -> None:
    raise EvaluationError(f"{name}({args}) failed: {exc}") from exc


def _unknown_operator(op: str) -> None:
    raise EvaluationError(f"unknown operator {op!r}")


def _unknown_node(type_name: str) -> None:
    raise EvaluationError(f"unknown AST node {type_name}")


#: Globals shared by every compiled closure.
_BASE_ENV = {
    "_M": _MISSING,
    "_ExpressionError": ExpressionError,
    "_StreamLoaderError": StreamLoaderError,
    "_missing_attr": _missing_attr,
    "_unbound_qualifier": _unbound_qualifier,
    "_missing_qualified": _missing_qualified,
    "_not_bool": _not_bool,
    "_not_number": _not_number,
    "_compare_failed": _compare_failed,
    "_in_needs_strings": _in_needs_strings,
    "_division_by_zero": _division_by_zero,
    "_call_failed": _call_failed,
    "_unknown_operator": _unknown_operator,
    "_unknown_node": _unknown_node,
    "isinstance": isinstance,
    "int": int,
    "float": float,
    "str": str,
    "TypeError": TypeError,
    "ValueError": ValueError,
    "ZeroDivisionError": ZeroDivisionError,
    "OverflowError": OverflowError,
    "__builtins__": {},
}

#: Marker for "operand value unknown until evaluation".
_DYNAMIC = object()


class _Emitter:
    """Accumulates generated statements and the constant pool."""

    def __init__(self, functions: FunctionRegistry) -> None:
        self.functions = functions
        self.lines: list[str] = []
        self.consts: dict[str, object] = {}
        #: expression string -> compile-time-known value, for guard
        #: specialisation (skip checks that can never fire, emit
        #: unconditional raises for checks that always fire).
        self.known: dict[str, object] = {}
        self._counter = 0

    # -- plumbing ---------------------------------------------------------

    def temp(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"

    def const(self, value: object) -> str:
        """Inline simple constants; pool everything else.

        Floats go through the pool: ``repr`` of ``inf``/``nan`` (possible
        results of folding) is not a valid literal.
        """
        if value is None or value is True or value is False:
            expr = repr(value)
        elif isinstance(value, int):
            expr = f"({value!r})"
        elif isinstance(value, str):
            expr = repr(value)
        else:
            expr = f"_c{len(self.consts)}"
            self.consts[expr] = value
        self.known[expr] = value
        return expr

    def value_of(self, expr: str) -> object:
        return self.known.get(expr, _DYNAMIC)

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    # -- inline guards ----------------------------------------------------

    def _guard_bool(self, indent: int, var: str, op: str) -> bool:
        """Require a boolean; returns False when the guard always raises."""
        value = self.value_of(var)
        if value is _DYNAMIC:
            self.line(
                indent,
                f"if {var} is not True and {var} is not False: "
                f"_not_bool({var}, {op!r})",
            )
            return True
        if isinstance(value, bool):
            return True
        self.line(indent, f"_not_bool({var}, {op!r})")
        return False

    def _guard_number(self, indent: int, var: str, op: str) -> bool:
        """Require a number; returns False when the guard always raises."""
        value = self.value_of(var)
        if value is _DYNAMIC:
            self.line(
                indent,
                f"if {var} is True or {var} is False or "
                f"not isinstance({var}, (int, float)): _not_number({var}, {op!r})",
            )
            return True
        if not isinstance(value, bool) and isinstance(value, (int, float)):
            return True
        self.line(indent, f"_not_number({var}, {op!r})")
        return False

    # -- node lowering -----------------------------------------------------

    def emit(self, node: Node, indent: int) -> str:
        """Lower ``node``; returns the expression/variable holding its value."""
        folded = self._try_fold(node)
        if folded is not None:
            return folded

        if isinstance(node, Literal):
            return self.const(node.value)
        if isinstance(node, AttributeRef):
            return self._emit_ref(node, indent)
        if isinstance(node, UnaryOp):
            return self._emit_unary(node, indent)
        if isinstance(node, BinaryOp):
            return self._emit_binary(node, indent)
        if isinstance(node, Call):
            return self._emit_call(node, indent)
        out = self.temp()
        self.line(indent, f"_unknown_node({type(node).__name__!r})")
        self.line(indent, f"{out} = None")
        return out

    def _try_fold(self, node: Node) -> "str | None":
        """Fold an attribute-free subtree via the reference interpreter.

        Only a *successful* evaluation folds; a failing subtree stays
        dynamic so its error is raised at evaluation time (and only if the
        surrounding short-circuit logic reaches it), like the interpreter.
        """
        if isinstance(node, Literal) or node.attributes():
            return None
        from repro.expr.eval import EvalContext, _evaluate

        try:
            value = _evaluate(node, EvalContext(), self.functions)
        except ExpressionError:
            return None
        return self.const(value)

    def _emit_ref(self, node: AttributeRef, indent: int) -> str:
        out = self.temp()
        if node.qualifier:
            payload = self.temp()
            self.line(indent, f"{payload} = _Q.get({node.qualifier!r})")
            self.line(
                indent,
                f"if {payload} is None: _unbound_qualifier({node.qualifier!r})",
            )
            self.line(indent, f"{out} = {payload}.get({node.name!r}, _M)")
            self.line(
                indent,
                f"if {out} is _M: "
                f"_missing_qualified({node.qualifier!r}, {node.name!r})",
            )
        else:
            self.line(indent, f"{out} = _V.get({node.name!r}, _M)")
            self.line(indent, f"if {out} is _M: _missing_attr({node.name!r})")
        return out

    def _emit_unary(self, node: UnaryOp, indent: int) -> str:
        operand = self.emit(node.operand, indent)
        out = self.temp()
        if node.op == "not":
            self._guard_bool(indent, operand, "not")
            self.line(indent, f"{out} = not {operand}")
        else:
            # The interpreter treats every non-'not' unary op as negation.
            self._guard_number(indent, operand, "-")
            self.line(indent, f"{out} = -{operand}")
        return out

    def _emit_binary(self, node: BinaryOp, indent: int) -> str:
        op = node.op
        if op in ("and", "or"):
            return self._emit_logical(node, indent)

        left = self.emit(node.left, indent)
        right = self.emit(node.right, indent)
        out = self.temp()

        if op in ("==", "!="):
            self.line(indent, f"{out} = {left} {op} {right}")
        elif op in ("<", "<=", ">", ">="):
            self._emit_ordered_compare(node, indent, left, right, out)
        elif op == "in":
            self.line(
                indent,
                f"if not isinstance({left}, str) or not isinstance({right}, str): "
                f"_in_needs_strings({left}, {right})",
            )
            self.line(indent, f"{out} = {left} in {right}")
        elif op == "+":
            self.line(
                indent, f"if isinstance({left}, str) and isinstance({right}, str):"
            )
            self.line(indent + 1, f"{out} = {left} + {right}")
            self.line(indent, "else:")
            self._guard_number(indent + 1, left, "+")
            self._guard_number(indent + 1, right, "+")
            self.line(indent + 1, f"{out} = {left} + {right}")
        elif op in ("-", "*"):
            self._guard_number(indent, left, op)
            self._guard_number(indent, right, op)
            self.line(indent, f"{out} = {left} {op} {right}")
        elif op in ("/", "%"):
            self._guard_number(indent, left, op)
            self._guard_number(indent, right, op)
            self.line(indent, "try:")
            self.line(indent + 1, f"{out} = {left} {op} {right}")
            self.line(indent, "except ZeroDivisionError as _e:")
            self.line(
                indent + 1,
                f"_division_by_zero({self.const(node.unparse())}, _e)",
            )
        else:
            # Unknown operator: operands evaluate first (interpreter order).
            self.line(indent, f"_unknown_operator({op!r})")
            self.line(indent, f"{out} = None")
        return out

    def _emit_ordered_compare(
        self, node: BinaryOp, indent: int, left: str, right: str, out: str
    ) -> None:
        """``< <= > >=``: None operands compare False, TypeError is wrapped.

        Both operands already ran, so compile-time-known sides only shrink
        the generated None checks — never the evaluation order.
        """
        lv, rv = self.value_of(left), self.value_of(right)
        if lv is None or rv is None:
            self.line(indent, f"{out} = False")
            return
        none_tests = [f"{var} is None" for var, val in ((left, lv), (right, rv))
                      if val is _DYNAMIC]
        body = indent
        if none_tests:
            self.line(indent, f"if {' or '.join(none_tests)}:")
            self.line(indent + 1, f"{out} = False")
            self.line(indent, "else:")
            body = indent + 1
        self.line(body, "try:")
        self.line(body + 1, f"{out} = {left} {node.op} {right}")
        self.line(body, "except TypeError as _e:")
        self.line(body + 1, f"_compare_failed({left}, {node.op!r}, {right}, _e)")

    def _emit_logical(self, node: BinaryOp, indent: int) -> str:
        op = node.op
        left = self.emit(node.left, indent)
        out = self.temp()
        if not self._guard_bool(indent, left, op):
            # Left always raises; the interpreter never reaches the right
            # operand, so neither does the generated code.
            self.line(indent, f"{out} = None")
            return out
        lv = self.value_of(left)
        shorts = lv is False if op == "and" else lv is True
        if shorts:
            self.line(indent, f"{out} = {'False' if op == 'and' else 'True'}")
            return out
        if isinstance(lv, bool):
            # Left is a known constant that does not short-circuit: the
            # result is the (guarded) right operand.
            right = self.emit(node.right, indent)
            self._guard_bool(indent, right, op)
            self.line(indent, f"{out} = {right}")
            return out
        short = "False" if op == "and" else "True"
        self.line(indent, f"if {left} is {'True' if op == 'and' else 'False'}:")
        right = self.emit(node.right, indent + 1)
        self._guard_bool(indent + 1, right, op)
        self.line(indent + 1, f"{out} = {right}")
        self.line(indent, "else:")
        self.line(indent + 1, f"{out} = {short}")
        return out

    def _emit_call(self, node: Call, indent: int) -> str:
        args = [self.emit(arg, indent) for arg in node.args]
        out = self.temp()
        arg_list = ", ".join(args)
        try:
            signature = self.functions.signature(node.name, len(node.args))
        except UnknownFunctionError:
            # Unknown name/arity: defer to the registry at evaluation time,
            # after the arguments ran, so the error (and any argument
            # error preceding it) matches the interpreter exactly.
            registry = self.const(self.functions)
            self.line(
                indent, f"{out} = {registry}.call({node.name!r}, [{arg_list}])"
            )
            return out
        impl = self.const(signature.impl)
        self.line(indent, "try:")
        self.line(indent + 1, f"{out} = {impl}({arg_list})")
        self.line(indent, "except _ExpressionError:")
        self.line(indent + 1, "raise")
        self.line(
            indent,
            "except (TypeError, ValueError, ZeroDivisionError, "
            "OverflowError, _StreamLoaderError) as _e:",
        )
        self.line(indent + 1, f"_call_failed({node.name!r}, [{arg_list}], _e)")
        return out


def compile_node(
    root: Node, functions: FunctionRegistry
) -> Callable[[dict, dict], object]:
    """Lower ``root`` to a closure ``f(values, qualified) -> result``.

    The closure is semantically identical to
    ``repro.expr.eval._evaluate(root, EvalContext(values, qualified),
    functions)`` including which :class:`ExpressionError` subclass (and
    message) is raised on malformed input.
    """
    emitter = _Emitter(functions)
    result = emitter.emit(root, 1)
    source = "\n".join(
        ["def _compiled(_V, _Q):"] + emitter.lines + [f"    return {result}"]
    )
    env = dict(_BASE_ENV)
    env.update(emitter.consts)
    exec(compile(source, "<expr-compile>", "exec"), env)
    closure = env["_compiled"]
    closure.__expr_source__ = source  # introspection / debugging aid
    return closure
