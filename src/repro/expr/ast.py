"""Typed AST of the condition language.

Nodes know how to pretty-print themselves (``unparse``); the parser/printer
pair round-trips, which the property tests exploit.  Type checking against
one or two stream schemas lives on the nodes too, so the dataflow validator
can reject a condition that references missing attributes or compares
incompatible types *before* anything is deployed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TypeMismatchError, UnknownAttributeError
from repro.schema.schema import StreamSchema
from repro.schema.types import AttributeType, common_type

#: Operators by family, used for both type checking and evaluation.
COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
LOGICAL_OPS = frozenset({"and", "or"})


class Node:
    """Base class of AST nodes."""

    def unparse(self) -> str:
        raise NotImplementedError

    def attributes(self) -> set[tuple[str, str]]:
        """All ``(qualifier, name)`` attribute references in the subtree."""
        raise NotImplementedError

    def infer_type(self, schemas: "SchemaScope") -> AttributeType:
        raise NotImplementedError


@dataclass(frozen=True)
class SchemaScope:
    """Name-resolution scope: an unqualified schema or qualified pair.

    Filter/trigger/virtual-property conditions run against a single schema
    (``qualifiers == {}``); join predicates run against two, addressed as
    ``left.attr`` / ``right.attr`` (or custom qualifier names).
    """

    default: "StreamSchema | None" = None
    qualifiers: "dict[str, StreamSchema] | None" = None

    def resolve(self, qualifier: str, name: str) -> AttributeType:
        if qualifier:
            table = (self.qualifiers or {}).get(qualifier)
            if table is None:
                known = ", ".join(sorted(self.qualifiers or {})) or "(none)"
                raise UnknownAttributeError(
                    f"unknown qualifier {qualifier!r}; known: {known}"
                )
            if name not in table:
                raise UnknownAttributeError(
                    f"no attribute {name!r} in {qualifier!r} "
                    f"(has: {', '.join(table.names)})"
                )
            return table.type_of(name)
        if self.default is None:
            raise UnknownAttributeError(
                f"unqualified attribute {name!r} used in a two-stream context; "
                f"qualify it (e.g. left.{name})"
            )
        if name not in self.default:
            raise UnknownAttributeError(
                f"no attribute {name!r} in schema (has: {', '.join(self.default.names)})"
            )
        return self.default.type_of(name)


@dataclass(frozen=True)
class Literal(Node):
    """A constant: number, string, boolean or null."""

    value: "int | float | str | bool | None"

    def unparse(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "\\'")
            return f"'{escaped}'"
        return repr(self.value)

    def attributes(self) -> set[tuple[str, str]]:
        return set()

    def infer_type(self, schemas: SchemaScope) -> AttributeType:
        if isinstance(self.value, bool):
            return AttributeType.BOOL
        if isinstance(self.value, int):
            return AttributeType.INT
        if isinstance(self.value, float):
            return AttributeType.FLOAT
        if isinstance(self.value, str):
            return AttributeType.STRING
        if self.value is None:
            # Null literal: usable where any nullable comparison occurs.
            return AttributeType.STRING
        raise TypeMismatchError(f"unsupported literal {self.value!r}")


@dataclass(frozen=True)
class AttributeRef(Node):
    """Reference to a tuple attribute, optionally qualified (``left.temp``)."""

    name: str
    qualifier: str = ""

    def unparse(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def attributes(self) -> set[tuple[str, str]]:
        return {(self.qualifier, self.name)}

    def infer_type(self, schemas: SchemaScope) -> AttributeType:
        return schemas.resolve(self.qualifier, self.name)


@dataclass(frozen=True)
class UnaryOp(Node):
    """``-x`` or ``not x``."""

    op: str
    operand: Node

    def unparse(self) -> str:
        if self.op == "not":
            # Outer parentheses keep 'not' (loosest unary) correctly bound
            # when this node is embedded in arithmetic or comparisons.
            return f"(not {self.operand.unparse()})"
        return f"({self.op}{self.operand.unparse()})"

    def attributes(self) -> set[tuple[str, str]]:
        return self.operand.attributes()

    def infer_type(self, schemas: SchemaScope) -> AttributeType:
        inner = self.operand.infer_type(schemas)
        if self.op == "not":
            if inner is not AttributeType.BOOL:
                raise TypeMismatchError(f"'not' needs a boolean, got {inner.value}")
            return AttributeType.BOOL
        if self.op == "-":
            if not inner.is_numeric:
                raise TypeMismatchError(f"unary '-' needs a number, got {inner.value}")
            return inner
        raise TypeMismatchError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class BinaryOp(Node):
    """Comparison, arithmetic, logical connective, or ``in``."""

    op: str
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"

    def attributes(self) -> set[tuple[str, str]]:
        return self.left.attributes() | self.right.attributes()

    def infer_type(self, schemas: SchemaScope) -> AttributeType:
        lt = self.left.infer_type(schemas)
        rt = self.right.infer_type(schemas)
        if self.op in LOGICAL_OPS:
            if lt is not AttributeType.BOOL or rt is not AttributeType.BOOL:
                raise TypeMismatchError(
                    f"'{self.op}' needs booleans, got {lt.value} and {rt.value}"
                )
            return AttributeType.BOOL
        if self.op in COMPARISON_OPS:
            common = common_type(lt, rt)  # raises on incomparable
            if self.op not in ("==", "!=") and not common.is_orderable:
                raise TypeMismatchError(
                    f"'{self.op}' needs orderable operands, got {common.value}"
                )
            return AttributeType.BOOL
        if self.op == "in":
            if rt is not AttributeType.STRING or lt is not AttributeType.STRING:
                raise TypeMismatchError("'in' tests substring: both sides string")
            return AttributeType.BOOL
        if self.op in ARITHMETIC_OPS:
            if self.op == "+" and lt is AttributeType.STRING and rt is AttributeType.STRING:
                return AttributeType.STRING
            if not lt.is_numeric or not rt.is_numeric:
                raise TypeMismatchError(
                    f"'{self.op}' needs numbers, got {lt.value} and {rt.value}"
                )
            if self.op == "/":
                return AttributeType.FLOAT
            return common_type(lt, rt)
        raise TypeMismatchError(f"unknown operator {self.op!r}")


@dataclass(frozen=True)
class Call(Node):
    """Function call, resolved against the function registry at check time."""

    name: str
    args: tuple[Node, ...]

    def unparse(self) -> str:
        inner = ", ".join(arg.unparse() for arg in self.args)
        return f"{self.name}({inner})"

    def attributes(self) -> set[tuple[str, str]]:
        refs: set[tuple[str, str]] = set()
        for arg in self.args:
            refs |= arg.attributes()
        return refs

    def infer_type(self, schemas: SchemaScope) -> AttributeType:
        from repro.expr.functions import DEFAULT_FUNCTIONS

        signature = DEFAULT_FUNCTIONS.signature(self.name, len(self.args))
        for index, (arg, expected) in enumerate(zip(self.args, signature.arg_types)):
            if expected is None:
                continue
            actual = arg.infer_type(schemas)
            if expected is AttributeType.FLOAT and actual.is_numeric:
                continue
            if actual is not expected:
                raise TypeMismatchError(
                    f"{self.name}() argument {index + 1} must be "
                    f"{expected.value}, got {actual.value}"
                )
        return signature.return_type


#: Public alias: an expression is any AST node.
Expression = Node
