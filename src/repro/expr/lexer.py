"""Tokenizer for the condition language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import LexError


class TokenKind(Enum):
    NUMBER = "number"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"  # and or not true false null in
    OP = "op"  # == != <= >= < > + - * / % .
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    EOF = "eof"


KEYWORDS = frozenset({"and", "or", "not", "true", "false", "null", "in"})

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_OPS = ("==", "!=", "<=", ">=")
_SINGLE_OPS = set("<>+-*/%.=")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}@{self.position})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; the result always ends with an EOF token.

    Raises :class:`repro.errors.LexError` on invalid characters, unclosed
    strings, or malformed numbers.
    """
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        c = source[i]
        if c.isspace():
            i += 1
            continue
        if c == "(":
            tokens.append(Token(TokenKind.LPAREN, c, i))
            i += 1
            continue
        if c == ")":
            tokens.append(Token(TokenKind.RPAREN, c, i))
            i += 1
            continue
        if c == ",":
            tokens.append(Token(TokenKind.COMMA, c, i))
            i += 1
            continue
        if c in "'\"":
            end = source.find(c, i + 1)
            if end < 0:
                raise LexError("unclosed string literal", i)
            tokens.append(Token(TokenKind.STRING, source[i + 1 : end], i))
            i = end + 1
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                ch = source[j]
                if ch.isdigit():
                    j += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    # Only part of the number if followed by a digit —
                    # otherwise it is the attribute-qualifier dot.
                    if j + 1 < n and source[j + 1].isdigit():
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif ch in "eE" and not seen_exp and j + 1 < n and (
                    source[j + 1].isdigit()
                    or (source[j + 1] in "+-" and j + 2 < n and source[j + 2].isdigit())
                ):
                    seen_exp = True
                    j += 2 if source[j + 1] in "+-" else 1
                else:
                    break
            text = source[i:j]
            tokens.append(Token(TokenKind.NUMBER, text, i))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text.lower() in KEYWORDS else TokenKind.IDENT
            norm = text.lower() if kind is TokenKind.KEYWORD else text
            tokens.append(Token(kind, norm, i))
            i = j
            continue
        two = source[i : i + 2]
        if two in _MULTI_OPS:
            tokens.append(Token(TokenKind.OP, two, i))
            i += 2
            continue
        if c in _SINGLE_OPS:
            # Bare '=' is accepted as equality for user friendliness.
            text = "==" if c == "=" else c
            tokens.append(Token(TokenKind.OP, text, i))
            i += 1
            continue
        raise LexError(f"unexpected character {c!r}", i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
