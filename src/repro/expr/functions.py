"""Built-in function registry for the condition language.

Functions cover what the paper's Transform/Virtual-Property operators need:
math, strings, temporal extraction from virtual-time timestamps, spatial
distance, and unit-of-measure conversion.  Each entry declares a signature
(argument types, with ``None`` meaning "any"; FLOAT accepts any numeric) so
the type checker can validate calls statically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import EvaluationError, UnknownFunctionError
from repro.schema.types import AttributeType
from repro.stt.geo import haversine_m
from repro.stt.temporal import align_instant
from repro.stt.units import DEFAULT_UNITS


@dataclass(frozen=True)
class FunctionSignature:
    """Declared signature of a built-in function."""

    name: str
    arg_types: tuple["AttributeType | None", ...]
    return_type: AttributeType
    impl: Callable

    @property
    def arity(self) -> int:
        return len(self.arg_types)


class FunctionRegistry:
    """Name -> overload-set of :class:`FunctionSignature`."""

    def __init__(self) -> None:
        self._functions: dict[str, list[FunctionSignature]] = {}

    def register(
        self,
        name: str,
        arg_types: "tuple[AttributeType | None, ...]",
        return_type: AttributeType,
        impl: Callable,
    ) -> None:
        overloads = self._functions.setdefault(name.lower(), [])
        if any(len(sig.arg_types) == len(arg_types) for sig in overloads):
            raise UnknownFunctionError(
                f"function {name!r}/{len(arg_types)} already registered"
            )
        overloads.append(FunctionSignature(name.lower(), arg_types, return_type, impl))

    def signature(self, name: str, arity: int) -> FunctionSignature:
        overloads = self._functions.get(name.lower())
        if not overloads:
            known = ", ".join(sorted(self._functions))
            raise UnknownFunctionError(f"unknown function {name!r}; known: {known}")
        for sig in overloads:
            if sig.arity == arity:
                return sig
        arities = ", ".join(str(sig.arity) for sig in overloads)
        raise UnknownFunctionError(
            f"function {name!r} takes {arities} argument(s), not {arity}"
        )

    def call(self, name: str, args: list) -> object:
        from repro.errors import ExpressionError, StreamLoaderError

        sig = self.signature(name, len(args))
        try:
            return sig.impl(*args)
        except ExpressionError:
            raise
        except (
            TypeError,
            ValueError,
            ZeroDivisionError,
            OverflowError,
            StreamLoaderError,
        ) as exc:
            raise EvaluationError(f"{name}({args}) failed: {exc}") from exc

    def names(self) -> list[str]:
        return sorted(self._functions)


def _registry_with_builtins() -> FunctionRegistry:
    reg = FunctionRegistry()
    F = AttributeType.FLOAT
    I = AttributeType.INT
    S = AttributeType.STRING
    B = AttributeType.BOOL
    T = AttributeType.TIMESTAMP

    # Math.
    reg.register("abs", (F,), F, abs)
    reg.register("sqrt", (F,), F, math.sqrt)
    reg.register("floor", (F,), I, lambda x: int(math.floor(x)))
    reg.register("ceil", (F,), I, lambda x: int(math.ceil(x)))
    reg.register("round", (F,), I, lambda x: int(round(x)))
    reg.register("round", (F, I), F, lambda x, d: round(x, d))
    reg.register("pow", (F, F), F, math.pow)
    reg.register("exp", (F,), F, math.exp)
    reg.register("log", (F,), F, math.log)
    reg.register("min", (F, F), F, min)
    reg.register("max", (F, F), F, max)
    reg.register("clamp", (F, F, F), F, lambda x, lo, hi: min(max(x, lo), hi))

    # Strings.
    reg.register("upper", (S,), S, str.upper)
    reg.register("lower", (S,), S, str.lower)
    reg.register("trim", (S,), S, str.strip)
    reg.register("length", (S,), I, len)
    reg.register("contains", (S, S), B, lambda hay, needle: needle in hay)
    reg.register("startswith", (S, S), B, lambda s, p: s.startswith(p))
    reg.register("endswith", (S, S), B, lambda s, p: s.endswith(p))
    reg.register("replace", (S, S, S), S, lambda s, a, b: s.replace(a, b))
    reg.register("concat", (S, S), S, lambda a, b: a + b)
    reg.register("str", (None,), S, _to_string)

    # Temporal extraction: virtual-time seconds -> calendar components.
    reg.register("hour_of", (F,), I, lambda t: int(t % 86400.0 // 3600.0))
    reg.register("minute_of", (F,), I, lambda t: int(t % 3600.0 // 60.0))
    reg.register("day_of", (F,), I, lambda t: int(t // 86400.0))
    reg.register(
        "align", (F, S), F, lambda t, gran: align_instant(t, gran)
    )

    # Spatial.
    reg.register("distance_m", (F, F, F, F), F, haversine_m)

    # Unit conversion — the Transform family's headline capability.
    reg.register(
        "convert", (F, S, S), F, lambda v, src, dst: DEFAULT_UNITS.convert(v, src, dst)
    )

    # Validation helpers (the paper's "data conform to given validation
    # rules, e.g. dates conforming to given patterns").
    reg.register("matches", (S, S), B, _matches)
    reg.register("is_finite", (F,), B, math.isfinite)
    reg.register("between", (F, F, F), B, lambda x, lo, hi: lo <= x <= hi)

    # Conditionals / null handling.
    reg.register("if", (B, None, None), AttributeType.FLOAT, _if_impl)
    reg.register("coalesce", (None, None), AttributeType.FLOAT, _coalesce)
    return reg


def _to_string(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _matches(value: str, pattern: str) -> bool:
    import re

    try:
        return re.fullmatch(pattern, value) is not None
    except re.error as exc:
        raise EvaluationError(f"invalid pattern {pattern!r}: {exc}") from exc


def _if_impl(cond: bool, then_value: object, else_value: object) -> object:
    return then_value if cond else else_value


def _coalesce(first: object, second: object) -> object:
    return first if first is not None else second


#: Shared default registry.
DEFAULT_FUNCTIONS = _registry_with_builtins()
