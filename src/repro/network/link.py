"""Network links: latency, bandwidth, and traffic accounting.

Links are directed when used for delivery but registered symmetrically in
the topology.  Per-link byte counters feed the ablation benchmark comparing
in-network placement against centralized collection (total bytes moved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError

#: Link attributes that change which routes are valid/cheapest.
_ROUTING_ATTRS = frozenset({"up", "latency", "bandwidth"})


@dataclass
class Link:
    """A link between two nodes.

    Attributes:
        a, b: endpoint node ids.
        latency: one-way propagation delay in seconds.
        bandwidth: capacity in bytes/second.
        up: whether the link is usable (failure injection sets False).
    """

    a: str
    b: str
    latency: float = 0.001
    bandwidth: float = 10_000_000.0
    up: bool = True
    bytes_transferred: float = 0.0
    messages_transferred: int = 0
    #: Topology hook, set by ``Topology.add_link``: called when liveness
    #: or weights change so cached routes are invalidated.
    _on_routing_change: "Callable[[], None] | None" = field(
        default=None, repr=False, compare=False
    )

    def __setattr__(self, name: str, value: object) -> None:
        # Traffic counters are written per message; keep the non-routing
        # path to a frozenset probe plus a plain attribute store.
        if name in _ROUTING_ATTRS:
            state = self.__dict__
            hook = state.get("_on_routing_change")
            if hook is not None and state.get(name) != value:
                object.__setattr__(self, name, value)
                hook()
                return
        object.__setattr__(self, name, value)

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise NetworkError(f"link endpoints must differ: {self.a!r}")
        if self.latency < 0:
            raise NetworkError(f"link latency must be non-negative: {self.latency}")
        if self.bandwidth <= 0:
            raise NetworkError(f"link bandwidth must be positive: {self.bandwidth}")

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying the link."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def transfer_delay(self, size_bytes: float) -> float:
        """Propagation + transmission delay for a message of given size."""
        if size_bytes < 0:
            raise NetworkError(f"message size must be non-negative: {size_bytes}")
        return self.latency + size_bytes / self.bandwidth

    def account(self, size_bytes: float) -> None:
        """Record a transfer over this link."""
        # Hot path (one call per link per message): mutate the instance
        # dict directly to skip the routing-change __setattr__ probe —
        # counters never affect routing.
        state = self.__dict__
        state["bytes_transferred"] += size_bytes if size_bytes > 0.0 else 0.0
        state["messages_transferred"] += 1

    def connects(self, node_id: str) -> bool:
        return node_id in (self.a, self.b)

    def other_end(self, node_id: str) -> str:
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise NetworkError(f"node {node_id!r} is not an endpoint of {self.key}")

    def fail(self) -> None:
        self.up = False

    def recover(self) -> None:
        self.up = True
