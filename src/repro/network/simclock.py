"""Discrete-event simulation clock.

A classic event-heap simulator: callbacks scheduled at virtual times, run in
deterministic order (time, then insertion sequence).  The whole library is
driven by one clock instance — sensor emissions, blocking-operator window
flushes, message deliveries, monitor sampling, and SCN control decisions are
all just scheduled events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """One pending event in the heap (orderable by time, then sequence)."""

    time: float
    sequence: int
    callback: Callable = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set when the event is popped for execution — a late cancel() (e.g. a
    #: periodic's cancel fired from inside its own callback) must not count
    #: toward the owner's cancelled-entry tally, the entry already left the heap.
    done: bool = field(default=False, compare=False)
    owner: "SimClock | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Cancel the event; it is skipped when its time arrives."""
        if self.cancelled or self.done:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()


class SimClock:
    """Deterministic discrete-event clock.

    >>> clock = SimClock()
    >>> fired = []
    >>> _ = clock.schedule(5.0, lambda: fired.append(clock.now))
    >>> _ = clock.run_until(10.0)
    >>> fired
    [5.0]
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        #: Heap of (time, sequence, event) — a tuple head keeps heap
        #: sifting on C-level comparisons instead of ScheduledEvent.__lt__.
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._sequence = itertools.count()
        self._running = False
        #: Cancelled entries still sitting in the heap (lazy deletion).
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events.

        O(1): the clock tracks how many heap entries are lazily-deleted
        tombstones rather than scanning the heap.
        """
        return len(self._heap) - self._cancelled

    def _note_cancelled(self) -> None:
        """A live heap entry became a tombstone; compact if they dominate.

        Compaction is in place (``self._heap[:] = ...``) because ``run`` /
        ``run_until`` hold a local reference to the heap list while the
        clock is running — rebinding would desynchronize them.
        """
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap):
            self._heap[:] = [
                entry for entry in self._heap if not entry[2].cancelled
            ]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def schedule(self, delay: float, callback: Callable) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at (delay >= 0 implies time >= now): one less
        # frame on the simulator's hottest call.
        time = self._now + delay
        sequence = next(self._sequence)
        event = ScheduledEvent(time, sequence, callback, owner=self)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def schedule_at(self, time: float, callback: Callable) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        sequence = next(self._sequence)
        event = ScheduledEvent(time, sequence, callback, owner=self)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable,
        start_delay: "float | None" = None,
    ) -> Callable[[], None]:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        Returns a zero-argument cancel function.  The first firing happens
        after ``start_delay`` (default: one full interval).
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive: {interval}")
        state = {"event": None, "stopped": False}

        def fire() -> None:
            if state["stopped"]:
                return
            callback()
            if not state["stopped"]:
                state["event"] = self.schedule(interval, fire)

        first_delay = interval if start_delay is None else start_delay
        state["event"] = self.schedule(first_delay, fire)

        def cancel() -> None:
            state["stopped"] = True
            if state["event"] is not None:
                state["event"].cancel()

        return cancel

    def step(self) -> bool:
        """Run the next event; returns False when the heap is empty."""
        while self._heap:
            event_time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.done = True
            self._now = event_time
            event.callback()
            return True
        return False

    def run_until(self, time: float, max_events: int = 10_000_000) -> int:
        """Run all events scheduled strictly before/at ``time``.

        Advances the clock to exactly ``time`` afterwards.  Returns the
        number of events executed.  ``max_events`` guards against runaway
        self-rescheduling loops.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time} from {self._now}")
        if self._running:
            raise SimulationError("clock is already running (no re-entrant runs)")
        self._running = True
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                event_time = heap[0][0]
                if event_time > time:
                    break
                _, _, event = heappop(heap)
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event.done = True
                self._now = event_time
                event.callback()
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"run_until({time}) exceeded {max_events} events; "
                        f"likely a zero-delay rescheduling loop"
                    )
            self._now = time
        finally:
            self._running = False
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event heap drains.  Returns events executed."""
        if self._running:
            raise SimulationError("clock is already running (no re-entrant runs)")
        self._running = True
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            # step() inlined: one less Python frame per executed event.
            while heap:
                event_time, _, event = heappop(heap)
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event.done = True
                self._now = event_time
                event.callback()
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"run() exceeded {max_events} events; "
                        f"likely an unbounded periodic schedule"
                    )
        finally:
            self._running = False
        return executed
