"""Simulated programmable network.

The paper deploys StreamLoader on a physical programmable network at NICT.
This package substitutes a deterministic discrete-event simulation: compute
nodes with finite processing capacity, links with latency and bandwidth, a
routed topology, and a virtual clock that everything else in the library
(sensors, operators, pub-sub, SCN control) runs on.  The control logic the
paper demonstrates — workload-aware placement, migration, per-link traffic
accounting — executes unchanged against this substrate.
"""

from repro.network.simclock import SimClock, ScheduledEvent
from repro.network.node import NetworkNode
from repro.network.link import Link
from repro.network.topology import Topology
from repro.network.netsim import NetworkSimulator, Message
from repro.network.qos import QosClass, QosPolicy

__all__ = [
    "SimClock",
    "ScheduledEvent",
    "NetworkNode",
    "Link",
    "Topology",
    "NetworkSimulator",
    "Message",
    "QosClass",
    "QosPolicy",
]
