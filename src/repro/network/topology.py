"""Network topology: the graph of nodes and links, with routing.

Routing uses latency-weighted shortest paths over *live* nodes and links.
Routes are memoized behind a **generation counter**: any change that can
affect routing — adding nodes or links, a node or link going down or
coming back (including ``netsim.kill_node``/``revive_node``), a latency
change — bumps the generation and drops every cached route.  The
uncached computation stays available as :meth:`Topology.route_uncached`,
the oracle the route-cache property tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import NetworkError, UnknownNodeError, UnreachableError
from repro.network.link import Link
from repro.network.node import NetworkNode


@dataclass(frozen=True)
class RouteInfo:
    """A cached route with the per-hop data the simulator needs.

    ``links`` are the live :class:`Link` objects along ``path``, so a
    sender charges traffic without re-resolving each hop.  ``hops``
    additionally pre-extracts ``(latency, bandwidth, counters)`` per
    link for the delay/accounting loop; the snapshot stays valid because
    any latency/bandwidth/liveness change invalidates the cache entry.
    """

    path: tuple[str, ...]
    links: tuple[Link, ...]
    #: (latency, bandwidth, link.__dict__) per hop — the instance dict is
    #: shared with the Link, so counter writes land on the real object.
    hops: "tuple[tuple[float, float, dict], ...]" = ()


class Topology:
    """Undirected graph of :class:`NetworkNode` connected by :class:`Link`.

    ``cache_routes=False`` disables memoization (every call recomputes) —
    used by benchmarks to measure the uncached baseline and by tests to
    cross-check the cache.
    """

    def __init__(self, cache_routes: bool = True) -> None:
        self._graph = nx.Graph()
        self._nodes: dict[str, NetworkNode] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._cache_routes = cache_routes
        self._generation = 0
        #: (source, target) -> tuple path, or the UnreachableError message.
        self._route_cache: dict[tuple[str, str], "tuple[str, ...] | str"] = {}
        self._info_cache: dict[tuple[str, str], RouteInfo] = {}

    # -- cache invalidation --------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter of routing-relevant topology changes."""
        return self._generation

    def invalidate_routes(self) -> None:
        """Bump the generation and drop all memoized routes."""
        self._generation += 1
        self._route_cache.clear()
        self._info_cache.clear()

    # -- construction -------------------------------------------------------

    def add_node(self, node: "NetworkNode | str", **kwargs) -> NetworkNode:
        """Add a node (by object, or by id with NetworkNode kwargs)."""
        if isinstance(node, str):
            node = NetworkNode(node_id=node, **kwargs)
        if node.node_id in self._nodes:
            raise NetworkError(f"node {node.node_id!r} already in topology")
        self._nodes[node.node_id] = node
        self._graph.add_node(node.node_id)
        node._on_liveness_change = self.invalidate_routes
        self.invalidate_routes()
        return node

    def add_link(self, a: str, b: str, **kwargs) -> Link:
        """Connect two existing nodes with a link."""
        for node_id in (a, b):
            if node_id not in self._nodes:
                raise UnknownNodeError(f"unknown node {node_id!r}")
        link = Link(a=a, b=b, **kwargs)
        if link.key in self._links:
            raise NetworkError(f"link {link.key} already in topology")
        self._links[link.key] = link
        self._graph.add_edge(a, b)
        link._on_routing_change = self.invalidate_routes
        self.invalidate_routes()
        return link

    # -- lookups ---------------------------------------------------------------

    def node(self, node_id: str) -> NetworkNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"unknown node {node_id!r}") from None

    def link(self, a: str, b: str) -> Link:
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    @property
    def nodes(self) -> list[NetworkNode]:
        return list(self._nodes.values())

    @property
    def node_ids(self) -> list[str]:
        return list(self._nodes)

    @property
    def links(self) -> list[Link]:
        return list(self._links.values())

    def live_nodes(self) -> list[NetworkNode]:
        return [node for node in self._nodes.values() if node.up]

    def neighbors(self, node_id: str) -> list[str]:
        self.node(node_id)
        return sorted(self._graph.neighbors(node_id))

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- routing ----------------------------------------------------------------

    def _routing_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for node in self._nodes.values():
            if node.up:
                graph.add_node(node.node_id)
        for link in self._links.values():
            if link.up and link.a in graph and link.b in graph:
                graph.add_edge(link.a, link.b, weight=link.latency)
        return graph

    def route_uncached(self, source: str, target: str) -> list[str]:
        """Latency-shortest path of node ids from source to target.

        Only live nodes/links participate.  Raises
        :class:`repro.errors.UnreachableError` when no path exists.

        This is the uncached reference computation — it rebuilds the
        routing graph on every call.  :meth:`route` memoizes it.
        """
        for node_id in (source, target):
            node = self.node(node_id)
            if not node.up:
                raise UnreachableError(f"node {node_id!r} is down")
        if source == target:
            return [source]
        graph = self._routing_graph()
        try:
            return nx.shortest_path(graph, source, target, weight="weight")
        except nx.NetworkXNoPath:
            raise UnreachableError(
                f"no live route from {source!r} to {target!r}"
            ) from None

    def route(self, source: str, target: str) -> list[str]:
        """Memoized :meth:`route_uncached` (same result, same errors).

        Cache entries — both paths and "no live route" outcomes — live
        until the next routing-relevant change bumps the generation.
        Down-endpoint errors are rechecked per call (cheap, and the
        liveness hooks mean cached entries never describe a topology
        where either endpoint is down anyway).
        """
        if not self._cache_routes:
            return self.route_uncached(source, target)
        for node_id in (source, target):
            node = self.node(node_id)
            if not node.up:
                raise UnreachableError(f"node {node_id!r} is down")
        key = (source, target)
        cached = self._route_cache.get(key)
        if cached is None:
            try:
                cached = tuple(self.route_uncached(source, target))
            except UnreachableError as exc:
                cached = str(exc)
            self._route_cache[key] = cached
        if isinstance(cached, str):
            raise UnreachableError(cached)
        return list(cached)

    def route_info(self, source: str, target: str) -> RouteInfo:
        """The route plus its pre-resolved :class:`Link` objects, memoized.

        This is the simulator's hot path: ``NetworkSimulator.send`` needs
        every link along the path to compute delay and charge traffic, and
        resolving them via :meth:`link` per message dominates send cost.
        """
        key = (source, target)
        info = self._info_cache.get(key)
        if info is not None:
            # Endpoint liveness could only have changed via the hooks,
            # which would have cleared the cache — entries are fresh.
            return info
        path = self.route(source, target)
        links = tuple(self.link(a, b) for a, b in zip(path, path[1:]))
        info = RouteInfo(
            path=tuple(path),
            links=links,
            hops=tuple(
                (link.latency, link.bandwidth, link.__dict__)
                for link in links
            ),
        )
        if self._cache_routes:
            self._info_cache[key] = info
        return info

    def path_latency(self, path: list[str]) -> float:
        """Sum of link latencies along a node path."""
        return sum(
            self.link(a, b).latency for a, b in zip(path, path[1:])
        )

    def route_latency(self, source: str, target: str) -> float:
        info = self.route_info(source, target)
        return sum(link.latency for link in info.links)

    # -- convenience builders ----------------------------------------------------

    @classmethod
    def star(
        cls,
        center_id: str = "hub",
        leaf_count: int = 4,
        capacity: float = 1000.0,
        latency: float = 0.002,
        bandwidth: float = 10_000_000.0,
    ) -> "Topology":
        """A hub-and-spoke topology (one central node, N edge nodes)."""
        topo = cls()
        topo.add_node(center_id, capacity=capacity * 2)
        for index in range(leaf_count):
            leaf = f"edge-{index}"
            topo.add_node(leaf, capacity=capacity, region=f"region-{index}")
            topo.add_link(center_id, leaf, latency=latency, bandwidth=bandwidth)
        return topo

    @classmethod
    def grid(
        cls,
        rows: int = 3,
        cols: int = 3,
        capacity: float = 1000.0,
        latency: float = 0.002,
        bandwidth: float = 10_000_000.0,
    ) -> "Topology":
        """A rows x cols mesh (each node linked to right and down
        neighbours) — the multi-path topology for rerouting experiments."""
        if rows < 1 or cols < 1:
            raise NetworkError("grid topology needs positive dimensions")
        topo = cls()
        for r in range(rows):
            for c in range(cols):
                topo.add_node(
                    f"grid-{r}-{c}", capacity=capacity, region=f"row-{r}"
                )
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    topo.add_link(f"grid-{r}-{c}", f"grid-{r}-{c + 1}",
                                  latency=latency, bandwidth=bandwidth)
                if r + 1 < rows:
                    topo.add_link(f"grid-{r}-{c}", f"grid-{r + 1}-{c}",
                                  latency=latency, bandwidth=bandwidth)
        return topo

    @classmethod
    def line(
        cls,
        node_count: int = 4,
        capacity: float = 1000.0,
        latency: float = 0.002,
        bandwidth: float = 10_000_000.0,
    ) -> "Topology":
        """A chain topology node-0 — node-1 — ... — node-(n-1)."""
        if node_count < 1:
            raise NetworkError("line topology needs at least one node")
        topo = cls()
        for index in range(node_count):
            topo.add_node(
                f"node-{index}", capacity=capacity, region=f"region-{index}"
            )
        for index in range(node_count - 1):
            topo.add_link(
                f"node-{index}",
                f"node-{index + 1}",
                latency=latency,
                bandwidth=bandwidth,
            )
        return topo
