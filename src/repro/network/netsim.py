"""The network simulator: message delivery over the topology.

Combines the clock and the topology: a message sent between nodes is routed
over the latency-shortest live path, charged to every link it crosses, and
delivered via a scheduled callback after the accumulated propagation and
transmission delay.  This is the substrate the SCN configures and the
executor's operator processes communicate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import UnreachableError
from repro.network.qos import QosPolicy
from repro.network.simclock import SimClock
from repro.network.topology import Topology


@dataclass(frozen=True, slots=True)
class Message:
    """An in-flight network message."""

    source: str
    target: str
    payload: object
    size_bytes: float
    sent_at: float
    #: Payload units carried: 1 for a single tuple, batch length for a
    #: :class:`~repro.streams.tuple.TupleBatch`.  Keeps tuple-level traffic
    #: accounting honest when batching is on.
    units: int = 1


@dataclass
class _TrafficStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    #: Payload units (tuples), distinct from network messages — a batched
    #: message counts once in messages_* but ``len(batch)`` times here.
    tuples_sent: int = 0
    tuples_delivered: int = 0
    bytes_sent: float = 0.0
    total_delay: float = 0.0

    @property
    def mean_delay(self) -> float:
        if self.messages_delivered == 0:
            return 0.0
        return self.total_delay / self.messages_delivered


class NetworkSimulator:
    """Clock + topology + message routing.

    >>> topo = Topology.line(3)
    >>> sim = NetworkSimulator(topology=topo)
    >>> inbox = []
    >>> sim.send("node-0", "node-2", {"v": 1}, 100, inbox.append)
    >>> sim.clock.run()   # doctest: +SKIP
    """

    #: Which execution backend this transport belongs to.  The monitor
    #: surfaces it so a report is self-describing about what produced it.
    backend_name = "sim"

    def __init__(
        self,
        topology: "Topology | None" = None,
        clock: "SimClock | None" = None,
        default_qos: "QosPolicy | None" = None,
    ) -> None:
        self.topology = topology if topology is not None else Topology()
        self.clock = clock or SimClock()
        self.default_qos = default_qos or QosPolicy()
        self.stats = _TrafficStats()
        #: Called with (message, reason) whenever a message is dropped.
        self.on_drop: "Callable[[Message, str], None] | None" = None
        #: Observability tracer (``repro.obs.trace.Tracer``).  When set,
        #: every send whose payload carries a trace context records a
        #: ``transmit`` span covering the full propagation delay, and
        #: losses record ``drop`` spans.  ``None`` costs one attribute
        #: read per send.
        self.tracer = None
        #: Latency plane (``repro.obs.latency.LatencyPlane``).  When set,
        #: every non-local send increments the route's in-flight count and
        #: every delivery (or in-flight loss) decrements it — the link
        #: occupancy signal behind ``network_route_inflight``.  ``None``
        #: costs one attribute read per send.
        self.plane = None

    def send(
        self,
        source: str,
        target: str,
        payload: object,
        size_bytes: float,
        on_delivery: Callable[[object], None],
        qos: "QosPolicy | None" = None,
        on_drop: "Callable[[Message, str], None] | None" = None,
    ) -> "Message | None":
        """Route a message and schedule its delivery.

        Local sends (source == target) are delivered after a negligible
        scheduling delay, consistent with the in-process queues of
        co-located operators.  Returns the message, or None if it was
        dropped (no route, or latency budget exceeded).

        ``on_drop`` is a per-message loss callback invoked with
        ``(message, reason)`` whenever this particular message is dropped —
        at send time (no route, QoS budget) or at delivery time (target
        died in flight).  Senders that guarantee redelivery (the broker's
        retry path) hang their retry logic off it; the global
        :attr:`on_drop` hook still fires for every loss.
        """
        policy = qos or self.default_qos
        now = self.clock.now
        tracer = self.tracer
        ctx = getattr(payload, "trace", None) if tracer is not None else None
        stats = self.stats
        stats.messages_sent += 1
        stats.tuples_sent += 1
        stats.bytes_sent += size_bytes

        if source == target:
            if ctx is not None:
                span = tracer.span(
                    ctx, "transmit", now,
                    **{"from": source, "to": target},
                )
                payload = payload.with_trace(ctx.child_of(span))
            message = Message(source, target, payload, size_bytes, now)
            self._schedule_delivery(message, 0.0, on_delivery, on_drop)
            return message

        try:
            # Memoized route + pre-resolved links: the per-message cost is
            # a dict hit, not a routing-graph rebuild plus per-hop lookups.
            info = self.topology.route_info(source, target)
        except UnreachableError as exc:
            self._drop(
                Message(source, target, payload, size_bytes, now),
                str(exc), on_drop,
            )
            return None

        segments = policy.segments(size_bytes)
        per_segment = size_bytes / segments
        charge = size_bytes if size_bytes > 0.0 else 0.0
        delay = 0.0
        for latency, bandwidth, counters in info.hops:
            # Segments pipeline over the path: total time is dominated by
            # the per-hop latency plus the serialized transmission of all
            # segments on each hop.  Counter writes go straight to the
            # link's instance dict (same math and totals as Link.account).
            delay += latency + segments * (per_segment / bandwidth)
            counters["bytes_transferred"] += charge
            counters["messages_transferred"] += 1
        if delay > policy.max_latency:
            self._drop(
                Message(source, target, payload, size_bytes, now),
                f"route latency {delay:.4f}s exceeds QoS budget "
                f"{policy.max_latency}s",
                on_drop,
            )
            return None
        if ctx is not None:
            span = tracer.span(
                ctx, "transmit", now, now + delay,
                **{"from": source, "to": target,
                   "hops": len(info.hops), "bytes": size_bytes},
            )
            payload = payload.with_trace(ctx.child_of(span))
        message = Message(source, target, payload, size_bytes, now)
        if self.plane is not None:
            self.plane.link_send(source, target)
        self._schedule_delivery(message, delay, on_delivery, on_drop)
        return message

    def send_batch(
        self,
        source: str,
        target: str,
        batch: object,
        size_bytes: float,
        on_delivery: Callable[[object], None],
        qos: "QosPolicy | None" = None,
        on_drop: "Callable[[Message, str], None] | None" = None,
    ) -> "Message | None":
        """Route a whole micro-batch as one network message.

        The batch is routed once, links are charged its aggregate payload
        in a single pass, and one delivery event is scheduled per message —
        the per-message framing cost is amortized over ``len(batch)``
        tuples.  Loss semantics are all-or-nothing: a dropped batch fires
        ``on_drop`` once with a ``units=len(batch)`` message, so retry
        logic (the broker) can redeliver the whole run.

        ``batch`` is a :class:`~repro.streams.tuple.TupleBatch`;
        ``size_bytes`` its aggregate wire size (callers precompute it via
        ``estimate_batch_size_bytes`` so the simulator stays stream-agnostic).
        """
        policy = qos or self.default_qos
        now = self.clock.now
        units = len(batch)  # type: ignore[arg-type]
        stats = self.stats
        stats.messages_sent += 1
        stats.tuples_sent += units
        stats.bytes_sent += size_bytes

        if source == target:
            batch = self._trace_batch_transmit(batch, source, target, now, now)
            message = Message(source, target, batch, size_bytes, now, units)
            self._schedule_delivery(message, 0.0, on_delivery, on_drop)
            return message

        try:
            info = self.topology.route_info(source, target)
        except UnreachableError as exc:
            self._drop(
                Message(source, target, batch, size_bytes, now, units),
                str(exc), on_drop,
            )
            return None

        segments = policy.segments(size_bytes)
        per_segment = size_bytes / segments
        charge = size_bytes if size_bytes > 0.0 else 0.0
        delay = 0.0
        for latency, bandwidth, counters in info.hops:
            delay += latency + segments * (per_segment / bandwidth)
            counters["bytes_transferred"] += charge
            counters["messages_transferred"] += 1
        if delay > policy.max_latency:
            self._drop(
                Message(source, target, batch, size_bytes, now, units),
                f"route latency {delay:.4f}s exceeds QoS budget "
                f"{policy.max_latency}s",
                on_drop,
            )
            return None
        batch = self._trace_batch_transmit(
            batch, source, target, now, now + delay,
            hops=len(info.hops), size_bytes=size_bytes,
        )
        message = Message(source, target, batch, size_bytes, now, units)
        if self.plane is not None:
            self.plane.link_send(source, target)
        self._schedule_delivery(message, delay, on_delivery, on_drop)
        return message

    def _trace_batch_transmit(
        self,
        batch: object,
        source: str,
        target: str,
        start: float,
        end: float,
        hops: "int | None" = None,
        size_bytes: "float | None" = None,
    ) -> object:
        """Record a transmit span for every traced tuple in ``batch``.

        A :class:`TupleBatch` deliberately carries no trace of its own —
        sampling stays per tuple, so the sampling=0 path costs one ``any``
        scan only when a tracer is installed, and nothing at all otherwise.
        Returns the batch rebuilt with child contexts, or unchanged when no
        member is traced.
        """
        tracer = self.tracer
        if tracer is None or not any(t.trace is not None for t in batch):  # type: ignore[attr-defined]
            return batch
        attrs: dict[str, object] = {"from": source, "to": target, "batch": len(batch)}  # type: ignore[arg-type]
        if hops is not None:
            attrs["hops"] = hops
        if size_bytes is not None:
            attrs["bytes"] = size_bytes
        traced = []
        for tuple_ in batch:  # type: ignore[attr-defined]
            ctx = tuple_.trace
            if ctx is not None:
                span = tracer.span(ctx, "transmit", start, end, **attrs)
                tuple_ = tuple_.with_trace(ctx.child_of(span))
            traced.append(tuple_)
        # Payload-preserving clone: the wire-size memo rides along.
        return batch.with_traced(traced)  # type: ignore[attr-defined]

    def _schedule_delivery(
        self,
        message: Message,
        delay: float,
        on_delivery: Callable[[object], None],
        on_drop: "Callable[[Message, str], None] | None",
    ) -> None:
        """Hand a routed message to the delivery substrate.

        The seam between routing (shared by every backend: route lookup,
        QoS admission, link accounting, stats) and delivery.  Here the
        message becomes a clock event that fires :meth:`_deliver` after
        ``delay``; the asyncio backend overrides this to land the message
        in the target node's bounded queue at the same virtual instant.
        """
        self.clock.schedule(
            delay, lambda: self._deliver(message, on_delivery, on_drop)
        )

    def _deliver(
        self,
        message: Message,
        on_delivery: Callable[[object], None],
        on_drop: "Callable[[Message, str], None] | None" = None,
    ) -> None:
        if self.plane is not None and message.source != message.target:
            self.plane.link_done(message.source, message.target)
        # A node that died while the message was in flight loses it.
        node = self.topology._nodes.get(message.target)
        if node is not None and not node.up:
            self._drop(message, f"target node {message.target!r} is down", on_drop)
            return
        stats = self.stats
        stats.messages_delivered += 1
        stats.tuples_delivered += message.units
        stats.total_delay += self.clock.now - message.sent_at
        on_delivery(message.payload)

    def _drop(
        self,
        message: Message,
        reason: str,
        on_drop: "Callable[[Message, str], None] | None" = None,
    ) -> None:
        self.stats.messages_dropped += 1
        tracer = self.tracer
        if tracer is not None:
            ctx = getattr(message.payload, "trace", None)
            if ctx is not None:
                tracer.span(
                    ctx, "drop", self.clock.now, reason=reason,
                    **{"from": message.source, "to": message.target},
                )
            elif message.units > 1 or hasattr(message.payload, "tuples"):
                # A dropped batch records one drop span per traced member.
                for tuple_ in getattr(message.payload, "tuples", ()):
                    if tuple_.trace is not None:
                        tracer.span(
                            tuple_.trace, "drop", self.clock.now,
                            reason=reason, batch=message.units,
                            **{"from": message.source, "to": message.target},
                        )
        if on_drop is not None:
            on_drop(message, reason)
        if self.on_drop is not None:
            self.on_drop(message, reason)

    # -- fault injection ------------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        """Fail a node mid-run (fault-injection API).

        The node stops processing immediately: in-flight messages to it are
        lost at delivery time, routes stop traversing it, and its operator
        processes fall silent — which is what the monitor's heartbeat-based
        failure detector eventually notices.
        """
        self.topology.node(node_id).fail()

    def revive_node(self, node_id: str) -> None:
        """Bring a killed node back (it rejoins routing and processing)."""
        self.topology.node(node_id).recover()

    # -- traffic accounting ---------------------------------------------------

    def total_link_bytes(self) -> float:
        """Total bytes moved across all links (the in-network-vs-central
        ablation metric)."""
        return sum(link.bytes_transferred for link in self.topology.links)

    def reset_traffic_stats(self) -> None:
        self.stats = _TrafficStats()
        for link in self.topology.links:
            link.bytes_transferred = 0.0
            link.messages_transferred = 0
