"""QoS classes and policies.

The SCN layer "dynamically coordinates the network configurations, such as
data flows, segmentations, and QoS parameters" [ref 8].  We model QoS as a
small set of delivery classes plus a per-channel policy controlling message
segmentation (max payload size per message) and a drop policy under link
overload.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import NetworkError


class QosClass(Enum):
    """Delivery classes, from cheapest to most demanding."""

    BEST_EFFORT = "best-effort"
    RELIABLE = "reliable"
    REAL_TIME = "real-time"

    @classmethod
    def parse(cls, name: "str | QosClass") -> "QosClass":
        if isinstance(name, QosClass):
            return name
        key = name.strip().lower().replace("_", "-")
        for member in cls:
            if member.value == key:
                return member
        known = ", ".join(m.value for m in cls)
        raise NetworkError(f"unknown QoS class {name!r}; known: {known}")


@dataclass(frozen=True)
class QosPolicy:
    """Per-channel QoS configuration.

    Attributes:
        qos_class: delivery class.
        segment_bytes: maximum bytes per network message; larger payloads
            are split into ceil(size/segment_bytes) messages (the "segmen-
            tations" the SCN coordinates).
        priority: higher priorities win placement ties.
        max_latency: latency budget in seconds (REAL_TIME channels only;
            the SCN rejects routes whose latency exceeds it).
    """

    qos_class: QosClass = QosClass.BEST_EFFORT
    segment_bytes: int = 65536
    priority: int = 0
    max_latency: float = float("inf")

    def __post_init__(self) -> None:
        object.__setattr__(self, "qos_class", QosClass.parse(self.qos_class))
        if self.segment_bytes <= 0:
            raise NetworkError(
                f"segment_bytes must be positive: {self.segment_bytes}"
            )
        if self.max_latency <= 0:
            raise NetworkError(f"max_latency must be positive: {self.max_latency}")

    def segments(self, size_bytes: float) -> int:
        """Number of network messages needed for a payload of given size."""
        if size_bytes <= 0:
            return 1
        full, rem = divmod(int(size_bytes), self.segment_bytes)
        return full + (1 if rem else 0) or 1

    def describe(self) -> str:
        parts = [self.qos_class.value, f"segment={self.segment_bytes}"]
        if self.priority:
            parts.append(f"priority={self.priority}")
        if self.max_latency != float("inf"):
            parts.append(f"max_latency={self.max_latency}")
        return " ".join(parts)
