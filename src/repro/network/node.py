"""Compute nodes of the programmable network.

Each node "is in charge of managing a bunch of sensors and can execute the
proposed ETL stream processing operations" (Section 3).  A node has a finite
processing capacity in cost-units per second; operator processes placed on
it consume capacity proportional to their tuple rate, and the monitor reads
the resulting utilization to detect "the node that suffers because of high
workload".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError


@dataclass
class NetworkNode:
    """A machine in the simulated network.

    Attributes:
        node_id: unique identifier.
        capacity: processing capacity in cost-units per second.
        region: label used to co-locate sensors with their managing node.
        up: whether the node is alive (failure injection sets this False).
    """

    node_id: str
    capacity: float = 1000.0
    region: str = ""
    up: bool = True
    #: process id -> current demand (cost-units per second).
    _demands: dict[str, float] = field(default_factory=dict)
    #: cumulative cost-units of work executed.
    work_done: float = 0.0
    #: number of times this node has failed (fault-injection statistics).
    failures: int = 0
    #: Topology hook, set by ``Topology.add_node``: called whenever
    #: liveness flips so cached routes are invalidated — regardless of
    #: whether the flip came through :meth:`fail`/:meth:`recover` or a
    #: direct ``node.up = False``.
    _on_liveness_change: "Callable[[], None] | None" = field(
        default=None, repr=False, compare=False
    )

    def __setattr__(self, name: str, value: object) -> None:
        if name == "up":
            state = self.__dict__
            hook = state.get("_on_liveness_change")
            if hook is not None and state.get("up") != value:
                object.__setattr__(self, name, value)
                hook()
                return
        object.__setattr__(self, name, value)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise NetworkError("node_id must be non-empty")
        if self.capacity <= 0:
            raise NetworkError(f"node capacity must be positive: {self.capacity}")

    # -- load accounting ----------------------------------------------------

    def register_process(self, process_id: str, demand: float = 0.0) -> None:
        """Register an operator process placed on this node."""
        if process_id in self._demands:
            raise NetworkError(
                f"process {process_id!r} already placed on node {self.node_id!r}"
            )
        self._demands[process_id] = max(0.0, demand)

    def unregister_process(self, process_id: str) -> None:
        if process_id not in self._demands:
            raise NetworkError(
                f"process {process_id!r} is not on node {self.node_id!r}"
            )
        del self._demands[process_id]

    def update_demand(self, process_id: str, demand: float) -> None:
        """Set the current load (cost-units/s) a process puts on the node."""
        if process_id not in self._demands:
            raise NetworkError(
                f"process {process_id!r} is not on node {self.node_id!r}"
            )
        self._demands[process_id] = max(0.0, demand)

    def account_work(self, cost_units: float) -> None:
        """Record executed work (for cumulative per-node statistics).

        Runs once per received tuple/batch on every node — the write goes
        straight to the instance dict to skip the liveness-interception
        ``__setattr__`` (which only cares about ``up``).
        """
        if cost_units > 0.0:
            state = self.__dict__
            state["work_done"] = state["work_done"] + cost_units

    @property
    def processes(self) -> tuple[str, ...]:
        return tuple(self._demands)

    @property
    def load(self) -> float:
        """Total current demand in cost-units per second."""
        return sum(self._demands.values())

    @property
    def utilization(self) -> float:
        """Load as a fraction of capacity (may exceed 1.0 when overloaded)."""
        return self.load / self.capacity

    @property
    def headroom(self) -> float:
        """Remaining capacity in cost-units per second (floored at 0)."""
        return max(0.0, self.capacity - self.load)

    def is_overloaded(self, threshold: float = 1.0) -> bool:
        return self.utilization > threshold

    # -- failure injection ----------------------------------------------------

    def fail(self) -> None:
        """Take the node down; counted once per up->down transition."""
        if self.up:
            self.failures += 1
        self.up = False

    def recover(self) -> None:
        self.up = True
