"""DSN program model and textual rendering.

A DSN program declares *services* (sources, operators, sinks), *channels*
(typed message exchanges between services) and *controls* (trigger
activation edges), each with JSON-valued parameters::

    dsn "osaka-scenario" {
      service source "temp" {
        param filter = {"sensor_ids": ["osaka-temp-umeda"]};
        param active = true;
      }
      service operator "trig" kind "trigger-on" {
        param interval = 300.0;
        param condition = "avg_temperature > 25";
      }
      service sink "dw" kind "warehouse" {
        qos class "best-effort" segment 65536;
      }
      channel "temp" -> "trig" port 0;
      control "trig" -> "rain";
    }

Parameter values are JSON documents, which keeps the grammar small while
allowing arbitrarily structured operator parameters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import DsnError
from repro.network.qos import QosPolicy


class ServiceRole(Enum):
    SOURCE = "source"
    OPERATOR = "operator"
    SINK = "sink"

    @classmethod
    def parse(cls, name: str) -> "ServiceRole":
        for member in cls:
            if member.value == name:
                return member
        raise DsnError(f"unknown service role {name!r}")


@dataclass(frozen=True)
class DsnService:
    """One declared service."""

    role: ServiceRole
    name: str
    kind: str = ""
    params: "dict[str, object]" = field(default_factory=dict)
    qos: "QosPolicy | None" = None

    def render(self) -> str:
        head = f'  service {self.role.value} "{self.name}"'
        if self.kind:
            head += f' kind "{self.kind}"'
        lines = [head + " {"]
        for key in sorted(self.params):
            value = json.dumps(self.params[key], sort_keys=True)
            lines.append(f"    param {key} = {value};")
        if self.qos is not None:
            qos_line = (
                f'    qos class "{self.qos.qos_class.value}" '
                f"segment {self.qos.segment_bytes}"
            )
            if self.qos.priority:
                qos_line += f" priority {self.qos.priority}"
            if self.qos.max_latency != float("inf"):
                qos_line += f" max_latency {self.qos.max_latency}"
            lines.append(qos_line + ";")
        lines.append("  }")
        return "\n".join(lines)


@dataclass(frozen=True)
class DsnChannel:
    """A data channel between two services (into an input port).

    ``batch`` is the micro-batch hint: how many tuples the channel's
    source should coalesce per message (1 = no batching).  The translator
    derives it from declared sensor frequencies; the executor applies it
    to the deployed sources.
    """

    source: str
    target: str
    port: int = 0
    batch: int = 1

    def render(self) -> str:
        line = f'  channel "{self.source}" -> "{self.target}" port {self.port}'
        if self.batch != 1:
            # Only rendered when set, so batch-free programs (and their
            # golden files) keep the historical textual form.
            line += f" batch {self.batch}"
        return line + ";"


@dataclass(frozen=True)
class DsnShard:
    """A scale-out directive: deploy a blocking operator as N replicas.

    Deployment metadata, not dataflow semantics — the conceptual flow is
    unchanged; the executor fans the service out into ``count`` shard
    processes partitioned on ``keys`` (one attribute for a group-by
    aggregation; the left and right equi-join attributes for a join) plus
    a merge stage.  ``count=1`` is legal and means "no fan-out".
    """

    service: str
    count: int
    keys: tuple[str, ...] = ()
    #: Attach the load-feedback rebalance loop: keys may migrate between
    #: shards (and hot keys split) at runtime instead of staying pinned
    #: to their hash slot.
    elastic: bool = False

    def render(self) -> str:
        line = f'  shard "{self.service}" {self.count}'
        if self.keys:
            line += " by " + ", ".join(f'"{key}"' for key in self.keys)
        if self.elastic:
            line += " elastic"
        return line + ";"


@dataclass(frozen=True)
class DsnFuse:
    """An operator-fusion hint: host a chain of non-blocking operators
    in one process.

    Deployment metadata, not dataflow semantics — the conceptual flow is
    unchanged; the executor runs the ``members`` chain as a single
    :class:`~repro.streams.fused.FusedOperator` process, eliding the
    interior publish/transmit/deliver hops.  A program without ``fuse``
    clauses still fuses by default (the planner derives maximal chains at
    deploy time); an explicit clause pins the plan.
    """

    members: tuple[str, ...]

    def render(self) -> str:
        chain = " -> ".join(f'"{member}"' for member in self.members)
        return f"  fuse {chain};"


@dataclass(frozen=True)
class DsnSlo:
    """A service-level objective declared against the deployment.

    Deployment metadata, not dataflow semantics: the executor turns each
    clause into an :class:`~repro.obs.alerts.AlertRule` (and installs the
    latency plane to feed it).  ``flow`` is a scope label carried into the
    alert events — usually the dataflow's name.  The clause states the
    *healthy* objective; the alert fires while it is violated::

        slo "osaka" p99_latency < 5.0 over 60;
        slo "osaka" watermark_lag < 450 over 0;

    ``window`` is the rolling evaluation window in seconds (0 =
    instantaneous; for latency quantiles a positive window computes the
    quantile over only that window's observations — the burn-rate form).
    """

    flow: str
    metric: str
    op: str
    threshold: float
    window: float = 0.0

    def render(self) -> str:
        return (
            f'  slo "{self.flow}" {self.metric} {self.op} '
            f"{self.threshold:g} over {self.window:g};"
        )


@dataclass(frozen=True)
class DsnControl:
    """A control edge: a trigger service governing a source service."""

    trigger: str
    source: str

    def render(self) -> str:
        return f'  control "{self.trigger}" -> "{self.source}";'


@dataclass
class DsnProgram:
    """A complete DSN description of one dataflow deployment."""

    name: str
    services: list[DsnService] = field(default_factory=list)
    channels: list[DsnChannel] = field(default_factory=list)
    controls: list[DsnControl] = field(default_factory=list)
    shards: list[DsnShard] = field(default_factory=list)
    fuses: list[DsnFuse] = field(default_factory=list)
    slos: list[DsnSlo] = field(default_factory=list)

    def service(self, name: str) -> DsnService:
        for service in self.services:
            if service.name == name:
                return service
        raise DsnError(f"no service {name!r} in program {self.name!r}")

    def services_by_role(self, role: ServiceRole) -> list[DsnService]:
        return [service for service in self.services if service.role is role]

    def channels_into(self, name: str) -> list[DsnChannel]:
        return sorted(
            (channel for channel in self.channels if channel.target == name),
            key=lambda channel: channel.port,
        )

    def channels_out_of(self, name: str) -> list[DsnChannel]:
        return [channel for channel in self.channels if channel.source == name]

    def check(self) -> None:
        """Structural sanity: channel/control endpoints must be declared."""
        names = {service.name for service in self.services}
        if len(names) != len(self.services):
            raise DsnError(f"program {self.name!r} declares duplicate services")
        for channel in self.channels:
            for endpoint in (channel.source, channel.target):
                if endpoint not in names:
                    raise DsnError(
                        f"channel references undeclared service {endpoint!r}"
                    )
        for control in self.controls:
            for endpoint in (control.trigger, control.source):
                if endpoint not in names:
                    raise DsnError(
                        f"control references undeclared service {endpoint!r}"
                    )
        sharded = set()
        for shard in self.shards:
            if shard.service not in names:
                raise DsnError(
                    f"shard references undeclared service {shard.service!r}"
                )
            if self.service(shard.service).role is not ServiceRole.OPERATOR:
                raise DsnError(
                    f"shard target {shard.service!r} is not an operator"
                )
            if shard.count < 1:
                raise DsnError(
                    f"shard count for {shard.service!r} must be >= 1, "
                    f"got {shard.count}"
                )
            if shard.service in sharded:
                raise DsnError(
                    f"duplicate shard directive for {shard.service!r}"
                )
            sharded.add(shard.service)
        fused = set()
        for fuse in self.fuses:
            if len(fuse.members) < 2:
                raise DsnError(
                    f"fuse hint {list(fuse.members)!r} needs at least 2 "
                    "services"
                )
            for member in fuse.members:
                if member not in names:
                    raise DsnError(
                        f"fuse references undeclared service {member!r}"
                    )
                if self.service(member).role is not ServiceRole.OPERATOR:
                    raise DsnError(
                        f"fuse member {member!r} is not an operator"
                    )
                if member in fused:
                    raise DsnError(
                        f"service {member!r} appears in more than one "
                        "fuse hint"
                    )
                fused.add(member)
        for slo in self.slos:
            if slo.op not in ("<", "<=", ">", ">="):
                raise DsnError(
                    f"slo for {slo.flow!r}: unknown comparator {slo.op!r}"
                )
            if slo.window < 0:
                raise DsnError(
                    f"slo for {slo.flow!r}: window must be >= 0, "
                    f"got {slo.window}"
                )

    def render(self) -> str:
        """The canonical textual form (stable: services/edges in order)."""
        lines = [f'dsn "{self.name}" {{']
        for service in self.services:
            lines.append(service.render())
        for channel in self.channels:
            lines.append(channel.render())
        for control in self.controls:
            lines.append(control.render())
        # Shards and fuse hints render last so programs without them (and
        # their golden files) keep the historical textual form.
        for shard in self.shards:
            lines.append(shard.render())
        for fuse in self.fuses:
            lines.append(fuse.render())
        for slo in self.slos:
            lines.append(slo.render())
        lines.append("}")
        return "\n".join(lines) + "\n"
