"""SCN: the network control layer that actuates DSN programs.

Responsibilities, following [ref 8] and Section 3 of the paper:

1. **Service discovery** — resolve each source service's filter against
   the pub-sub registry into concrete sensors (and their managing nodes).
2. **Placement** — assign every operator/sink service to a network node
   "depending on workload": a greedy score balancing current node load
   against the network distance to the service's upstream nodes, so
   operators land near their data (in-network processing).
3. **QoS admission** — reject placements whose route latency exceeds a
   channel's ``max_latency`` budget.
4. **Dynamic coordination** — given live load readings, propose
   migrations off overloaded nodes; the executor applies them and the
   monitor logs "when the assignment changes".

The controller is deliberately stateless between calls except for its
migration history — all load truth lives in the topology's nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlacementError, ScnError
from repro.dsn.ast import DsnProgram, DsnService, ServiceRole
from repro.network.topology import Topology
from repro.pubsub.registry import SensorMetadata, SensorRegistry
from repro.pubsub.subscription import SubscriptionFilter


@dataclass(frozen=True)
class PlacementDecision:
    """Where one service runs, and why."""

    service: str
    node_id: str
    score: float
    reason: str


@dataclass(frozen=True)
class Migration:
    """A proposed move of a running service to another node."""

    service: str
    from_node: str
    to_node: str
    reason: str


def _filter_from_params(params: dict) -> SubscriptionFilter:
    from repro.dataflow.serialize import _filter_from_dict

    return _filter_from_dict(params.get("filter", {}))


class ScnController:
    """Interprets DSN programs against a topology + registry."""

    def __init__(
        self,
        topology: Topology,
        overload_threshold: float = 0.9,
        load_weight: float = 1.0,
        distance_weight: float = 120.0,
    ) -> None:
        self.topology = topology
        self.overload_threshold = overload_threshold
        self.load_weight = load_weight
        self.distance_weight = distance_weight
        self.migrations: list[Migration] = []
        #: Optional :class:`repro.obs.Tracer`; placement decisions are
        #: recorded as control-plane events when set (by the executor).
        self.tracer: "object | None" = None

    # -- service discovery ---------------------------------------------------

    def discover(
        self, program: DsnProgram, registry: SensorRegistry
    ) -> dict[str, list[SensorMetadata]]:
        """Resolve each source service to its concrete sensors."""
        bindings: dict[str, list[SensorMetadata]] = {}
        for service in program.services_by_role(ServiceRole.SOURCE):
            filter_ = _filter_from_params(service.params)
            matches = [
                metadata
                for metadata in registry.all()
                if filter_.matches(metadata)
            ]
            if not matches:
                raise ScnError(
                    f"service discovery failed: source {service.name!r} "
                    f"matches no published sensor"
                )
            bindings[service.name] = sorted(matches, key=lambda m: m.sensor_id)
        return bindings

    # -- placement ----------------------------------------------------------------

    def place(
        self,
        program: DsnProgram,
        bindings: dict[str, list[SensorMetadata]],
        demands: "dict[str, float] | None" = None,
    ) -> dict[str, PlacementDecision]:
        """Assign every operator and sink service to a node.

        ``demands`` optionally estimates each service's load (cost-units/s)
        so placement can account for it; unknown services default to a
        nominal demand.  Placement walks services in channel-topological
        order so upstream locations are known when a service is scored.
        """
        program.check()
        demands = demands or {}
        placements: dict[str, PlacementDecision] = {}
        #: service name -> node(s) its output is produced on.
        locations: dict[str, list[str]] = {}

        for name, sensors in bindings.items():
            nodes = sorted({metadata.node_id for metadata in sensors})
            locations[name] = nodes
            placements[name] = PlacementDecision(
                service=name,
                node_id=nodes[0],
                score=0.0,
                reason=f"source bound to sensors on {', '.join(nodes)}",
            )

        #: Projected extra load per node from this deployment.
        projected: dict[str, float] = {}

        for service in self._topological_services(program):
            if service.role is ServiceRole.SOURCE:
                continue
            upstream_nodes: list[str] = []
            for channel in program.channels_into(service.name):
                upstream_nodes.extend(locations.get(channel.source, []))
            decision = self._score_nodes(
                service, upstream_nodes, demands.get(service.name, 1.0), projected
            )
            placements[service.name] = decision
            projected[decision.node_id] = projected.get(
                decision.node_id, 0.0
            ) + demands.get(service.name, 1.0)
            locations[service.name] = [decision.node_id]
        if self.tracer is not None:
            for decision in placements.values():
                self.tracer.event(
                    "placement",
                    service=decision.service,
                    node=decision.node_id,
                    score=decision.score,
                    reason=decision.reason,
                )
        return placements

    def _topological_services(self, program: DsnProgram) -> list[DsnService]:
        import networkx as nx

        graph = nx.DiGraph()
        for service in program.services:
            graph.add_node(service.name)
        for channel in program.channels:
            graph.add_edge(channel.source, channel.target)
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            raise ScnError(
                f"program {program.name!r} has cyclic channels"
            ) from None
        by_name = {service.name: service for service in program.services}
        return [by_name[name] for name in order]

    def replace_service(
        self,
        service_name: str,
        upstream_nodes: list[str],
        demand: float,
        avoid: "set[str] | None" = None,
    ) -> PlacementDecision:
        """Re-place one displaced service on a surviving node.

        The failure-recovery entry point: same scoring as initial
        placement (load plus network distance to the upstream nodes), over
        live nodes minus ``avoid`` (the dead node, in case it races the
        liveness flag).  Raises :class:`PlacementError` when no live node
        remains.
        """
        service = DsnService(
            role=ServiceRole.OPERATOR, name=service_name, kind="recovered"
        )
        decision = self._score_nodes(
            service, upstream_nodes, demand, projected={}, avoid=avoid
        )
        if self.tracer is not None:
            self.tracer.event(
                "replacement",
                service=decision.service,
                node=decision.node_id,
                score=decision.score,
                avoided=", ".join(sorted(avoid)) if avoid else "",
            )
        return decision

    def place_shards(
        self,
        service_name: str,
        count: int,
        upstream_nodes: list[str],
        demand: float,
        projected: "dict[str, float] | None" = None,
        avoid: "set[str] | None" = None,
    ) -> list[PlacementDecision]:
        """Place ``count`` shard replicas of one service, spread out.

        Each shard gets the same scoring as :meth:`_score_nodes` but the
        pool excludes nodes already holding an earlier shard of the same
        service (falling back to reuse only when ``count`` exceeds the
        number of distinct live nodes) — co-locating shards would erase
        the parallelism sharding exists to buy.  ``demand`` is the
        per-shard load estimate.  Raises :class:`PlacementError` when no
        live node remains or every candidate is capacity-exhausted.
        """
        projected = dict(projected or {})
        pool = [
            node
            for node in self.topology.live_nodes()
            if not avoid or node.node_id not in avoid
        ]
        if not pool:
            raise PlacementError(
                f"no live nodes to place shards of {service_name!r}"
            )
        decisions: list[PlacementDecision] = []
        used: set[str] = set()
        for index in range(count):
            candidates = [node for node in pool if node.node_id not in used]
            if not candidates:
                # More shards than nodes: start packing.
                candidates = pool
            eligible = [
                node
                for node in candidates
                if (node.load + projected.get(node.node_id, 0.0) + demand)
                <= node.capacity
            ]
            if not eligible:
                raise PlacementError(
                    f"capacity exhausted placing shard {index} of "
                    f"{service_name!r}: no candidate node can absorb "
                    f"demand {demand:g}"
                )
            best: "tuple[float, str] | None" = None
            for node in sorted(eligible, key=lambda n: n.node_id):
                load = node.load + projected.get(node.node_id, 0.0) + demand
                utilization = load / node.capacity
                distance = 0.0
                for upstream in upstream_nodes:
                    try:
                        distance += self.topology.route_latency(
                            upstream, node.node_id
                        )
                    except Exception:
                        distance += 10.0
                score = (self.load_weight * utilization
                         + self.distance_weight * distance)
                if best is None or score < best[0]:
                    best = (score, node.node_id)
            assert best is not None
            score, node_id = best
            decision = PlacementDecision(
                service=f"{service_name}#{index}",
                node_id=node_id,
                score=score,
                reason=f"shard {index}/{count}, spread over live nodes",
            )
            decisions.append(decision)
            used.add(node_id)
            projected[node_id] = projected.get(node_id, 0.0) + demand
            if self.tracer is not None:
                self.tracer.event(
                    "placement",
                    service=decision.service,
                    node=decision.node_id,
                    score=decision.score,
                    reason=decision.reason,
                )
        return decisions

    def _score_nodes(
        self,
        service: DsnService,
        upstream_nodes: list[str],
        demand: float,
        projected: dict[str, float],
        avoid: "set[str] | None" = None,
    ) -> PlacementDecision:
        candidates = [
            node
            for node in self.topology.live_nodes()
            if not avoid or node.node_id not in avoid
        ]
        if not candidates:
            raise PlacementError(f"no live nodes to place {service.name!r}")
        best: "tuple[float, str] | None" = None
        for node in sorted(candidates, key=lambda n: n.node_id):
            load = node.load + projected.get(node.node_id, 0.0) + demand
            utilization = load / node.capacity
            distance = 0.0
            for upstream in upstream_nodes:
                try:
                    distance += self.topology.route_latency(
                        upstream, node.node_id
                    )
                except Exception:
                    distance += 10.0  # unreachable upstream: heavy penalty
            score = self.load_weight * utilization + self.distance_weight * distance
            if best is None or score < best[0]:
                best = (score, node.node_id)
        assert best is not None
        score, node_id = best
        return PlacementDecision(
            service=service.name,
            node_id=node_id,
            score=score,
            reason=(
                f"min(load*{self.load_weight} + "
                f"latency*{self.distance_weight}) over live nodes"
            ),
        )

    # -- QoS admission ----------------------------------------------------------

    def admit_qos(
        self, program: DsnProgram, placements: dict[str, PlacementDecision]
    ) -> None:
        """Verify every sink channel's latency budget against the routes."""
        for service in program.services_by_role(ServiceRole.SINK):
            if service.qos is None or service.qos.max_latency == float("inf"):
                continue
            for channel in program.channels_into(service.name):
                src = placements[channel.source].node_id
                dst = placements[service.name].node_id
                latency = self.topology.route_latency(src, dst)
                if latency > service.qos.max_latency:
                    raise ScnError(
                        f"QoS admission failed: route {src}->{dst} for sink "
                        f"{service.name!r} has latency {latency:.4f}s, over "
                        f"the {service.qos.max_latency}s budget"
                    )

    # -- dynamic coordination ------------------------------------------------------

    def suggest_migrations(
        self,
        placements: dict[str, PlacementDecision],
        service_demands: dict[str, float],
        pinned: "set[str] | None" = None,
    ) -> list[Migration]:
        """Moves that relieve overloaded nodes.

        For each node over the overload threshold, the heaviest movable
        service hosted there is moved to the live node with the most
        headroom (if that actually helps).  Source services are pinned to
        their sensors' nodes and never move.
        """
        pinned = pinned or set()
        moves: list[Migration] = []
        hosted: dict[str, list[str]] = {}
        for name, decision in placements.items():
            hosted.setdefault(decision.node_id, []).append(name)

        for node in sorted(
            self.topology.live_nodes(), key=lambda n: -n.utilization
        ):
            if node.utilization <= self.overload_threshold:
                continue
            movable = [
                name
                for name in hosted.get(node.node_id, [])
                if name not in pinned and service_demands.get(name, 0.0) > 0.0
            ]
            if not movable:
                continue
            victim = max(movable, key=lambda name: service_demands.get(name, 0.0))
            demand = service_demands.get(victim, 0.0)
            targets = [
                other
                for other in self.topology.live_nodes()
                if other.node_id != node.node_id
            ]
            if not targets:
                continue
            target = max(targets, key=lambda n: n.headroom)
            if target.headroom < demand:
                continue  # nowhere with room; migration would not help
            migration = Migration(
                service=victim,
                from_node=node.node_id,
                to_node=target.node_id,
                reason=(
                    f"node {node.node_id!r} at {node.utilization:.0%} "
                    f"utilization (> {self.overload_threshold:.0%})"
                ),
            )
            moves.append(migration)
            self.migrations.append(migration)
        return moves
