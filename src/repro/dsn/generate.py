"""Translator: validated conceptual dataflow -> DSN program.

"Once the dataflow is consistent (i.e. it can be soundly activated at
network level), the translation is automatically invoked."  The translator
therefore *refuses* inconsistent dataflows: it validates first and raises
:class:`repro.errors.ValidationError` with the canvas issues.
"""

from __future__ import annotations

from repro.dataflow.graph import Dataflow
from repro.dataflow.serialize import _filter_to_dict
from repro.dataflow.validate import validate_dataflow
from repro.dsn.ast import (
    DsnChannel,
    DsnControl,
    DsnFuse,
    DsnProgram,
    DsnService,
    DsnShard,
    DsnSlo,
    ServiceRole,
)
from repro.errors import DataflowError
from repro.pubsub.registry import SensorRegistry


def dataflow_to_dsn(
    flow: Dataflow,
    registry: "SensorRegistry | None" = None,
    validate: bool = True,
    batch_delay: "float | None" = None,
    max_batch: int = 32,
    shards: "int | dict[str, int] | None" = None,
    elastic: bool = False,
    fuse: bool = False,
    slos: "list[DsnSlo] | None" = None,
) -> DsnProgram:
    """Translate a (consistent) dataflow into its DSN program.

    Args:
        flow: the conceptual dataflow.
        registry: resolves source filters during validation (and, with
            ``batch_delay``, supplies the declared sensor frequencies the
            batch hints are derived from).
        validate: skip validation only for flows validated immediately
            before (the designer's deploy path validates once).
        batch_delay: target per-batch latency budget in seconds.  When
            set, each channel out of a source gets a ``batch`` hint of
            roughly ``frequency x batch_delay`` tuples (the batch a source
            fills within the budget at its advertised rate), clamped to
            [1, ``max_batch``].  ``None`` (the default) emits no hints, so
            existing programs render unchanged.
        max_batch: upper clamp for derived batch hints.
        shards: scale-out directives for blocking operators.  An int
            applies to every *shardable* operator (one with partition
            keys — grouped aggregation, equi-join); operators that cannot
            shard are silently left alone.  A dict maps specific service
            names to shard counts and raises :class:`DataflowError` for a
            service that cannot honour it.  ``None`` emits no shard
            clauses, so existing programs render unchanged.
        elastic: mark every emitted shard clause ``elastic``, attaching
            the load-feedback rebalance loop at deploy time.  Ignored
            without ``shards``.
        fuse: emit explicit ``fuse`` hints for the chains the planner
            (:func:`repro.dataflow.fusion.plan_fusion`) would fuse,
            pinning the plan into the rendered program.  ``False`` (the
            default) emits no hints, so existing programs render
            unchanged — the executor still fuses by default at deploy
            time; the escape hatch there is ``deploy(..., fuse=False)``.
        slos: service-level objective clauses to attach verbatim.  The
            executor turns each into an alert rule and installs the
            latency plane at deploy time.  ``None`` (the default) emits no
            clauses, so existing programs render unchanged.
    """
    if validate:
        validate_dataflow(flow, registry).raise_if_invalid()

    program = DsnProgram(name=flow.name)

    for source in flow.sources.values():
        program.services.append(
            DsnService(
                role=ServiceRole.SOURCE,
                name=source.node_id,
                kind="sensor-stream",
                params={
                    "filter": _filter_to_dict(source.filter),
                    "active": source.initially_active,
                },
            )
        )
    for node in flow.operators.values():
        spec_dict = node.spec.to_dict()
        kind = spec_dict.pop("kind")
        program.services.append(
            DsnService(
                role=ServiceRole.OPERATOR,
                name=node.node_id,
                kind=kind,
                params=spec_dict,
            )
        )
    for sink in flow.sinks.values():
        program.services.append(
            DsnService(
                role=ServiceRole.SINK,
                name=sink.node_id,
                kind=sink.sink_kind,
                params={"config": dict(sink.config)},
                qos=sink.qos,
            )
        )

    batch_hints: dict[str, int] = {}
    if batch_delay is not None and registry is not None:
        for source in flow.sources.values():
            rate = sum(
                metadata.frequency
                for metadata in registry.all()
                if source.filter.matches(metadata)
            )
            hint = int(round(rate * batch_delay))
            batch_hints[source.node_id] = max(1, min(max_batch, hint))

    for edge in flow.data_edges:
        program.channels.append(
            DsnChannel(
                source=edge.source_id,
                target=edge.target_id,
                port=edge.port,
                batch=batch_hints.get(edge.source_id, 1),
            )
        )
    for edge in flow.control_edges:
        program.controls.append(
            DsnControl(trigger=edge.trigger_id, source=edge.source_id)
        )

    if shards is not None:
        requested = (
            shards if isinstance(shards, dict)
            else {name: shards for name in flow.operators}
        )
        explicit = isinstance(shards, dict)
        for name in sorted(requested):
            count = requested[name]
            node = flow.operators.get(name)
            if node is None:
                raise DataflowError(
                    f"shards requested for unknown operator {name!r}"
                )
            keys = node.spec.partition_keys()
            if keys is None:
                if explicit:
                    raise DataflowError(
                        f"operator {name!r} ({node.spec.kind}) cannot be "
                        "sharded: it has no partition key"
                    )
                continue  # blanket request skips unshardable operators
            if count > 1:
                program.shards.append(
                    DsnShard(service=name, count=count, keys=keys,
                             elastic=elastic)
                )

    if fuse:
        from repro.dataflow.fusion import plan_fusion

        program.fuses = [
            DsnFuse(members=chain) for chain in plan_fusion(program)
        ]

    if slos:
        program.slos = list(slos)

    program.check()
    return program


def dsn_to_dataflow(program: DsnProgram) -> Dataflow:
    """Inverse translation: DSN program -> conceptual dataflow.

    Lets the designer re-open a deployed flow on the canvas from nothing
    but its DSN text (the deployment artifact): ``dsn_to_dataflow`` ∘
    ``dataflow_to_dsn`` reconstructs a structurally identical canvas
    (source schemas are re-resolved from the registry at validation, as
    with document loading).
    """
    from repro.dataflow.ops import spec_from_dict
    from repro.dataflow.serialize import _filter_from_dict

    program.check()
    flow = Dataflow(program.name)
    for service in program.services:
        if service.role is ServiceRole.SOURCE:
            flow.add_source(
                _filter_from_dict(service.params.get("filter", {})),
                node_id=service.name,
                initially_active=bool(service.params.get("active", True)),
            )
        elif service.role is ServiceRole.OPERATOR:
            spec = spec_from_dict({"kind": service.kind, **service.params})
            flow.add_operator(spec, node_id=service.name)
        else:
            from repro.network.qos import QosPolicy

            flow.add_sink(
                sink_kind=service.kind or "collector",
                config=dict(service.params.get("config", {})),
                qos=service.qos or QosPolicy(),
                node_id=service.name,
            )
    for channel in program.channels:
        flow.connect(channel.source, channel.target, channel.port)
    for control in program.controls:
        flow.connect_control(control.trigger, control.source)
    return flow
