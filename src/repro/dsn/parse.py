"""Parser for the textual DSN language.

Inverse of :meth:`repro.dsn.ast.DsnProgram.render`; ``parse_dsn(p.render())``
reconstructs an equal program (property-tested).  The grammar is line-
oriented: every statement ends with ``;`` or a brace, parameter values are
JSON documents (which may contain ``;`` and braces, so values are scanned
with JSON-aware quoting rather than naive splitting).
"""

from __future__ import annotations

import json
import re

from repro.errors import DsnParseError
from repro.dsn.ast import (
    DsnChannel,
    DsnControl,
    DsnFuse,
    DsnProgram,
    DsnService,
    DsnShard,
    DsnSlo,
    ServiceRole,
)
from repro.network.qos import QosPolicy

_HEADER_RE = re.compile(r'^dsn\s+"((?:[^"\\]|\\.)*)"\s*\{$')
_SERVICE_RE = re.compile(
    r'^service\s+(source|operator|sink)\s+"((?:[^"\\]|\\.)*)"'
    r'(?:\s+kind\s+"((?:[^"\\]|\\.)*)")?\s*\{$'
)
_PARAM_RE = re.compile(r"^param\s+([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+);$")
_QOS_RE = re.compile(
    r'^qos\s+class\s+"((?:[^"\\]|\\.)*)"\s+segment\s+(\d+)'
    r"(?:\s+priority\s+(-?\d+))?(?:\s+max_latency\s+([0-9.eE+-]+))?;$"
)
_CHANNEL_RE = re.compile(
    r'^channel\s+"((?:[^"\\]|\\.)*)"\s*->\s*"((?:[^"\\]|\\.)*)"\s+port\s+(\d+)'
    r"(?:\s+batch\s+(\d+))?;$"
)
_CONTROL_RE = re.compile(
    r'^control\s+"((?:[^"\\]|\\.)*)"\s*->\s*"((?:[^"\\]|\\.)*)";$'
)
_SHARD_RE = re.compile(
    r'^shard\s+"((?:[^"\\]|\\.)*)"\s+(\d+)'
    r'(?:\s+by\s+("(?:[^"\\]|\\.)*"(?:\s*,\s*"(?:[^"\\]|\\.)*")*))?'
    r'(?:\s+(elastic))?;$'
)
_SHARD_KEY_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
_FUSE_RE = re.compile(
    r'^fuse\s+("(?:[^"\\]|\\.)*"(?:\s*->\s*"(?:[^"\\]|\\.)*")+);$'
)
_SLO_RE = re.compile(
    r'^slo\s+"((?:[^"\\]|\\.)*)"\s+([A-Za-z_][A-Za-z0-9_]*)'
    r"\s+(<=|<|>=|>)\s+([0-9.eE+-]+)\s+over\s+([0-9.eE+-]+);$"
)


def _unescape(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")


def parse_dsn(text: str) -> DsnProgram:
    """Parse DSN text into a :class:`DsnProgram`.

    Raises :class:`repro.errors.DsnParseError` with the offending line
    number on malformed input.
    """
    lines = text.splitlines()
    program: "DsnProgram | None" = None
    current: "dict | None" = None
    closed = False

    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if closed:
            raise DsnParseError("content after closing brace", lineno)

        if program is None:
            match = _HEADER_RE.match(line)
            if not match:
                raise DsnParseError(
                    f'expected dsn "<name>" {{ header, got {line!r}', lineno
                )
            program = DsnProgram(name=_unescape(match.group(1)))
            continue

        if current is not None:
            if line == "}":
                program.services.append(
                    DsnService(
                        role=current["role"],
                        name=current["name"],
                        kind=current["kind"],
                        params=current["params"],
                        qos=current["qos"],
                    )
                )
                current = None
                continue
            match = _PARAM_RE.match(line)
            if match:
                try:
                    current["params"][match.group(1)] = json.loads(match.group(2))
                except json.JSONDecodeError as exc:
                    raise DsnParseError(
                        f"invalid JSON parameter value: {exc}", lineno
                    ) from exc
                continue
            match = _QOS_RE.match(line)
            if match:
                max_latency = match.group(4)
                current["qos"] = QosPolicy(
                    qos_class=_unescape(match.group(1)),
                    segment_bytes=int(match.group(2)),
                    priority=int(match.group(3) or 0),
                    max_latency=(
                        float(max_latency) if max_latency else float("inf")
                    ),
                )
                continue
            raise DsnParseError(f"unexpected service body line {line!r}", lineno)

        if line == "}":
            closed = True
            continue
        match = _SERVICE_RE.match(line)
        if match:
            current = {
                "role": ServiceRole.parse(match.group(1)),
                "name": _unescape(match.group(2)),
                "kind": _unescape(match.group(3) or ""),
                "params": {},
                "qos": None,
            }
            continue
        match = _CHANNEL_RE.match(line)
        if match:
            program.channels.append(
                DsnChannel(
                    source=_unescape(match.group(1)),
                    target=_unescape(match.group(2)),
                    port=int(match.group(3)),
                    batch=int(match.group(4) or 1),
                )
            )
            continue
        match = _CONTROL_RE.match(line)
        if match:
            program.controls.append(
                DsnControl(
                    trigger=_unescape(match.group(1)),
                    source=_unescape(match.group(2)),
                )
            )
            continue
        match = _SHARD_RE.match(line)
        if match:
            keys_text = match.group(3) or ""
            program.shards.append(
                DsnShard(
                    service=_unescape(match.group(1)),
                    count=int(match.group(2)),
                    keys=tuple(
                        _unescape(key)
                        for key in _SHARD_KEY_RE.findall(keys_text)
                    ),
                    elastic=match.group(4) is not None,
                )
            )
            continue
        match = _FUSE_RE.match(line)
        if match:
            program.fuses.append(
                DsnFuse(
                    members=tuple(
                        _unescape(member)
                        for member in _SHARD_KEY_RE.findall(match.group(1))
                    )
                )
            )
            continue
        match = _SLO_RE.match(line)
        if match:
            program.slos.append(
                DsnSlo(
                    flow=_unescape(match.group(1)),
                    metric=match.group(2),
                    op=match.group(3),
                    threshold=float(match.group(4)),
                    window=float(match.group(5)),
                )
            )
            continue
        raise DsnParseError(f"unexpected statement {line!r}", lineno)

    if program is None:
        raise DsnParseError("empty DSN document", 0)
    if current is not None:
        raise DsnParseError("unterminated service block", len(lines))
    if not closed:
        raise DsnParseError("missing closing brace", len(lines))
    program.check()
    return program
