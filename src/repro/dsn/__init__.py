"""Declarative Service Networking (DSN) and Service-Controlled Networking.

The paper builds on [Dong, Kimata, Zettsu 2014]: *"DSN provides a method to
model and describe a high-level network of information services for an
application, which includes service discovery, service monitoring,
execution control, and service message exchanges.  SCN aims at capturing
application requirements and requesting appropriate configuration to the
network platform ... interprets the DSN description and dynamically
coordinates the network configurations, such as data flows, segmentations,
and QoS parameters."*

Here DSN is a textual program generated from a validated conceptual
dataflow (:mod:`generate`), parsed back into a program model (:mod:`parse`,
round-trip tested), and interpreted by the :class:`repro.dsn.scn.ScnController`,
which performs service discovery against the pub-sub registry, workload-
aware placement onto the simulated network, QoS admission, and live
migration when nodes overload.
"""

from repro.dsn.ast import DsnProgram, DsnService, DsnChannel, DsnControl, ServiceRole
from repro.dsn.generate import dataflow_to_dsn, dsn_to_dataflow
from repro.dsn.parse import parse_dsn
from repro.dsn.scn import ScnController, PlacementDecision, Migration

__all__ = [
    "DsnProgram",
    "DsnService",
    "DsnChannel",
    "DsnControl",
    "ServiceRole",
    "dataflow_to_dsn",
    "dsn_to_dataflow",
    "parse_dsn",
    "ScnController",
    "PlacementDecision",
    "Migration",
]
