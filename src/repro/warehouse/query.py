"""Fluent queries with granularity roll-up over the event warehouse."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WarehouseError
from repro.stt.spatial import Box
from repro.stt.temporal import align_instant
from repro.stt.thematic import Theme
from repro.warehouse.facts import EventFact

_AGGREGATES = ("count", "avg", "sum", "min", "max")


@dataclass(frozen=True)
class RollupRow:
    """One row of a roll-up result."""

    group: tuple
    value: float
    count: int


class WarehouseQuery:
    """Filter facts, then count / fetch / roll up.

    >>> (warehouse.query()
    ...     .theme("weather/rain")
    ...     .time_range(0.0, 86400.0)
    ...     .rollup_time("hour", measure="rain_rate", agg="avg"))
    ... # doctest: +SKIP
    """

    def __init__(self, warehouse) -> None:
        self._warehouse = warehouse
        self._facts: list[EventFact] = list(warehouse.facts)

    # -- filters ------------------------------------------------------------

    def theme(self, theme: "Theme | str") -> "WarehouseQuery":
        keys = self._warehouse.theme_dim.keys_matching(theme)
        self._facts = [
            fact for fact in self._facts if any(k in keys for k in fact.theme_keys)
        ]
        return self

    def source(self, source: str) -> "WarehouseQuery":
        self._facts = [
            fact
            for fact in self._facts
            if self._warehouse.source_dim.member(fact.source_key) == source
        ]
        return self

    def time_range(self, start: float, end: float) -> "WarehouseQuery":
        if end < start:
            raise WarehouseError(f"time range end ({end}) precedes start ({start})")
        self._facts = [
            fact for fact in self._facts if start <= fact.event_time < end
        ]
        return self

    def area(self, box: Box) -> "WarehouseQuery":
        dim = self._warehouse.space_dim
        self._facts = [
            fact
            for fact in self._facts
            if box.contains(dim.cell(fact.space_key).center())
        ]
        return self

    def where_measure(
        self, name: str, minimum: float = float("-inf"), maximum: float = float("inf")
    ) -> "WarehouseQuery":
        self._facts = [
            fact
            for fact in self._facts
            if name in fact.measures and minimum <= fact.measures[name] <= maximum
        ]
        return self

    # -- terminals --------------------------------------------------------------

    def count(self) -> int:
        return len(self._facts)

    def facts(self) -> list[EventFact]:
        return list(self._facts)

    def measure_values(self, name: str) -> np.ndarray:
        return np.asarray(
            [fact.measures[name] for fact in self._facts if name in fact.measures],
            dtype=float,
        )

    # -- roll-ups ----------------------------------------------------------------

    def _aggregate(self, values: list[float], agg: str) -> float:
        if agg == "count":
            return float(len(values))
        if not values:
            return float("nan")
        array = np.asarray(values, dtype=float)
        if agg == "avg":
            return float(array.mean())
        if agg == "sum":
            return float(array.sum())
        if agg == "min":
            return float(array.min())
        return float(array.max())

    def _check_agg(self, agg: str) -> str:
        agg = agg.lower()
        if agg not in _AGGREGATES:
            raise WarehouseError(
                f"unknown aggregate {agg!r}; known: {', '.join(_AGGREGATES)}"
            )
        return agg

    def rollup_time(
        self, granularity: str, measure: str, agg: str = "avg"
    ) -> list[RollupRow]:
        """Group facts by temporal granule at ``granularity``; aggregate.

        Rolling *up* only: facts recorded at a coarser granularity than
        requested stay in their own (coarser) granule — their information
        cannot be split downward.
        """
        agg = self._check_agg(agg)
        groups: dict[float, list[float]] = {}
        counts: dict[float, int] = {}
        for fact in self._facts:
            if measure not in fact.measures and agg != "count":
                continue
            start = align_instant(fact.event_time, granularity)
            groups.setdefault(start, []).append(fact.measures.get(measure, 0.0))
            counts[start] = counts.get(start, 0) + 1
        return [
            RollupRow(group=(start,), value=self._aggregate(groups[start], agg),
                      count=counts[start])
            for start in sorted(groups)
        ]

    def rollup_space(
        self, granularity: str, measure: str, agg: str = "avg"
    ) -> list[RollupRow]:
        """Group facts by spatial cell at ``granularity``; aggregate."""
        from repro.stt.spatial import grid_cell_for

        agg = self._check_agg(agg)
        dim = self._warehouse.space_dim
        groups: dict[tuple[int, int], list[float]] = {}
        counts: dict[tuple[int, int], int] = {}
        for fact in self._facts:
            if measure not in fact.measures and agg != "count":
                continue
            cell = grid_cell_for(dim.cell(fact.space_key).center(), granularity)
            key = (cell.row, cell.col)
            groups.setdefault(key, []).append(fact.measures.get(measure, 0.0))
            counts[key] = counts.get(key, 0) + 1
        return [
            RollupRow(group=key, value=self._aggregate(groups[key], agg),
                      count=counts[key])
            for key in sorted(groups)
        ]

    def rollup_theme(self, measure: str, agg: str = "avg") -> list[RollupRow]:
        """Group facts by root theme; aggregate."""
        agg = self._check_agg(agg)
        dim = self._warehouse.theme_dim
        groups: dict[str, list[float]] = {}
        counts: dict[str, int] = {}
        for fact in self._facts:
            if measure not in fact.measures and agg != "count":
                continue
            roots = {Theme(dim.member(k)).root.path for k in fact.theme_keys}
            for root in roots or {"(none)"}:
                groups.setdefault(root, []).append(fact.measures.get(measure, 0.0))
                counts[root] = counts.get(root, 0) + 1
        return [
            RollupRow(group=(root,), value=self._aggregate(groups[root], agg),
                      count=counts[root])
            for root in sorted(groups)
        ]
