"""The warehouse loader: stream tuples -> dimensioned event facts.

The load path is exactly what a StreamLoader warehouse sink does in demo
part P2: each arriving tuple is split into numeric measures and textual
attributes, its STT stamp is interned into the time/space/theme/source
dimensions, and the fact is appended.  Malformed tuples (no numeric
measure and no attributes, or stampless) are quarantined and counted,
never raising into the stream.
"""

from __future__ import annotations

from repro.streams.tuple import SensorTuple
from repro.warehouse.dimensions import (
    SourceDimension,
    SpaceDimension,
    ThemeDimension,
    TimeDimension,
)
from repro.warehouse.facts import EventFact
from repro.warehouse.query import WarehouseQuery


class EventWarehouse:
    """An in-process multidimensional event store.

    >>> warehouse = EventWarehouse()
    >>> warehouse.load(some_tuple)          # doctest: +SKIP
    >>> warehouse.query().count()           # doctest: +SKIP
    """

    def __init__(self) -> None:
        self.time_dim = TimeDimension()
        self.space_dim = SpaceDimension()
        self.theme_dim = ThemeDimension()
        self.source_dim = SourceDimension()
        self.facts: list[EventFact] = []
        self.loaded = 0
        self.rejected = 0

    def load(
        self, tuple_: SensorTuple, value_attribute: "str | None" = None
    ) -> "EventFact | None":
        """Load one tuple; returns the fact, or None if quarantined.

        With ``value_attribute``, only that attribute becomes a measure
        (the sink's projection); otherwise every numeric attribute does.
        """
        measures: dict[str, float] = {}
        attributes: dict[str, object] = {}
        for name, value in tuple_.payload.items():
            if value_attribute is not None and name != value_attribute:
                attributes[name] = value
                continue
            if isinstance(value, bool):
                attributes[name] = value
            elif isinstance(value, (int, float)):
                measures[name] = float(value)
            elif value is None:
                continue
            else:
                attributes[name] = value
        if value_attribute is not None and value_attribute not in measures:
            self.rejected += 1
            return None
        if not measures and not attributes:
            self.rejected += 1
            return None

        stamp = tuple_.stamp
        fact = EventFact(
            fact_id=len(self.facts),
            time_key=self.time_dim.key_for(
                stamp.time, stamp.temporal_granularity.name
            ),
            space_key=self.space_dim.key_for(
                stamp.location, stamp.spatial_granularity.name
            ),
            source_key=self.source_dim.key_for(tuple_.source),
            theme_keys=tuple(
                self.theme_dim.key_for(theme) for theme in stamp.themes
            ),
            measures=measures,
            attributes=attributes,
            event_time=stamp.time,
        )
        self.facts.append(fact)
        self.loaded += 1
        return fact

    def query(self) -> WarehouseQuery:
        """Start a fluent query over the loaded facts."""
        return WarehouseQuery(self)

    def iter_rows(self):
        """Denormalised fact rows (dimension members joined back in).

        Yields dicts with the event time, granularity names, cell indices,
        source, themes, and the measure/attribute payload — the export
        format for downstream analysis tools.
        """
        for fact in self.facts:
            time_member = self.time_dim.member(fact.time_key)
            space_member = self.space_dim.member(fact.space_key)
            yield {
                "fact_id": fact.fact_id,
                "event_time": fact.event_time,
                "time_granularity": time_member.granularity,
                "granule_start": time_member.start,
                "space_granularity": space_member.granularity,
                "cell_row": space_member.row,
                "cell_col": space_member.col,
                "source": self.source_dim.member(fact.source_key),
                "themes": [self.theme_dim.member(k) for k in fact.theme_keys],
                "measures": dict(fact.measures),
                "attributes": dict(fact.attributes),
            }

    def to_csv(self, path: str) -> int:
        """Write the denormalised rows to a CSV file; returns row count.

        Measures become one column each (union over all facts); themes are
        joined with ``|``; non-scalar attributes are stringified.
        """
        import csv

        measure_names = sorted({
            name for fact in self.facts for name in fact.measures
        })
        attribute_names = sorted({
            name for fact in self.facts for name in fact.attributes
        })
        header = [
            "fact_id", "event_time", "time_granularity", "granule_start",
            "space_granularity", "cell_row", "cell_col", "source", "themes",
        ] + [f"m_{name}" for name in measure_names] + [
            f"a_{name}" for name in attribute_names
        ]
        count = 0
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            for row in self.iter_rows():
                record = [
                    row["fact_id"], row["event_time"],
                    row["time_granularity"], row["granule_start"],
                    row["space_granularity"], row["cell_row"],
                    row["cell_col"], row["source"], "|".join(row["themes"]),
                ]
                record += [row["measures"].get(name, "")
                           for name in measure_names]
                record += [row["attributes"].get(name, "")
                           for name in attribute_names]
                writer.writerow(record)
                count += 1
        return count

    def __len__(self) -> int:
        return len(self.facts)
