"""Conformed dimensions of the event warehouse.

Each dimension interns its members and hands out dense surrogate keys, the
classical star-schema mechanics.  Time and space members are *granules* —
the warehouse stores events at the granularity they arrived at and rolls
up along the granularity chains at query time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WarehouseError
from repro.stt.granularity import (
    spatial_granularity,
    temporal_granularity,
)
from repro.stt.spatial import (
    GridCell,
    Point,
    SpatialObject,
    grid_cell_for,
    representative_point,
)
from repro.stt.temporal import align_instant
from repro.stt.thematic import Theme


class _Interning:
    """Member -> surrogate key interning shared by all dimensions."""

    def __init__(self) -> None:
        self._keys: dict[object, int] = {}
        self._members: list[object] = []

    def intern(self, member: object) -> int:
        key = self._keys.get(member)
        if key is None:
            key = len(self._members)
            self._keys[member] = key
            self._members.append(member)
        return key

    def member(self, key: int) -> object:
        try:
            return self._members[key]
        except IndexError:
            raise WarehouseError(f"no dimension member with key {key}") from None

    def __len__(self) -> int:
        return len(self._members)


@dataclass(frozen=True)
class TimeMember:
    """One temporal granule: granularity name + aligned start."""

    granularity: str
    start: float


class TimeDimension(_Interning):
    """Granule members along the temporal granularity chain."""

    def key_for(self, time: float, granularity: "str") -> int:
        gran = temporal_granularity(granularity)
        return self.intern(TimeMember(gran.name, align_instant(time, gran)))

    def member(self, key: int) -> TimeMember:  # narrowed return type
        return super().member(key)  # type: ignore[return-value]


@dataclass(frozen=True)
class SpaceMember:
    """One spatial granule: granularity + cell indices (or a raw point)."""

    granularity: str
    row: int
    col: int


class SpaceDimension(_Interning):
    """Cell members along the spatial granularity chain.

    Point-granularity locations are interned at the finest gridded level
    (``block``) so every fact lands in some cell.
    """

    def key_for(self, location: SpatialObject, granularity: "str") -> int:
        gran = spatial_granularity(granularity)
        if gran.cell_meters <= 0:
            gran = spatial_granularity("block")
        point = representative_point(location)
        cell = grid_cell_for(point, gran)
        return self.intern(SpaceMember(cell.granularity.name, cell.row, cell.col))

    def member(self, key: int) -> SpaceMember:
        return super().member(key)  # type: ignore[return-value]

    def cell(self, key: int) -> GridCell:
        member = self.member(key)
        return GridCell(
            spatial_granularity(member.granularity), member.row, member.col
        )


class ThemeDimension(_Interning):
    """Theme members (paths)."""

    def key_for(self, theme: "Theme | str") -> int:
        resolved = theme if isinstance(theme, Theme) else Theme(theme)
        return self.intern(resolved.path)

    def member(self, key: int) -> str:
        return super().member(key)  # type: ignore[return-value]

    def keys_matching(self, theme: "Theme | str") -> set[int]:
        """Keys of all interned themes matching (sub/super) the given one."""
        target = theme if isinstance(theme, Theme) else Theme(theme)
        return {
            self._keys[path]
            for path in self._keys
            if Theme(path).matches(target)
        }


class SourceDimension(_Interning):
    """Producing sensor / derived-stream labels."""

    def key_for(self, source: str) -> int:
        return self.intern(source or "(unknown)")

    def member(self, key: int) -> str:
        return super().member(key)  # type: ignore[return-value]
