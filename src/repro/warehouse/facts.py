"""Fact records of the event warehouse."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EventFact:
    """One warehoused event.

    Attributes:
        fact_id: dense id in load order.
        time_key / space_key / source_key: dimension surrogate keys.
        theme_keys: keys of every theme stamped on the event.
        measures: numeric payload attributes (the analysable values).
        attributes: the non-numeric payload attributes, kept verbatim.
        event_time: raw (un-aligned) virtual time of the reading, for
            precise time-range filters.
    """

    fact_id: int
    time_key: int
    space_key: int
    source_key: int
    theme_keys: tuple[int, ...]
    measures: dict[str, float] = field(default_factory=dict)
    attributes: dict[str, object] = field(default_factory=dict)
    event_time: float = 0.0
