"""Event Data Warehouse (the paper's reference [6], reimplemented).

"The acquired data can be stored in a data-warehouse ... for further
analysis."  This is a multidimensional event store: facts are STT events
(measures extracted from tuple payloads) indexed by conformed time, space,
theme and source dimensions at explicit granularities, supporting the
roll-up queries an analyst would run after an emergency.
"""

from repro.warehouse.dimensions import (
    TimeDimension,
    SpaceDimension,
    ThemeDimension,
    SourceDimension,
)
from repro.warehouse.facts import EventFact
from repro.warehouse.loader import EventWarehouse
from repro.warehouse.query import WarehouseQuery

__all__ = [
    "TimeDimension",
    "SpaceDimension",
    "ThemeDimension",
    "SourceDimension",
    "EventFact",
    "EventWarehouse",
    "WarehouseQuery",
]
