"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``scenario``   — run the paper's Section 3 scenario and print the
  monitoring dashboard, trigger log, and warehouse roll-up;
- ``operators``  — list the Table 1 operator palette;
- ``validate``   — consistency-check a saved canvas document (JSON)
  against the Osaka fleet's registry;
- ``translate``  — print the DSN program of a saved canvas document;
- ``sensors``    — list the (simulated) sensor fleet with advertisements;
- ``trace``      — run a dataflow with tracing on and print span trees
  (slowest sink-reaching traces, or the trace of one tuple) with lineage;
- ``metrics``    — run the scenario and print the metrics registry in
  Prometheus text exposition (or JSON snapshot) form.
- ``health``     — run a dataflow under SLO rules and print the latency/
  watermark health screen (or its deterministic JSON payload).
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from repro.dataflow.serialize import dataflow_from_dict
from repro.dataflow.validate import validate_dataflow
from repro.designer.palette import OPERATOR_PALETTE
from repro.dsn.generate import dataflow_to_dsn
from repro.errors import StreamLoaderError
from repro.scenario import (
    build_stack,
    osaka_scenario_flow,
    sharded_aggregation_flow,
)


def _batching_from(args: argparse.Namespace):
    """--batch/--max-delay -> a BatchingPolicy (or None for batch=1)."""
    batch = getattr(args, "batch", 1)
    if batch <= 1:
        return None
    from repro.sensors.base import BatchingPolicy

    return BatchingPolicy(max_batch=batch,
                          max_delay=getattr(args, "max_delay", 1.0))


def _shards_from(args: argparse.Namespace):
    """--shards -> the blanket shard count handed to deploy (or None).

    A blanket request only touches operators with partition keys, so on
    flows without one (the osaka scenario) it is a documented no-op; use
    the ``stations`` dataflow to see sharding in action.
    """
    shards = getattr(args, "shards", 1)
    return shards if shards > 1 else None


def _apply_rebalance(args: argparse.Namespace, stack) -> bool:
    """--rebalance/--split-hot-keys -> executor rebalance config.

    Returns the ``elastic`` flag handed to deploy.  ``--split-hot-keys``
    implies ``--rebalance`` (splitting is one of the loop's actions).
    """
    rebalance = getattr(args, "rebalance", False)
    split = getattr(args, "split_hot_keys", False)
    if not (rebalance or split):
        return False
    from dataclasses import replace

    stack.executor.rebalance_config = replace(
        stack.executor.rebalance_config, split_hot_keys=split
    )
    return True


def _backend_from(args: argparse.Namespace) -> dict:
    """``--backend``/``--time-scale`` -> build_stack keyword arguments."""
    return {
        "backend": getattr(args, "backend", "sim"),
        "time_scale": getattr(args, "time_scale", None),
    }


def _cmd_scenario(args: argparse.Namespace) -> int:
    stack = build_stack(hot=not args.cool, extended=args.extended,
                        seed=args.seed, batching=_batching_from(args),
                        **_backend_from(args))
    with stack:
        flow = osaka_scenario_flow(stack)
        deployment = stack.executor.deploy(flow, shards=_shards_from(args),
                                           elastic=_apply_rebalance(args, stack),
                                           fuse=not args.no_fuse,
                                           columnar=not args.no_columnar)
        stack.run_until(args.hours * 3600.0)

    print(stack.executor.monitor.render_dashboard())
    print()
    if stack.executor.monitor.control_log:
        for command in stack.executor.monitor.control_log:
            verb = "activated" if command.activate else "deactivated"
            print(f"t={command.issued_at / 3600.0:05.1f}h {verb} "
                  f"{len(command.sensor_ids)} sensor stream(s)")
    else:
        print("trigger never fired (no gated acquisition)")
    print()
    print(f"warehouse: {len(stack.warehouse)} events | "
          f"sticker: {stack.sticker.pushed} tuples | "
          f"traffic collected: "
          f"{len(deployment.collected('traffic-collector'))}")
    return 0


def _run_observed(args: argparse.Namespace):
    """Build, deploy, and run a dataflow with observability attached.

    ``args.dataflow`` is either the literal ``osaka`` (the Section 3
    scenario) or a path to a saved canvas JSON document.
    """
    stack = build_stack(
        hot=not getattr(args, "cool", False),
        extended=getattr(args, "extended", False),
        seed=getattr(args, "seed", 7),
        observability=args.sampling,
        batching=_batching_from(args),
        **_backend_from(args),
    )
    with stack:
        name = getattr(args, "dataflow", "osaka")
        if name == "osaka":
            flow = osaka_scenario_flow(stack)
        elif name == "stations":
            flow = sharded_aggregation_flow(stack)
        else:
            flow = _load_canvas(name)
        deployment = stack.executor.deploy(
            flow, shards=_shards_from(args),
            elastic=_apply_rebalance(args, stack),
            fuse=not getattr(args, "no_fuse", False),
            columnar=not getattr(args, "no_columnar", False),
        )
        stack.run_until(args.hours * 3600.0)
    return stack, deployment


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.render import (
        render_trace,
        slowest_sink_traces,
        trace_for_tuple,
    )

    stack, _ = _run_observed(args)
    obs = stack.obs
    tracer = obs.tracer
    if args.tuple_id is not None:
        trace_id = trace_for_tuple(tracer, args.tuple_id)
        if trace_id is None:
            print(f"no retained trace recorded tuple {args.tuple_id!r} "
                  f"(sampled out, evicted, or never published)",
                  file=sys.stderr)
            return 1
        trace_ids = [trace_id]
    else:
        trace_ids = slowest_sink_traces(tracer, args.slowest)
        if not trace_ids:
            print("no trace reached a sink (did the trigger fire? "
                  "try --hours 15)", file=sys.stderr)
            return 1
    for i, trace_id in enumerate(trace_ids):
        if i:
            print()
        print(render_trace(tracer, trace_id, lineage=obs.lineage))
    print()
    print(f"{tracer.traces_started} traces started, "
          f"{len(tracer.trace_ids())} retained, "
          f"{obs.lineage.recorded} lineage records")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    stack, _ = _run_observed(args)
    registry = stack.obs.metrics
    if args.json:
        print(registry.to_json())
    else:
        print(registry.expose(), end="")
    return 0


#: CLI shorthand for one SLO rule: "metric OP threshold [over window]".
_SLO_EXPR_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(<=|<|>=|>)\s*([0-9.eE+-]+)"
    r"(?:\s+over\s+([0-9.eE+-]+))?\s*$"
)

#: Rules installed when ``repro health`` is run without ``--slo``.
DEFAULT_SLO_EXPRS = (
    "p99_latency < 5.0",
    "watermark_lag < 900",
)


def parse_slo_expr(text: str, flow: str):
    """Parse one ``--slo`` expression into a :class:`DsnSlo` clause."""
    from repro.dsn.ast import DsnSlo

    match = _SLO_EXPR_RE.match(text)
    if not match:
        raise StreamLoaderError(
            f"cannot parse SLO rule {text!r} "
            f"(expected: metric OP threshold [over window])"
        )
    return DsnSlo(
        flow=flow,
        metric=match.group(1),
        op=match.group(2),
        threshold=float(match.group(3)),
        window=float(match.group(4) or 0.0),
    )


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.dsn.generate import dataflow_to_dsn
    from repro.obs.render import render_health

    stack = build_stack(
        hot=not args.cool,
        extended=args.extended,
        seed=args.seed,
        observability=args.sampling if args.sampling > 0 else None,
        batching=_batching_from(args),
        latency=True,
        alert_cadence=args.cadence,
        **_backend_from(args),
    )
    name = args.dataflow
    if name == "osaka":
        flow = osaka_scenario_flow(stack)
    elif name == "stations":
        flow = sharded_aggregation_flow(stack)
    else:
        flow = _load_canvas(name)
    exprs = args.slo or list(DEFAULT_SLO_EXPRS)
    program = dataflow_to_dsn(
        flow,
        stack.broker_network.registry,
        shards=_shards_from(args),
        elastic=_apply_rebalance(args, stack),
        slos=[parse_slo_expr(expr, flow.name) for expr in exprs],
    )
    stack.executor.deploy(program, fuse=not args.no_fuse,
                          columnar=not args.no_columnar)
    engine = stack.executor.alerts
    if args.watch:
        interval = max(args.cadence, 3600.0)

        def show() -> None:
            print(render_health(engine))
            print()

        stack.clock.schedule_periodic(interval, show, start_delay=interval)
    with stack:
        stack.run_until(args.hours * 3600.0)
    if args.json:
        print(json.dumps(engine.health_json(), sort_keys=True, indent=2))
    else:
        print(render_health(engine))
    return 0


def _cmd_operators(_args: argparse.Namespace) -> int:
    print(f"{'operation':18s} {'category':10s} parameters")
    for entry in OPERATOR_PALETTE:
        params = ", ".join(entry.parameters)
        print(f"{entry.name:18s} {entry.category:10s} {params}")
        print(f"{'':18s} {'':10s} {entry.description}")
    return 0


def _load_canvas(path: str):
    with open(path) as handle:
        return dataflow_from_dict(json.load(handle))


def _registry(args: argparse.Namespace):
    stack = build_stack(hot=True, extended=args.extended, attach_fleet=False)
    for sensor in stack.fleet:
        stack.broker_network.publish(sensor.metadata)
    return stack.broker_network.registry


def _cmd_validate(args: argparse.Namespace) -> int:
    flow = _load_canvas(args.canvas)
    report = validate_dataflow(flow, _registry(args))
    for issue in report.issues:
        print(issue)
    if report.is_valid:
        print(f"OK: {flow.name!r} is consistent "
              f"({len(flow.node_ids)} nodes, {len(flow.data_edges)} edges)")
        return 0
    print(f"INVALID: {len(report.errors)} error(s)")
    return 1


def _cmd_translate(args: argparse.Namespace) -> int:
    flow = _load_canvas(args.canvas)
    program = dataflow_to_dsn(flow, _registry(args))
    print(program.render(), end="")
    return 0


def _cmd_sensors(args: argparse.Namespace) -> int:
    registry = _registry(args)
    print(f"{'sensor id':26s} {'type':16s} {'Hz':>8s} {'node':10s} themes")
    for metadata in sorted(registry.all(), key=lambda m: m.sensor_id):
        themes = ",".join(str(theme) for theme in metadata.themes)
        print(f"{metadata.sensor_id:26s} {metadata.sensor_type:16s} "
              f"{metadata.frequency:8.4f} {metadata.node_id:10s} {themes}")
    return 0


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    """Execution-backend knobs shared by the run-a-dataflow commands."""
    parser.add_argument("--backend", choices=("sim", "async"), default="sim",
                        help="execution backend: 'sim' (deterministic "
                             "discrete-event, the oracle) or 'async' (real "
                             "asyncio tasks over bounded queues)")
    parser.add_argument("--time-scale", type=float, default=0.0, metavar="X",
                        help="async pacing: X virtual seconds per wall "
                             "second (default 0: free-run as fast as the "
                             "event loop drains)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="StreamLoader (EDBT 2016) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run the Section 3 scenario")
    scenario.add_argument("--hours", type=float, default=18.0,
                          help="virtual hours to simulate (default 18)")
    scenario.add_argument("--cool", action="store_true",
                          help="cool regime: the trigger must stay silent")
    scenario.add_argument("--extended", action="store_true",
                          help="attach the full sensor roster")
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument("--batch", type=int, default=1, metavar="N",
                          help="micro-batch up to N tuples per source "
                               "message (default 1: no batching)")
    scenario.add_argument("--max-delay", type=float, default=1.0, metavar="S",
                          help="flush a partial batch after S virtual "
                               "seconds (default 1.0)")
    scenario.add_argument("--shards", type=int, default=1, metavar="N",
                          help="split each partitionable blocking operator "
                               "into N key-hashed shards (default 1: off)")
    scenario.add_argument("--rebalance", action="store_true",
                          help="attach the elastic key-rebalance loop to "
                               "sharded operators")
    scenario.add_argument("--split-hot-keys", action="store_true",
                          help="allow the rebalancer to split one hot key "
                               "across replicas (implies --rebalance)")
    scenario.add_argument("--no-fuse", action="store_true",
                          help="disable operator fusion (each non-blocking "
                               "operator keeps its own process)")
    scenario.add_argument("--no-columnar", action="store_true",
                          help="disable columnar batch execution (fused "
                               "chains keep the row-oriented batch path)")
    _add_backend_args(scenario)
    scenario.set_defaults(func=_cmd_scenario)

    operators = sub.add_parser("operators", help="list the Table 1 palette")
    operators.set_defaults(func=_cmd_operators)

    validate = sub.add_parser("validate",
                              help="consistency-check a canvas JSON document")
    validate.add_argument("canvas", help="path to a saved canvas document")
    validate.add_argument("--extended", action="store_true")
    validate.set_defaults(func=_cmd_validate)

    translate = sub.add_parser("translate",
                               help="print the DSN program of a canvas")
    translate.add_argument("canvas", help="path to a saved canvas document")
    translate.add_argument("--extended", action="store_true")
    translate.set_defaults(func=_cmd_translate)

    sensors = sub.add_parser("sensors", help="list the simulated fleet")
    sensors.add_argument("--extended", action="store_true")
    sensors.set_defaults(func=_cmd_sensors)

    trace = sub.add_parser(
        "trace", help="run a dataflow traced and print span trees + lineage"
    )
    trace.add_argument(
        "dataflow", nargs="?", default="osaka",
        help="'osaka' (Section 3 scenario), 'stations' (sharded "
             "per-station averages), or a canvas JSON path",
    )
    group = trace.add_mutually_exclusive_group()
    group.add_argument("--tuple-id", metavar="SOURCE#SEQ",
                       help="print the trace of one tuple (key: source#seq)")
    group.add_argument("--slowest", type=int, default=1, metavar="N",
                       help="print the N slowest sink-reaching traces")
    trace.add_argument("--hours", type=float, default=15.0,
                       help="virtual hours to simulate (default 15)")
    trace.add_argument("--sampling", type=float, default=1.0,
                       help="trace sampling rate in [0, 1] (default 1.0)")
    trace.add_argument("--cool", action="store_true")
    trace.add_argument("--extended", action="store_true")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--batch", type=int, default=1, metavar="N",
                       help="micro-batch up to N tuples per source message")
    trace.add_argument("--max-delay", type=float, default=1.0, metavar="S",
                       help="flush a partial batch after S virtual seconds")
    trace.add_argument("--shards", type=int, default=1, metavar="N",
                       help="split each partitionable blocking operator "
                            "into N key-hashed shards")
    trace.add_argument("--rebalance", action="store_true",
                       help="attach the elastic key-rebalance loop to "
                            "sharded operators")
    trace.add_argument("--split-hot-keys", action="store_true",
                       help="allow the rebalancer to split one hot key "
                            "across replicas (implies --rebalance)")
    trace.add_argument("--no-fuse", action="store_true",
                       help="disable operator fusion (each non-blocking "
                            "operator keeps its own process)")
    trace.add_argument("--no-columnar", action="store_true",
                       help="disable columnar batch execution (fused "
                            "chains keep the row-oriented batch path)")
    _add_backend_args(trace)
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="run a dataflow and print the metrics registry"
    )
    metrics.add_argument(
        "dataflow", nargs="?", default="osaka",
        help="'osaka' (Section 3 scenario), 'stations' (sharded "
             "per-station averages), or a canvas JSON path",
    )
    metrics.add_argument("--hours", type=float, default=15.0,
                         help="virtual hours to simulate (default 15)")
    metrics.add_argument("--sampling", type=float, default=1.0,
                         help="trace sampling rate in [0, 1] (default 1.0)")
    metrics.add_argument("--json", action="store_true",
                         help="JSON snapshot instead of text exposition")
    metrics.add_argument("--cool", action="store_true")
    metrics.add_argument("--extended", action="store_true")
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument("--batch", type=int, default=1, metavar="N",
                         help="micro-batch up to N tuples per source message")
    metrics.add_argument("--max-delay", type=float, default=1.0, metavar="S",
                         help="flush a partial batch after S virtual seconds")
    metrics.add_argument("--shards", type=int, default=1, metavar="N",
                         help="split each partitionable blocking operator "
                              "into N key-hashed shards")
    metrics.add_argument("--rebalance", action="store_true",
                         help="attach the elastic key-rebalance loop to "
                              "sharded operators")
    metrics.add_argument("--split-hot-keys", action="store_true",
                         help="allow the rebalancer to split one hot key "
                              "across replicas (implies --rebalance)")
    metrics.add_argument("--no-fuse", action="store_true",
                         help="disable operator fusion (each non-blocking "
                              "operator keeps its own process)")
    metrics.add_argument("--no-columnar", action="store_true",
                         help="disable columnar batch execution (fused "
                              "chains keep the row-oriented batch path)")
    _add_backend_args(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    health = sub.add_parser(
        "health",
        help="run a dataflow under SLO rules and print the health screen",
    )
    health.add_argument(
        "dataflow", nargs="?", default="osaka",
        help="'osaka' (Section 3 scenario), 'stations' (sharded "
             "per-station averages), or a canvas JSON path",
    )
    health.add_argument("--hours", type=float, default=15.0,
                        help="virtual hours to simulate (default 15)")
    health.add_argument("--sampling", type=float, default=0.0,
                        help="trace sampling rate in [0, 1] (default 0.0: "
                             "latency plane only, no span tracing)")
    health.add_argument("--slo", action="append", metavar="RULE",
                        help="an SLO rule 'metric OP threshold [over W]' "
                             "(repeatable; default: "
                             + "; ".join(DEFAULT_SLO_EXPRS) + ")")
    health.add_argument("--cadence", type=float, default=60.0, metavar="S",
                        help="alert evaluation cadence in virtual seconds "
                             "(default 60)")
    health.add_argument("--watch", action="store_true",
                        help="print the health screen every virtual hour "
                             "while running")
    health.add_argument("--json", action="store_true",
                        help="print the deterministic JSON health payload "
                             "instead of the screen")
    health.add_argument("--cool", action="store_true")
    health.add_argument("--extended", action="store_true")
    health.add_argument("--seed", type=int, default=7)
    health.add_argument("--batch", type=int, default=1, metavar="N",
                        help="micro-batch up to N tuples per source message")
    health.add_argument("--max-delay", type=float, default=1.0, metavar="S",
                        help="flush a partial batch after S virtual seconds")
    health.add_argument("--shards", type=int, default=1, metavar="N",
                        help="split each partitionable blocking operator "
                             "into N key-hashed shards")
    health.add_argument("--rebalance", action="store_true",
                        help="attach the elastic key-rebalance loop to "
                             "sharded operators")
    health.add_argument("--split-hot-keys", action="store_true",
                        help="allow the rebalancer to split one hot key "
                             "across replicas (implies --rebalance)")
    health.add_argument("--no-fuse", action="store_true",
                        help="disable operator fusion (each non-blocking "
                             "operator keeps its own process)")
    health.add_argument("--no-columnar", action="store_true",
                        help="disable columnar batch execution (fused "
                             "chains keep the row-oriented batch path)")
    _add_backend_args(health)
    health.set_defaults(func=_cmd_health)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StreamLoaderError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
