"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``scenario``   — run the paper's Section 3 scenario and print the
  monitoring dashboard, trigger log, and warehouse roll-up;
- ``operators``  — list the Table 1 operator palette;
- ``validate``   — consistency-check a saved canvas document (JSON)
  against the Osaka fleet's registry;
- ``translate``  — print the DSN program of a saved canvas document;
- ``sensors``    — list the (simulated) sensor fleet with advertisements.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.dataflow.serialize import dataflow_from_dict
from repro.dataflow.validate import validate_dataflow
from repro.designer.palette import OPERATOR_PALETTE
from repro.dsn.generate import dataflow_to_dsn
from repro.errors import StreamLoaderError
from repro.scenario import build_stack, osaka_scenario_flow


def _cmd_scenario(args: argparse.Namespace) -> int:
    stack = build_stack(hot=not args.cool, extended=args.extended,
                        seed=args.seed)
    flow = osaka_scenario_flow(stack)
    deployment = stack.executor.deploy(flow)
    stack.run_until(args.hours * 3600.0)

    print(stack.executor.monitor.render_dashboard())
    print()
    if stack.executor.monitor.control_log:
        for command in stack.executor.monitor.control_log:
            verb = "activated" if command.activate else "deactivated"
            print(f"t={command.issued_at / 3600.0:05.1f}h {verb} "
                  f"{len(command.sensor_ids)} sensor stream(s)")
    else:
        print("trigger never fired (no gated acquisition)")
    print()
    print(f"warehouse: {len(stack.warehouse)} events | "
          f"sticker: {stack.sticker.pushed} tuples | "
          f"traffic collected: "
          f"{len(deployment.collected('traffic-collector'))}")
    return 0


def _cmd_operators(_args: argparse.Namespace) -> int:
    print(f"{'operation':18s} {'category':10s} parameters")
    for entry in OPERATOR_PALETTE:
        params = ", ".join(entry.parameters)
        print(f"{entry.name:18s} {entry.category:10s} {params}")
        print(f"{'':18s} {'':10s} {entry.description}")
    return 0


def _load_canvas(path: str):
    with open(path) as handle:
        return dataflow_from_dict(json.load(handle))


def _registry(args: argparse.Namespace):
    stack = build_stack(hot=True, extended=args.extended, attach_fleet=False)
    for sensor in stack.fleet:
        stack.broker_network.publish(sensor.metadata)
    return stack.broker_network.registry


def _cmd_validate(args: argparse.Namespace) -> int:
    flow = _load_canvas(args.canvas)
    report = validate_dataflow(flow, _registry(args))
    for issue in report.issues:
        print(issue)
    if report.is_valid:
        print(f"OK: {flow.name!r} is consistent "
              f"({len(flow.node_ids)} nodes, {len(flow.data_edges)} edges)")
        return 0
    print(f"INVALID: {len(report.errors)} error(s)")
    return 1


def _cmd_translate(args: argparse.Namespace) -> int:
    flow = _load_canvas(args.canvas)
    program = dataflow_to_dsn(flow, _registry(args))
    print(program.render(), end="")
    return 0


def _cmd_sensors(args: argparse.Namespace) -> int:
    registry = _registry(args)
    print(f"{'sensor id':26s} {'type':16s} {'Hz':>8s} {'node':10s} themes")
    for metadata in sorted(registry.all(), key=lambda m: m.sensor_id):
        themes = ",".join(str(theme) for theme in metadata.themes)
        print(f"{metadata.sensor_id:26s} {metadata.sensor_type:16s} "
              f"{metadata.frequency:8.4f} {metadata.node_id:10s} {themes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="StreamLoader (EDBT 2016) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run the Section 3 scenario")
    scenario.add_argument("--hours", type=float, default=18.0,
                          help="virtual hours to simulate (default 18)")
    scenario.add_argument("--cool", action="store_true",
                          help="cool regime: the trigger must stay silent")
    scenario.add_argument("--extended", action="store_true",
                          help="attach the full sensor roster")
    scenario.add_argument("--seed", type=int, default=7)
    scenario.set_defaults(func=_cmd_scenario)

    operators = sub.add_parser("operators", help="list the Table 1 palette")
    operators.set_defaults(func=_cmd_operators)

    validate = sub.add_parser("validate",
                              help="consistency-check a canvas JSON document")
    validate.add_argument("canvas", help="path to a saved canvas document")
    validate.add_argument("--extended", action="store_true")
    validate.set_defaults(func=_cmd_validate)

    translate = sub.add_parser("translate",
                               help="print the DSN program of a canvas")
    translate.add_argument("canvas", help="path to a saved canvas document")
    translate.add_argument("--extended", action="store_true")
    translate.set_defaults(func=_cmd_translate)

    sensors = sub.add_parser("sensors", help="list the simulated fleet")
    sensors.add_argument("--extended", action="store_true")
    sensors.set_defaults(func=_cmd_sensors)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StreamLoaderError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
