"""Per-tuple tracing on the virtual clock.

A :class:`TraceContext` is the tiny handle a tuple carries through the
system: the id of its trace plus the id of the span that last touched it.
Every instrumented layer (broker publish, network transmit, operator
evaluate/enqueue/flush, sink) records a :class:`Span` into the central
:class:`Tracer` and re-attaches a child context to the tuple, so the
recorded spans form a tree rooted at the tuple's publication.

Spans are timed on the **virtual clock**: synchronous operator work is
instantaneous (start == end), while network transmissions and retry
backoffs have real extent — exactly the durations the acceptance trace
tree surfaces per hop.

Sampling is head-based and deterministic: the decision is taken once per
trace root with an error-diffusion accumulator (rate 0.25 samples every
4th publication exactly), so runs are reproducible without consuming any
randomness.  An unsampled tuple carries no context and every downstream
instrumentation point short-circuits on ``tuple_.trace is None`` — that is
the whole overhead contract for ``sampling=0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import StreamLoaderError

#: Trace id reserved for control-plane events (placements, reassignments).
CONTROL_TRACE_ID = 0


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The handle a tuple carries: which trace, and the last span on it."""

    trace_id: int
    span_id: int

    def child_of(self, span: "Span") -> "TraceContext":
        """Context for a tuple that just passed through ``span``."""
        return TraceContext(trace_id=self.trace_id, span_id=span.span_id)


@dataclass(slots=True)
class Span:
    """One recorded hop of a trace (times on the virtual clock)."""

    span_id: int
    trace_id: int
    parent_id: "int | None"
    name: str
    start: float
    end: float
    attrs: dict[str, object] = field(default_factory=dict)
    #: Wall-clock stamp at recording time, when the bound clock has one
    #: (the asyncio backend's clock does; the simulator's doesn't).
    #: Virtual times answer "when in the modelled world"; this answers
    #: "when in this run" — the async benchmark's latency source.
    wall: "float | None" = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Central span recorder with deterministic head sampling.

    Args:
        sampling: fraction of traces to record, in [0, 1].  The decision
            is made once, at :meth:`start_trace`; everything downstream
            keys off the presence of a context.
        max_traces: completed-trace retention cap; the oldest traces are
            evicted FIFO so soak runs don't grow without bound.
    """

    def __init__(self, sampling: float = 1.0, max_traces: int = 10_000) -> None:
        if not (0.0 <= sampling <= 1.0):
            raise StreamLoaderError(f"sampling must be in [0, 1]: {sampling}")
        if max_traces <= 0:
            raise StreamLoaderError(f"max_traces must be positive: {max_traces}")
        self.sampling = sampling
        self.max_traces = max_traces
        #: trace id -> spans in recording order.
        self._traces: dict[int, list[Span]] = {}
        self._next_trace = 1  # 0 is the control trace
        self._next_span = 1
        self._accumulator = 0.0
        self.traces_started = 0
        self.traces_dropped = 0
        #: Virtual-clock source for control events recorded without a
        #: caller-supplied time (bound by the executor to the sim clock).
        self._now: "Callable[[], float] | None" = None
        #: Wall-clock source, bound only when the clock exposes one.
        self._wall: "Callable[[], float] | None" = None

    # -- wiring ------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Use ``clock.now`` for control events without an explicit time.

        A clock exposing ``wall_now`` (the asyncio backend's) also
        becomes the wall-stamp source for recorded spans.  The stamp is
        taken inside :meth:`_record`, which is only reached with a live
        trace context — sampling=0 still costs nothing (the zero-cost
        contract of DESIGN.md §12 holds on every backend).
        """
        self._now = lambda: clock.now
        self._wall = (
            (lambda: clock.wall_now) if hasattr(clock, "wall_now") else None
        )

    @property
    def enabled(self) -> bool:
        """Whether any trace can currently be started."""
        return self.sampling > 0.0

    # -- recording ---------------------------------------------------------

    def start_trace(self, name: str, now: float, **attrs: object) -> "TraceContext | None":
        """Open a new trace with a root span, or return None if unsampled."""
        self._accumulator += self.sampling
        if self._accumulator < 1.0:
            return None
        self._accumulator -= 1.0
        trace_id = self._next_trace
        self._next_trace += 1
        self.traces_started += 1
        self._traces[trace_id] = []
        if len(self._traces) > self.max_traces:
            # Evict the oldest *data* trace; the control trace (the
            # placement/reassignment audit log) is never dropped.
            for oldest in self._traces:
                if oldest != CONTROL_TRACE_ID:
                    del self._traces[oldest]
                    self.traces_dropped += 1
                    break
        span = self._record(trace_id, None, name, now, now, attrs)
        return TraceContext(trace_id=trace_id, span_id=span.span_id)

    def span(
        self,
        ctx: TraceContext,
        name: str,
        start: float,
        end: "float | None" = None,
        **attrs: object,
    ) -> Span:
        """Record a span under ``ctx`` and return it (for child contexts)."""
        return self._record(
            ctx.trace_id, ctx.span_id, name, start,
            start if end is None else end, attrs,
        )

    def event(self, name: str, time: "float | None" = None, **attrs: object) -> Span:
        """Record a control-plane event (placement, reassignment, ...).

        Control events live in the dedicated trace ``CONTROL_TRACE_ID`` and
        ignore sampling — there are few of them and they are the "when the
        assignment changes" audit trail.
        """
        if time is None:
            time = self._now() if self._now is not None else 0.0
        if CONTROL_TRACE_ID not in self._traces:
            self._traces[CONTROL_TRACE_ID] = []
        return self._record(CONTROL_TRACE_ID, None, name, time, time, attrs)

    def _record(
        self,
        trace_id: int,
        parent_id: "int | None",
        name: str,
        start: float,
        end: float,
        attrs: dict[str, object],
    ) -> Span:
        span = Span(
            span_id=self._next_span,
            trace_id=trace_id,
            parent_id=parent_id,
            name=name,
            start=start,
            end=end,
            attrs=attrs,
            wall=self._wall() if self._wall is not None else None,
        )
        self._next_span += 1
        spans = self._traces.get(trace_id)
        if spans is not None:
            spans.append(span)
        return span

    # -- queries -----------------------------------------------------------

    def trace(self, trace_id: int) -> list[Span]:
        """Spans of one trace, in recording order (empty if evicted)."""
        return list(self._traces.get(trace_id, ()))

    def trace_ids(self) -> list[int]:
        """Ids of retained data traces (control trace excluded)."""
        return [tid for tid in self._traces if tid != CONTROL_TRACE_ID]

    def control_events(self) -> list[Span]:
        return list(self._traces.get(CONTROL_TRACE_ID, ()))

    def duration(self, trace_id: int) -> float:
        """Wall extent of a trace on the virtual clock."""
        spans = self._traces.get(trace_id)
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    def find(self, name: "str | None" = None, **attrs: object) -> list[Span]:
        """All retained spans matching a name and/or attribute values."""
        out: list[Span] = []
        for spans in self._traces.values():
            for span in spans:
                if name is not None and span.name != name:
                    continue
                if any(span.attrs.get(k) != v for k, v in attrs.items()):
                    continue
                out.append(span)
        return out

    def clear(self) -> None:
        self._traces.clear()
        self._accumulator = 0.0
