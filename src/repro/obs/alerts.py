"""Deterministic alerting: declarative rules evaluated on the virtual clock.

A rule states an *objective* — ``p99_latency < 5.0 over 60`` reads "the
p99 end-to-end latency over the trailing 60 s must stay below 5 s" — and
the engine fires an alert while the objective is violated.  Three rule
shapes fall out of the two optional fields:

- **threshold**: ``window=0, sustain=0`` — the instantaneous value is
  compared at every tick;
- **sustained-for**: ``sustain=S`` — the breach must persist for S
  seconds of virtual time before the alert fires (transient spikes are
  ignored);
- **SLO burn-rate**: ``window=W`` on a latency-quantile metric — the
  quantile is computed over only the observations of the trailing W
  seconds (a delta between cumulative histogram snapshots), so a burst of
  slow tuples stops burning the budget once the window slides past it.

Metrics a rule can target:

- ``p50_latency`` / ``p90_latency`` / ``p95_latency`` / ``p99_latency`` /
  ``max_latency`` — quantiles of the sink-side ``e2e_latency_seconds``
  histogram (windowed when ``window > 0``);
- ``watermark_lag`` — the worst per-process watermark lag;
- ``saturation`` — the worst per-process saturation;
- any registered **gauge family name** — evaluated against the family's
  max across label sets.

Everything is driven by the virtual clock: the engine ticks at a fixed
cadence via ``schedule_periodic`` (offset half a cadence so ticks never
coincide with flush/emission boundaries), reads only registry instruments
and the latency plane, and records fire/resolve transitions as
control-plane events in the Monitor's reserved trace — so the same seed
always produces the same alert history, byte for byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import StreamLoaderError
from repro.obs.latency import LatencyPlane
from repro.obs.metrics import Histogram, MetricsRegistry

#: metric name -> quantile of the e2e latency histogram.
QUANTILE_METRICS = {
    "p50_latency": 0.50,
    "p90_latency": 0.90,
    "p95_latency": 0.95,
    "p99_latency": 0.99,
    "max_latency": 1.0,
}

_COMPARATORS = {
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative objective the engine watches.

    The rule holds the *healthy* condition; the alert fires while the
    condition is false.  ``scope`` is a free-form label (the DSN clause
    puts the flow name there) carried into events and gauges.
    """

    name: str
    metric: str
    op: str
    threshold: float
    window: float = 0.0
    sustain: float = 0.0
    scope: str = ""

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise StreamLoaderError(
                f"alert rule {self.name!r}: unknown comparator {self.op!r}"
            )
        if self.window < 0 or self.sustain < 0:
            raise StreamLoaderError(
                f"alert rule {self.name!r}: window/sustain must be >= 0"
            )

    def describe(self) -> str:
        parts = [f"{self.metric} {self.op} {self.threshold:g}"]
        if self.window:
            parts.append(f"over {self.window:g}s")
        if self.sustain:
            parts.append(f"sustained {self.sustain:g}s")
        return " ".join(parts)


class _HistogramWindow:
    """Rolling-window view over a cumulative histogram.

    Keeps (time, counts, count) snapshots taken at each tick and
    quantiles the *delta* between now and the newest snapshot at least
    ``window`` old.  Before a full window has elapsed the delta covers
    the whole history so far — the natural cold-start reading.
    """

    def __init__(self, histogram: Histogram, window: float) -> None:
        self.histogram = histogram
        self.window = window
        self._snaps: deque[tuple[float, list[int], int]] = deque()

    def quantile(self, now: float, q: float) -> "float | None":
        horizon = now - self.window
        snaps = self._snaps
        while len(snaps) >= 2 and snaps[1][0] <= horizon:
            snaps.popleft()
        if snaps and snaps[0][0] <= horizon:
            base_counts, base_count = snaps[0][1], snaps[0][2]
        else:
            base_counts, base_count = None, 0
        hist = self.histogram
        delta_count = hist.count - base_count
        value: "float | None"
        if delta_count == 0:
            value = None  # no observations in the window: vacuously healthy
        else:
            rank = q * delta_count
            value = float("inf")
            for i, boundary in enumerate(hist.boundaries):
                cumulative = hist.counts[i] - (base_counts[i] if base_counts else 0)
                if cumulative >= rank:
                    value = boundary
                    break
        snaps.append((now, list(hist.counts), hist.count))
        return value


@dataclass
class _RuleState:
    firing: bool = False
    breach_since: "float | None" = None
    last_value: "float | None" = None
    window: "_HistogramWindow | None" = None
    gauge: object = None
    transitions: int = 0


@dataclass(frozen=True)
class AlertTransition:
    """One fire/resolve edge in the engine's history."""

    time: float
    event: str  # "fire" | "resolve"
    rule: str
    value: "float | None"

    def as_list(self) -> list:
        return [self.time, self.event, self.rule, self.value]


class AlertEngine:
    """Evaluates :class:`AlertRule` objectives at a fixed virtual cadence."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        plane: "LatencyPlane | None" = None,
        tracer=None,
        cadence: float = 60.0,
    ) -> None:
        if cadence <= 0:
            raise StreamLoaderError(f"alert cadence must be positive: {cadence}")
        self.metrics = metrics
        self.plane = plane
        self.tracer = tracer
        self.cadence = cadence
        self.rules: dict[str, AlertRule] = {}
        self._state: dict[str, _RuleState] = {}
        self.history: list[AlertTransition] = []
        #: Set by :meth:`tick`: the invariant health view at tick time
        #: (the ``repro health --json`` payload reads this, not live
        #: state, so in-flight tuples at the run cutoff can't leak in).
        self.snapshot: "dict | None" = None
        self._now = None

    def add_rule(self, rule: AlertRule) -> None:
        self.rules[rule.name] = rule
        state = _RuleState()
        if rule.metric in QUANTILE_METRICS and rule.window > 0:
            if self.plane is None:
                raise StreamLoaderError(
                    f"alert rule {rule.name!r}: latency metrics need the "
                    f"latency plane installed"
                )
            state.window = _HistogramWindow(self.plane.e2e, rule.window)
        state.gauge = self.metrics.gauge(
            "alerts_firing",
            "1 while the rule's objective is violated, else 0",
            rule=rule.name,
        )
        state.gauge.set(0.0)
        self._state[rule.name] = state

    def start(self, clock, start_delay: "float | None" = None) -> None:
        """Begin ticking on the virtual clock.

        The default offset of half a cadence keeps evaluation instants
        away from the flush/emission boundaries that live on whole
        multiples of their intervals — ticks observe a drained pipeline,
        which is what makes the alert history reproducible across shard
        counts and batch sizes.
        """
        self._now = lambda: clock.now
        if start_delay is None:
            start_delay = self.cadence * 0.5
        clock.schedule_periodic(self.cadence, self.tick, start_delay=start_delay)

    # -- evaluation --------------------------------------------------------

    def _evaluate(self, rule: AlertRule, state: _RuleState,
                  now: float) -> "float | None":
        quantile = QUANTILE_METRICS.get(rule.metric)
        if quantile is not None:
            if state.window is not None:
                return state.window.quantile(now, quantile)
            if self.plane is None or self.plane.e2e.count == 0:
                return None
            return self.plane.e2e.quantile(quantile)
        if rule.metric == "watermark_lag":
            return self.plane.max_watermark_lag() if self.plane else None
        if rule.metric == "saturation":
            return self.plane.max_saturation() if self.plane else None
        values = self.metrics.values(rule.metric)
        if not values:
            return None
        return max(value for _, value in values)

    def tick(self) -> None:
        if self._now is None:
            raise StreamLoaderError("alert engine ticked before start()")
        now = self._now()
        if self.plane is not None:
            self.plane.refresh()
        for name in sorted(self.rules):
            rule = self.rules[name]
            state = self._state[name]
            value = self._evaluate(rule, state, now)
            state.last_value = value
            healthy = value is None or _COMPARATORS[rule.op](
                value, rule.threshold
            )
            if healthy:
                state.breach_since = None
                if state.firing:
                    self._transition(rule, state, now, "resolve", value)
            else:
                if state.breach_since is None:
                    state.breach_since = now
                if (not state.firing
                        and now - state.breach_since >= rule.sustain):
                    self._transition(rule, state, now, "fire", value)
        self.snapshot = self._snapshot(now)

    def _transition(self, rule: AlertRule, state: _RuleState,
                    now: float, event: str, value: "float | None") -> None:
        state.firing = event == "fire"
        state.gauge.set(1.0 if state.firing else 0.0)
        state.transitions += 1
        self.history.append(AlertTransition(now, event, rule.name, value))
        self.metrics.counter(
            "alert_transitions_total",
            "Fire/resolve edges per rule",
            rule=rule.name, event=event,
        ).inc()
        if self.tracer is not None:
            self.tracer.event(
                f"alert-{event}", time=now, rule=rule.name,
                metric=rule.metric, value=value, threshold=rule.threshold,
                scope=rule.scope,
            )

    # -- views -------------------------------------------------------------

    def firing(self) -> list[str]:
        return sorted(
            name for name, state in self._state.items() if state.firing
        )

    def last_values(self) -> dict[str, "float | None"]:
        return {
            name: self._state[name].last_value for name in sorted(self._state)
        }

    def _snapshot(self, now: float) -> dict:
        plane = self.plane
        source_high = None
        services: dict = {}
        if plane is not None:
            if plane.source_high != float("-inf"):
                source_high = plane.source_high
            services = plane.logical_health()
        return {
            "time": now,
            "source_high": source_high,
            "services": services,
            "firing": self.firing(),
            "values": self.last_values(),
        }

    def health_json(self) -> dict:
        """The ``repro health --json`` payload: last tick snapshot plus
        the full transition history and rule definitions."""
        return {
            "snapshot": self.snapshot,
            "rules": {
                name: {
                    "metric": rule.metric,
                    "op": rule.op,
                    "threshold": rule.threshold,
                    "window": rule.window,
                    "sustain": rule.sustain,
                    "scope": rule.scope,
                }
                for name, rule in sorted(self.rules.items())
            },
            "history": [t.as_list() for t in self.history],
        }
