"""Event-time latency, watermarks, and backpressure: the SLO plane.

PR 3 gave the repo counters ("how many tuples") and traces ("how slow was
this one tuple"); this module answers the operational question in
between: *is the pipeline keeping up, and against what promise?*

Three signal families live here, all driven by the virtual clock:

**Stage latency** — every tuple carries an STT stamp whose ``time`` is
its event time (sensors stamp with the current virtual clock at
emission).  At each stage — publish (broker fan-out), deliver
(subscription hand-off), operator-in (process receive), flush (blocking
timer firing), sink (terminal consumer) — the stage's virtual ``now``
minus the stamp time is recorded into a ``stage_latency_seconds``
histogram labelled per stage and per process (shard suffixes included),
plus one unlabelled ``e2e_latency_seconds`` aggregate at the sinks that
the alert rules quantile over.

**Watermarks** — each process owns a *committed* event time: the event
time it has fully processed.  Non-blocking operators commit continuously
(the max stamp they have processed); blocking operators commit only when
their timer fires, to the flush's virtual time ``now`` — valid because
stamps never exceed the virtual arrival time in this simulator, so a
flush at ``now`` has absorbed every stamp ≤ ``now``.  The *watermark* of
a process is its committed time lowered through the dataflow graph::

    watermark(p) = min(committed(p), min(watermark(u) for u in upstreams(p)))

which is the classic low-watermark propagation rule: a process can never
claim progress beyond what its upstreams have released.  ``watermark_lag``
is the distance from the newest stamp seen at the sources
(``source_high``) to a process's watermark.  Both committed updates are
monotone (max of a monotone stream; flush times follow the clock), and a
min over monotone inputs is monotone — so per-process watermarks never
regress (the Hypothesis property pins this).

**Backpressure** — blocking processes count buffered tuples between
flushes (``queue_depth``) and remember the previous epoch's intake, whose
ratio is the ``saturation`` gauge (0 right after a flush, ~1 when the
buffer holds a full epoch again); the broker tracks per-subscription
in-flight messages (``broker_subscription_backlog``) and the network
simulator per-route in-flight messages (``network_route_inflight``).

Zero-cost contract: nothing in this module runs unless a
:class:`LatencyPlane` is installed (``Observability.ensure_latency()``,
done by the executor only when SLO rules are declared or the caller opts
in).  Hot paths gate on a cached ``is None`` check, exactly like PR 3's
``tuple_.trace is None`` contract.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, Histogram

_NEG_INF = float("-inf")

#: Histogram boundaries for latency stages: sub-millisecond transmit
#: delays up to multi-interval flush staleness.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0,
    60.0, 150.0, 300.0, 600.0, 1800.0,
)


class ProcessProbe:
    """Per-process recorder the hot path writes through.

    One probe per :class:`~repro.runtime.process.OperatorProcess`, created
    when the plane is installed and cached on the process — the per-tuple
    cost is a histogram observe plus a float compare, and only when a
    plane exists at all.
    """

    __slots__ = (
        "plane", "key", "blocking", "sink", "hist", "flush_hist", "e2e",
        "pending", "committed", "buffered", "per_epoch", "upstreams",
    )

    def __init__(self, plane: "LatencyPlane", key: str,
                 blocking: bool, sink: bool) -> None:
        self.plane = plane
        self.key = key
        self.blocking = blocking
        self.sink = sink
        metrics = plane.metrics
        stage = "sink" if sink else "operator"
        self.hist = metrics.histogram(
            "stage_latency_seconds",
            "Event-time latency (virtual now - stamp time) per stage",
            buckets=LATENCY_BUCKETS, stage=stage, process=key,
        )
        self.flush_hist = (
            metrics.histogram(
                "stage_latency_seconds", buckets=LATENCY_BUCKETS,
                stage="flush", process=key,
            )
            if blocking else None
        )
        self.e2e = plane.e2e if sink else None
        #: Max event time seen on the input (pre-commit for blocking ops).
        self.pending = _NEG_INF
        #: Event time fully processed by this process alone.
        self.committed = _NEG_INF
        #: Tuples buffered since the last flush (blocking only).
        self.buffered = 0
        #: Intake of the previous epoch (saturation denominator).
        self.per_epoch = 0
        #: Upstream process keys, set by the executor from the dataflow.
        self.upstreams: tuple[str, ...] = ()

    def note(self, now: float, event_time: float) -> None:
        """One tuple entered this process at virtual ``now``."""
        self.hist.observe(now - event_time)
        if event_time > self.pending:
            self.pending = event_time
        if self.blocking:
            self.buffered += 1
        else:
            if event_time > self.committed:
                self.committed = event_time
            if self.e2e is not None:
                self.e2e.observe(now - event_time)

    def note_batch(self, now: float, tuples) -> None:
        """A whole batch entered this process at virtual ``now``.

        Batch-amortized :meth:`note`: one pass finds the batch's stamp
        extremes, then the probe commits *once* — a single running-max
        update from the newest stamp (watermarks are running maxima, so
        this is bit-identical to committing per tuple) and a single
        histogram observe of the batch's *worst* stage latency (oldest
        stamp).  Histograms therefore count batches, not tuples, on the
        batched path; the observed value is the conservative upper bound
        an SLO quantile cares about.  BENCH_8 put the per-tuple probe at
        ~60% receive overhead; this is the batched path's answer.

        A :class:`~repro.streams.tuple.TupleBatch` memoizes its stamp
        extremes on the envelope, so every probe the batch crosses (and
        every re-delivery of a fanned-out envelope) shares one scan.
        """
        count = len(tuples)
        if count == 0:
            return
        span = getattr(tuples, "stamp_span", None)
        if span is not None:
            low, high = span()
        else:  # plain sequence: scan here
            high = _NEG_INF
            low = None
            for tuple_ in tuples:
                time = tuple_.stamp.time
                if time > high:
                    high = time
                if low is None or time < low:
                    low = time
        self.hist.observe(now - low)
        if high > self.pending:
            self.pending = high
        if self.blocking:
            self.buffered += count
        else:
            if high > self.committed:
                self.committed = high
            if self.e2e is not None:
                self.e2e.observe(now - low)

    def commit_flush(self, now: float, emitted) -> None:
        """A blocking flush fired: commit progress through ``now``.

        Stamps never exceed the virtual arrival time, so everything this
        operator has absorbed carries event time ≤ ``now`` — the flush
        fully processes event time up to the flush instant.
        """
        self.per_epoch = self.buffered
        self.buffered = 0
        if now > self.committed:
            self.committed = now
        flush_hist = self.flush_hist
        if flush_hist is not None:
            for tuple_ in emitted:
                flush_hist.observe(now - tuple_.stamp.time)

    def saturation(self) -> float:
        if not self.blocking:
            return 0.0
        return self.buffered / self.per_epoch if self.per_epoch else 0.0


class LatencyPlane:
    """The installed latency/watermark/backpressure signal plane."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        #: process key -> probe; populated by the executor at spawn.
        self.probes: dict[str, ProcessProbe] = {}
        #: Newest stamp seen at any source (broker publish stage).
        self.source_high = _NEG_INF
        #: End-to-end latency at the sinks, aggregated — the histogram
        #: SLO quantile rules evaluate against.
        self.e2e: Histogram = metrics.histogram(
            "e2e_latency_seconds",
            "Event-time latency at the sinks (virtual now - stamp time)",
            buckets=LATENCY_BUCKETS,
        )
        self._publish_hists: dict[str, Histogram] = {}
        self._deliver_hists: dict[str, Histogram] = {}
        #: (source node, target node) -> messages in flight on the route.
        self._route_inflight: dict[tuple[str, str], int] = {}
        self._broker = None
        self._source_gauge = metrics.gauge(
            "source_watermark",
            "Newest event time seen at the sources",
        )

    # -- registration (executor, deploy time) -----------------------------

    def register_process(self, key: str, blocking: bool,
                         sink: bool) -> ProcessProbe:
        probe = self.probes.get(key)
        if probe is None:
            probe = self.probes[key] = ProcessProbe(self, key, blocking, sink)
        return probe

    def set_upstreams(self, key: str, upstreams) -> None:
        probe = self.probes.get(key)
        if probe is not None:
            probe.upstreams = tuple(
                up for up in upstreams if up != key and up in self.probes
            )

    def attach_broker(self, broker_network) -> None:
        self._broker = broker_network

    # -- hot-path hooks ----------------------------------------------------

    def note_publish(self, source: str, now: float, event_time: float) -> None:
        if event_time > self.source_high:
            self.source_high = event_time
        hist = self._publish_hists.get(source)
        if hist is None:
            hist = self._publish_hists[source] = self.metrics.histogram(
                "stage_latency_seconds", buckets=LATENCY_BUCKETS,
                stage="publish", source=source,
            )
        hist.observe(now - event_time)

    def note_publish_batch(self, source: str, now: float, tuples) -> None:
        """Batch-amortized :meth:`note_publish` (same contract as
        :meth:`ProcessProbe.note_batch`): one ``source_high`` running-max
        update and one worst-latency observe per batch."""
        high = _NEG_INF
        low = None
        for tuple_ in tuples:
            time = tuple_.stamp.time
            if time > high:
                high = time
            if low is None or time < low:
                low = time
        if low is None:
            return
        if high > self.source_high:
            self.source_high = high
        hist = self._publish_hists.get(source)
        if hist is None:
            hist = self._publish_hists[source] = self.metrics.histogram(
                "stage_latency_seconds", buckets=LATENCY_BUCKETS,
                stage="publish", source=source,
            )
        hist.observe(now - low)

    def note_deliver(self, subscription_id: str, now: float,
                     event_time: float) -> None:
        hist = self._deliver_hists.get(subscription_id)
        if hist is None:
            hist = self._deliver_hists[subscription_id] = self.metrics.histogram(
                "stage_latency_seconds", buckets=LATENCY_BUCKETS,
                stage="deliver", subscription=subscription_id,
            )
        hist.observe(now - event_time)

    def note_deliver_batch(self, subscription_id: str, now: float,
                           tuples) -> None:
        """Batch-amortized :meth:`note_deliver`: one worst-latency
        observe per batch."""
        low = None
        for tuple_ in tuples:
            time = tuple_.stamp.time
            if low is None or time < low:
                low = time
        if low is None:
            return
        self.note_deliver(subscription_id, now, low)

    def link_send(self, source: str, target: str) -> None:
        key = (source, target)
        self._route_inflight[key] = self._route_inflight.get(key, 0) + 1

    def link_done(self, source: str, target: str) -> None:
        key = (source, target)
        count = self._route_inflight.get(key, 0)
        if count > 0:
            self._route_inflight[key] = count - 1

    # -- watermarks --------------------------------------------------------

    def _watermark_raw(self, key: str, memo: dict, visiting: set) -> float:
        cached = memo.get(key)
        if cached is not None:
            return cached
        probe = self.probes.get(key)
        if probe is None:
            return _NEG_INF
        low = probe.committed
        visiting.add(key)
        for up in probe.upstreams:
            if up in visiting:  # defensive: DSN graphs are DAGs
                continue
            up_mark = self._watermark_raw(up, memo, visiting)
            if up_mark < low:
                low = up_mark
        visiting.discard(key)
        memo[key] = low
        return low

    def watermark(self, key: str, _memo: "dict | None" = None) -> "float | None":
        """Low watermark of one process (None until it has progress)."""
        memo = _memo if _memo is not None else {}
        mark = self._watermark_raw(key, memo, set())
        return None if mark == _NEG_INF else mark

    def watermark_lag(self, key: str,
                      _memo: "dict | None" = None) -> "float | None":
        """Event-time distance from the newest source stamp to ``key``'s
        watermark; None while either side is still cold."""
        if self.source_high == _NEG_INF:
            return None
        mark = self.watermark(key, _memo)
        if mark is None:
            return None
        return max(0.0, self.source_high - mark)

    def max_watermark_lag(self) -> "float | None":
        """The worst lag across all processes (the alert-rule scalar)."""
        memo: dict = {}
        worst = None
        for key in self.probes:
            lag = self.watermark_lag(key, memo)
            if lag is not None and (worst is None or lag > worst):
                worst = lag
        return worst

    def max_saturation(self) -> float:
        return max(
            (probe.saturation() for probe in self.probes.values()),
            default=0.0,
        )

    # -- derived views -----------------------------------------------------

    def logical_health(self) -> dict:
        """Per *logical service* watermark/saturation view.

        Process keys carry deployment artifacts — shard suffixes
        (``agg#2``, ``agg#merge``) — that vary with the shard count while
        the conceptual dataflow does not.  Grouping by the prefix before
        ``#`` and taking the min watermark / summed queue depth yields a
        view that is identical across shard counts and batch sizes (the
        alert-determinism property byte-compares it).
        """
        memo: dict = {}
        groups: dict[str, list[ProcessProbe]] = {}
        for key, probe in self.probes.items():
            groups.setdefault(key.split("#", 1)[0], []).append(probe)
        out: dict[str, dict] = {}
        for name in sorted(groups):
            probes = groups[name]
            marks = [self.watermark(probe.key, memo) for probe in probes]
            mark = None if any(m is None for m in marks) else min(marks)
            lag = None
            if mark is not None and self.source_high != _NEG_INF:
                lag = max(0.0, self.source_high - mark)
            depth = sum(p.buffered for p in probes if p.blocking)
            intake = sum(p.per_epoch for p in probes if p.blocking)
            out[name] = {
                "watermark": mark,
                "lag": lag,
                "queue_depth": depth,
                "saturation": depth / intake if intake else 0.0,
            }
        return out

    def refresh(self) -> None:
        """Publish the derived gauges into the registry.

        Called on the monitor's sample cadence, at each alert tick, and by
        the health CLI — never per tuple.
        """
        metrics = self.metrics
        if self.source_high != _NEG_INF:
            self._source_gauge.set(self.source_high)
        memo: dict = {}
        for key, probe in self.probes.items():
            lag = self.watermark_lag(key, memo)
            if lag is not None:
                metrics.gauge(
                    "watermark_lag_seconds",
                    "Event-time lag behind the newest source stamp",
                    process=key,
                ).set(lag)
            if probe.blocking:
                metrics.gauge(
                    "queue_depth",
                    "Tuples buffered since the last flush",
                    process=key,
                ).set(probe.buffered)
                metrics.gauge(
                    "saturation",
                    "Buffered tuples relative to the last epoch's intake",
                    process=key,
                ).set(probe.saturation())
        broker = self._broker
        if broker is not None:
            for subscription in broker.iter_subscriptions():
                metrics.gauge(
                    "broker_subscription_backlog",
                    "Published-but-undelivered messages per subscription",
                    subscription=str(subscription.subscription_id),
                ).set(subscription.inflight)
        for (source, target), count in self._route_inflight.items():
            metrics.gauge(
                "network_route_inflight",
                "Messages in flight per network route",
                route=f"{source}->{target}",
            ).set(count)
