"""Cross-layer observability: metrics, per-tuple traces, and lineage.

One :class:`Observability` bundle threads through the whole stack — the
broker starts traces at publication, the network simulator times transmit
hops, operator processes record evaluate/enqueue/flush/sink spans,
blocking operators record lineage, and the monitor publishes its series
through the metrics registry.  ``sampling`` throttles tracing head-on;
metrics and lineage are unconditional (they are cheap counters and
flush-time bookkeeping, not per-hop allocations).
"""

from __future__ import annotations

from repro.obs.alerts import AlertEngine, AlertRule, AlertTransition
from repro.obs.latency import LATENCY_BUCKETS, LatencyPlane, ProcessProbe
from repro.obs.lineage import LineageRecord, LineageStore, tuple_key
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS,
)
from repro.obs.render import (
    render_health,
    render_trace,
    render_trace_tree,
    sink_trace_ids,
    slowest_sink_traces,
    trace_for_tuple,
)
from repro.obs.trace import CONTROL_TRACE_ID, Span, TraceContext, Tracer


class Observability:
    """The bundle the runtime layers share: registry + tracer + lineage."""

    def __init__(
        self,
        sampling: float = 1.0,
        max_traces: int = 10_000,
        max_lineage: int = 50_000,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(sampling=sampling, max_traces=max_traces)
        self.lineage = LineageStore(max_records=max_lineage)
        #: The latency/watermark/SLO plane — None until installed.  The
        #: executor installs it when SLO rules are declared; everything
        #: on the hot path gates on the resulting ``is None`` checks, so
        #: an absent plane costs nothing (the PR 3 zero-cost contract).
        self.latency: "LatencyPlane | None" = None

    @property
    def sampling(self) -> float:
        return self.tracer.sampling

    def ensure_latency(self) -> LatencyPlane:
        """Install (or return) the latency plane."""
        if self.latency is None:
            self.latency = LatencyPlane(self.metrics)
        return self.latency


__all__ = [
    "AlertEngine",
    "AlertRule",
    "AlertTransition",
    "CONTROL_TRACE_ID",
    "LATENCY_BUCKETS",
    "LatencyPlane",
    "ProcessProbe",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LineageRecord",
    "LineageStore",
    "MetricsRegistry",
    "Observability",
    "Span",
    "TraceContext",
    "Tracer",
    "render_health",
    "render_trace",
    "render_trace_tree",
    "sink_trace_ids",
    "slowest_sink_traces",
    "trace_for_tuple",
    "tuple_key",
]
