"""Cross-layer observability: metrics, per-tuple traces, and lineage.

One :class:`Observability` bundle threads through the whole stack — the
broker starts traces at publication, the network simulator times transmit
hops, operator processes record evaluate/enqueue/flush/sink spans,
blocking operators record lineage, and the monitor publishes its series
through the metrics registry.  ``sampling`` throttles tracing head-on;
metrics and lineage are unconditional (they are cheap counters and
flush-time bookkeeping, not per-hop allocations).
"""

from __future__ import annotations

from repro.obs.lineage import LineageRecord, LineageStore, tuple_key
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS,
)
from repro.obs.render import (
    render_trace,
    render_trace_tree,
    sink_trace_ids,
    slowest_sink_traces,
    trace_for_tuple,
)
from repro.obs.trace import CONTROL_TRACE_ID, Span, TraceContext, Tracer


class Observability:
    """The bundle the runtime layers share: registry + tracer + lineage."""

    def __init__(
        self,
        sampling: float = 1.0,
        max_traces: int = 10_000,
        max_lineage: int = 50_000,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(sampling=sampling, max_traces=max_traces)
        self.lineage = LineageStore(max_records=max_lineage)

    @property
    def sampling(self) -> float:
        return self.tracer.sampling


__all__ = [
    "CONTROL_TRACE_ID",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LineageRecord",
    "LineageStore",
    "MetricsRegistry",
    "Observability",
    "Span",
    "TraceContext",
    "Tracer",
    "render_trace",
    "render_trace_tree",
    "sink_trace_ids",
    "slowest_sink_traces",
    "trace_for_tuple",
    "tuple_key",
]
