"""Lineage: which input tuples contributed to each derived tuple.

Non-blocking operators pass a tuple through (possibly rewritten), so its
identity — the ``source#seq`` key stamped at emission — survives the hop
and needs no bookkeeping.  Blocking operators (aggregation, join) consume
many inputs and emit *new* tuples; they record, at flush time, the exact
input keys behind each output.  :meth:`LineageStore.explain` then resolves
any sink tuple transitively back to the source readings that produced it.

Keys are human-readable on purpose (``rain-osaka-1#13``) so trace trees,
dead-letter records and lineage explanations all speak the same language.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.streams.tuple import SensorTuple


def tuple_key(tuple_: SensorTuple) -> str:
    """The stable identity of a tuple: producing source + sequence number."""
    return f"{tuple_.source}#{tuple_.seq}"


@dataclass(frozen=True)
class LineageRecord:
    """One derivation: an emitted tuple and its contributing inputs."""

    output: str
    inputs: tuple[str, ...]
    operator: str
    time: float


class LineageStore:
    """Bounded map of derived-tuple key -> contributing input keys."""

    def __init__(self, max_records: int = 50_000) -> None:
        self.max_records = max_records
        self._records: OrderedDict[str, LineageRecord] = OrderedDict()
        self.recorded = 0
        self.evicted = 0

    def record(
        self,
        output: SensorTuple,
        inputs: "list[SensorTuple] | tuple[SensorTuple, ...]",
        operator: str,
        time: float,
    ) -> LineageRecord:
        record = LineageRecord(
            output=tuple_key(output),
            inputs=tuple(tuple_key(t) for t in inputs),
            operator=operator,
            time=time,
        )
        self._records[record.output] = record
        self.recorded += 1
        while len(self._records) > self.max_records:
            self._records.popitem(last=False)
            self.evicted += 1
        return record

    def inputs(self, key: str) -> "tuple[str, ...] | None":
        """Direct contributors of a derived tuple (None if not derived)."""
        record = self._records.get(key)
        return record.inputs if record is not None else None

    def explain(self, key: str) -> list[str]:
        """Resolve a tuple key transitively to its source tuple keys.

        A key with no recorded derivation is its own source (pass-through
        operators keep identity, so a sink tuple that was never aggregated
        or joined explains to itself).  Order is deterministic:
        depth-first, inputs in recorded order, de-duplicated.
        """
        sources: list[str] = []
        seen: set[str] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            record = self._records.get(current)
            if record is None:
                sources.append(current)
                continue
            # Reversed so the depth-first walk visits inputs in order.
            stack.extend(reversed(record.inputs))
        return sources

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()
