"""Rendering: trace trees and lineage explanations for the CLI.

A trace tree shows one tuple's journey hop by hop with per-hop
virtual-clock durations::

    trace 17 · 2.41s · rain-osaka-2#41 -> sink
    publish rain-osaka-2 [t=46800.0]
    └─ transmit edge-2 -> edge-0 (1.20s)
       └─ evaluate torrential on edge-0 (0.00s)
          └─ transmit edge-0 -> edge-1 (1.21s)
             └─ sink warehouse:... on edge-1 (0.00s)
"""

from __future__ import annotations

from repro.obs.lineage import LineageStore
from repro.obs.trace import Span, Tracer


def format_duration(seconds: float) -> str:
    """Adaptive duration: seconds down to 10ms, milliseconds below."""
    if seconds >= 0.01:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.2f}ms"


def _span_label(span: Span) -> str:
    attrs = span.attrs
    if span.name == "transmit":
        where = f"{attrs.get('from', '?')} -> {attrs.get('to', '?')}"
    elif "node" in attrs:
        what = attrs.get("operator") or attrs.get("source") or ""
        where = f"{what} on {attrs['node']}" if what else str(attrs["node"])
    else:
        where = str(attrs.get("source", "")) or str(attrs.get("service", ""))
    suffix = f" ({format_duration(span.duration)})" if span.parent_id is not None \
        else f" [t={span.start:.1f}]"
    extra = ""
    if "attempt" in attrs and attrs["attempt"]:
        extra = f" attempt={attrs['attempt']}"
    if "reason" in attrs:
        extra += f" reason={attrs['reason']}"
    return f"{span.name} {where}{extra}{suffix}".replace("  ", " ")


def render_trace_tree(spans: list[Span]) -> str:
    """ASCII tree of one trace's spans (parent/child by span ids)."""
    if not spans:
        return "(empty trace)"
    children: dict[int | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        # A span whose parent was recorded in another trace (shouldn't
        # happen, but be safe) renders as a root.
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    lines: list[str] = []

    def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_span_label(span))
            child_prefix = ""
        else:
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + _span_label(span))
            child_prefix = prefix + ("   " if is_last else "│  ")
        kids = sorted(children.get(span.span_id, ()),
                      key=lambda s: (s.start, s.span_id))
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1, False)

    roots = sorted(children.get(None, ()), key=lambda s: (s.start, s.span_id))
    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1, True)
    return "\n".join(lines)


def sink_trace_ids(tracer: Tracer) -> list[int]:
    """Ids of retained traces whose tuple reached a sink span."""
    out = []
    for trace_id in tracer.trace_ids():
        if any(span.name == "sink" for span in tracer.trace(trace_id)):
            out.append(trace_id)
    return out


def slowest_sink_traces(tracer: Tracer, n: int = 1) -> list[int]:
    """The n sink-reaching traces with the largest virtual-clock extent."""
    ranked = sorted(
        sink_trace_ids(tracer),
        key=lambda tid: (-tracer.duration(tid), tid),
    )
    return ranked[: max(0, n)]


def trace_for_tuple(tracer: Tracer, tuple_id: str) -> "int | None":
    """The trace that recorded a span for the given ``source#seq`` key."""
    for trace_id in tracer.trace_ids():
        for span in tracer.trace(trace_id):
            if span.attrs.get("tuple") == tuple_id:
                return trace_id
    return None


def sink_tuple_of(spans: list[Span]) -> "str | None":
    """The tuple key that reached the sink in this trace, if any."""
    for span in spans:
        if span.name == "sink":
            key = span.attrs.get("tuple")
            return str(key) if key is not None else None
    return None


def render_trace(tracer: Tracer, trace_id: int,
                 lineage: "LineageStore | None" = None) -> str:
    """Full CLI block for one trace: header, tree, lineage resolution."""
    spans = tracer.trace(trace_id)
    sink_key = sink_tuple_of(spans)
    header = f"trace {trace_id} · {format_duration(tracer.duration(trace_id))}"
    if sink_key:
        header += f" · {sink_key} -> sink"
    lines = [header, render_trace_tree(spans)]
    if lineage is not None and sink_key is not None:
        sources = lineage.explain(sink_key)
        lines.append(
            "lineage: " + (", ".join(sources) if sources else "(unknown)")
        )
    return "\n".join(lines)


def _health_number(value: "float | None", suffix: str = "s") -> str:
    return "cold" if value is None else f"{value:.1f}{suffix}"


def render_health(engine) -> str:
    """The ``repro health`` screen: one AlertEngine's last tick snapshot.

    Shows the logical (shard-invariant) per-service watermark view, the
    backpressure columns, the rules with their latest readings, and the
    recent fire/resolve history.  Renders a placeholder until the first
    tick has run.
    """
    snapshot = engine.snapshot
    if snapshot is None:
        return "(no health snapshot yet: the alert engine has not ticked)"
    lines = [
        f"== health @ t={snapshot['time']:.0f}s ==",
        f"source high-water: {_health_number(snapshot['source_high'])}",
        "-- services (watermark / lag / queue / saturation) --",
    ]
    for name, info in snapshot["services"].items():
        lines.append(
            f"  {name:36s} {_health_number(info['watermark']):>12s} "
            f"{_health_number(info['lag']):>10s} "
            f"{info['queue_depth']:6d} {info['saturation']:6.2f}"
        )
    lines.append("-- objectives --")
    for name, rule in sorted(engine.rules.items()):
        value = snapshot["values"].get(name)
        state = "FIRING" if name in snapshot["firing"] else "ok"
        lines.append(
            f"  {name:36s} {rule.describe():32s} "
            f"now={_health_number(value, '')} [{state}]"
        )
    if engine.history:
        lines.append("-- transitions --")
        for transition in engine.history[-8:]:
            lines.append(
                f"  t={transition.time:.0f}: {transition.event:7s} "
                f"{transition.rule} "
                f"(value={_health_number(transition.value, '')})"
            )
    return "\n".join(lines)
