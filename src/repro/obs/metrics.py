"""The metrics registry: counters, gauges, and histograms with labels.

The paper's monitor enumerates *what* to surface (tuples per second per
operation, suffering nodes, assignment changes); this module is the *how*:
a process-wide registry of named metric families, each instantiated per
label set (``operator=...``, ``node=...``, ``source=...``), with a text
exposition format for scraping/diffing and a JSON snapshot for artifacts.

Instruments are deliberately plain objects — ``inc``/``set``/``observe``
are attribute updates, cheap enough for per-tuple hot paths.  Callers that
sit on a hot path fetch their instrument **once** (the registry
get-or-creates) and hold the reference; the registry lookup never recurs
per tuple.

Histograms use fixed, caller-chosen bucket boundaries (cumulative counts,
Prometheus-style ``le`` semantics) so snapshots from different runs are
directly comparable.
"""

from __future__ import annotations

import bisect
import json

from repro.errors import StreamLoaderError

#: Default histogram boundaries: virtual-clock latencies from 1 ms to 5 min.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics exposition format:
    backslash, double quote, and line feed must be escaped inside the
    quoted value or the exposition text is unparseable."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise StreamLoaderError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (utilization, rate, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with cumulative bucket counts."""

    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(self, boundaries: "tuple[float, ...]" = DEFAULT_BUCKETS) -> None:
        if not boundaries or list(boundaries) != sorted(set(boundaries)):
            raise StreamLoaderError(
                f"histogram boundaries must be strictly increasing: {boundaries}"
            )
        self.boundaries = tuple(float(b) for b in boundaries)
        #: counts[i] = observations <= boundaries[i]; a final +Inf bucket
        #: is implied by ``count``.
        self.counts = [0] * len(self.boundaries)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        index = bisect.bisect_left(self.boundaries, value)
        for i in range(index, len(self.counts)):
            self.counts[i] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile."""
        if not (0.0 <= q <= 1.0):
            raise StreamLoaderError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for boundary, cumulative in zip(self.boundaries, self.counts):
            if cumulative >= rank:
                return boundary
        return float("inf")


class MetricsRegistry:
    """Named metric families, instantiated per label set."""

    def __init__(self) -> None:
        #: name -> (kind, help, {labelset -> instrument})
        self._families: dict[str, tuple[str, str, dict[LabelSet, object]]] = {}

    def _family(self, name: str, kind: str, help_: str) -> dict[LabelSet, object]:
        family = self._families.get(name)
        if family is None:
            family = (kind, help_, {})
            self._families[name] = family
        elif family[0] != kind:
            raise StreamLoaderError(
                f"metric {name!r} already registered as {family[0]}, not {kind}"
            )
        return family[2]

    def counter(self, name: str, help_: str = "", **labels: str) -> Counter:
        instruments = self._family(name, "counter", help_)
        key = _labelset(labels)
        instrument = instruments.get(key)
        if instrument is None:
            instrument = instruments[key] = Counter()
        return instrument  # type: ignore[return-value]

    def gauge(self, name: str, help_: str = "", **labels: str) -> Gauge:
        instruments = self._family(name, "gauge", help_)
        key = _labelset(labels)
        instrument = instruments.get(key)
        if instrument is None:
            instrument = instruments[key] = Gauge()
        return instrument  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_: str = "",
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        instruments = self._family(name, "histogram", help_)
        key = _labelset(labels)
        instrument = instruments.get(key)
        if instrument is None:
            instrument = instruments[key] = Histogram(buckets)
        return instrument  # type: ignore[return-value]

    def get(self, name: str, **labels: str) -> "object | None":
        """Look up an existing instrument without registering one.

        Readers (the rebalance loop, benchmarks, assertions) use this so
        a probe for ``shard_flush_entries_total{shard="7"}`` of a
        4-shard group answers None instead of minting a zero-valued
        instrument that then pollutes the exposition.
        """
        family = self._families.get(name)
        if family is None:
            return None
        return family[2].get(_labelset(labels))

    def values(self, name: str) -> "list[tuple[dict[str, str], float]]":
        """Every (labels, value) pair of a counter/gauge family, sorted by
        label set.  Read-only view for dashboards and alert rules; returns
        an empty list for unknown or histogram families."""
        family = self._families.get(name)
        if family is None or family[0] == "histogram":
            return []
        return [
            (dict(labels), instrument.value)  # type: ignore[attr-defined]
            for labels, instrument in sorted(family[2].items())
        ]

    # -- export ------------------------------------------------------------

    def expose(self) -> str:
        """Text exposition: ``# HELP`` / ``# TYPE`` headers + one line per
        labeled instrument.  Families are sorted by name (and instruments
        by label set) so two runs that registered the same metrics in a
        different order still produce byte-identical dumps."""
        lines: list[str] = []
        for name, (kind, help_, instruments) in sorted(self._families.items()):
            if help_:
                lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, instrument in sorted(instruments.items()):
                rendered = _render_labels(labels)
                if isinstance(instrument, Histogram):
                    for boundary, cum in zip(instrument.boundaries, instrument.counts):
                        bucket = _labelset(dict(labels) | {"le": f"{boundary:g}"})
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket)} {cum}"
                        )
                    inf = _labelset(dict(labels) | {"le": "+Inf"})
                    lines.append(
                        f"{name}_bucket{_render_labels(inf)} {instrument.count}"
                    )
                    lines.append(f"{name}_sum{rendered} {instrument.sum:g}")
                    lines.append(f"{name}_count{rendered} {instrument.count}")
                else:
                    lines.append(f"{name}{rendered} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-able snapshot of every family and instrument, sorted by
        family name for byte-comparable dumps."""
        out: dict[str, dict] = {}
        for name, (kind, help_, instruments) in sorted(self._families.items()):
            series = []
            for labels, instrument in sorted(instruments.items()):
                entry: dict[str, object] = {"labels": dict(labels)}
                if isinstance(instrument, Histogram):
                    entry["buckets"] = dict(
                        zip((f"{b:g}" for b in instrument.boundaries),
                            instrument.counts)
                    )
                    entry["sum"] = instrument.sum
                    entry["count"] = instrument.count
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            out[name] = {"type": kind, "help": help_, "series": series}
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
