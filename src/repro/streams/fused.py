"""Fused operator chains: many non-blocking operators, one call stack.

The executor normally hosts every DSN operator in its own process, so a
tuple crossing a chain of per-tuple operators pays broker publish →
netsim transmit → dispatch for *every* hop.  A :class:`FusedOperator`
collapses one planned chain (see :mod:`repro.dataflow.fusion`) into a
single operator: a tuple entering the chain head traverses every member
in one Python call stack, with zero intermediate publish/transmit/
deliver.

Member semantics are preserved exactly:

- each member keeps its own :class:`~repro.streams.base.OperatorStats`
  (the fused wrapper calls the members' ``on_tuple``/``on_batch``, which
  are already bound to their prepared compiled expressions from
  ``expr/compile``), so per-operator counts match an unfused run;
- error quarantine stays per member — a tuple that fails inside member
  *k* is counted in member *k*'s ``stats.errors`` and dropped there,
  never reaching member *k+1*;
- batches flow through the members' ``_process_batch`` fast paths via
  ``on_batch``, one call per member per batch;
- with observability bound (:meth:`FusedOperator.bind_obs`), the
  per-member ``process_tuples_total`` counters keep their *member*
  process labels, so the metrics output is indistinguishable from an
  unfused run even though only one process exists.

When every member exposes a column kernel (``columnar_step``) and the
deployment left columnar execution on, batches of at least
``MIN_COLUMNAR_ROWS`` uniform-schema rows take the columnar pipeline
instead: the batch is transposed once (cached on the envelope), each
member narrows a selection vector over shared columns, and the chain
emits a :class:`~repro.streams.columnar.LazyRows` view — rows
re-materialize to :class:`SensorTuple` only when a consumer reads them
(the hosting process forwarding to blocking/sink/sharded routes), never
between members and never for output nobody consumes.  Per-member
stats, counters, and
error quarantine follow the exact ``on_batch`` accounting, which the
columnar≡row Hypothesis suite pins end to end.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CheckpointError, ExpressionError, StreamLoaderError
from repro.streams.base import NonBlockingOperator, Operator
from repro.streams.columnar import MIN_COLUMNAR_ROWS, ColumnarBatch, LazyRows
from repro.streams.tuple import SensorTuple, TupleBatch

#: Separator used for fused process/operator names (``a+b+c``).
FUSED_NAME_SEPARATOR = "+"


class FusedOperator(NonBlockingOperator):
    """A linear chain of non-blocking operators run as one operator.

    >>> fused = FusedOperator([FilterOperator(cond), TransformOperator(t)])
    ... # doctest: +SKIP

    The wrapper's own stats count the chain as a whole (tuples entering
    the head, tuples leaving the tail) — that is what the hosting
    process's load estimator reads; the members' stats keep the per-hop
    truth.
    """

    #: The hosting process must not register its own
    #: ``process_tuples_total`` counter: the fused chain reports per
    #: *member* labels through :meth:`bind_obs` instead, so a fused run
    #: and an unfused run expose identical counter families.
    owns_tuple_metrics = True

    def __init__(self, members: "Sequence[Operator]", name: str = "") -> None:
        if len(members) < 2:
            raise StreamLoaderError(
                f"a fused chain needs at least 2 members, got {len(members)}"
            )
        for member in members:
            if member.is_blocking:
                raise StreamLoaderError(
                    f"cannot fuse blocking operator {member.name!r}"
                )
            if member.input_ports != 1:
                raise StreamLoaderError(
                    f"cannot fuse multi-input operator {member.name!r}"
                )
        super().__init__(
            name or FUSED_NAME_SEPARATOR.join(m.name for m in members)
        )
        self.members: "list[Operator]" = list(members)
        #: The whole chain's work is charged to the hosting node in one
        #: ``account_work`` call, so the fused cost is the members' sum.
        self.cost_per_tuple = sum(m.cost_per_tuple for m in self.members)
        self._batch_steps = [m.on_batch for m in self.members]
        self._member_counters: "list[object] | None" = None
        #: Whether this chain may execute batches columnar (the executor
        #: clears it for ``deploy(columnar=False)`` / `--no-columnar`).
        self.columnar = True
        self._columnar_steps = [
            getattr(m, "columnar_step", None) for m in self.members
        ]
        self._columnar_capable = all(
            step is not None for step in self._columnar_steps
        )

    # -- observability -----------------------------------------------------

    def bind_obs(self, metrics, member_process_ids: "Sequence[str]") -> None:
        """Register per-member ``process_tuples_total`` counters.

        ``member_process_ids`` are the process ids the members *would*
        have carried unfused (``"<program>:<service>"``); labelling the
        counters with them keeps the metrics output identical to an
        unfused run of the same flow.
        """
        if len(member_process_ids) != len(self.members):
            raise StreamLoaderError(
                f"{self.name}: {len(member_process_ids)} process ids for "
                f"{len(self.members)} members"
            )
        self._member_counters = [
            metrics.counter(
                "process_tuples_total",
                "tuples received by an operator process",
                process=process_id,
            )
            for process_id in member_process_ids
        ]

    # -- data path ---------------------------------------------------------

    def _process(self, tuple_: SensorTuple, port: int) -> "list[SensorTuple]":
        # Members are driven through ``_process`` directly rather than
        # ``on_tuple``: the chain owns the dispatch, so the per-call port
        # check and call frame are exactly the per-hop overhead fusion
        # exists to remove.  The ``on_tuple`` bookkeeping is reproduced
        # inline — per-member tuples_in/out counts and per-member error
        # quarantine stay identical to an unfused run.
        counters = self._member_counters
        out = [tuple_]
        for index, member in enumerate(self.members):
            count = len(out)
            if counters is not None:
                counters[index].inc(count)
            stats = member.stats
            stats.tuples_in += count
            if count == 1:
                try:
                    emitted = member._process(out[0], 0)
                except ExpressionError:
                    stats.errors += 1
                    return []
            else:  # a member emitted several tuples; feed them in order,
                emitted = []  # quarantining failures one by one
                extend = emitted.extend
                errors = 0
                for member_tuple in out:
                    try:
                        extend(member._process(member_tuple, 0))
                    except ExpressionError:
                        errors += 1
                if errors:
                    stats.errors += errors
            stats.tuples_out += len(emitted)
            if not emitted:
                return []
            out = emitted
        return out

    def _process_batch(
        self, tuples: "Sequence[SensorTuple]", port: int
    ) -> "Sequence[SensorTuple]":
        if (
            self.columnar
            and self._columnar_capable
            and len(tuples) >= MIN_COLUMNAR_ROWS
        ):
            # The transposition is cached on the batch envelope, so other
            # subscribers' chains receiving the same batch reuse it; the
            # fork keeps this pipeline's column installs private.
            col = (
                tuples.columnar()
                if isinstance(tuples, TupleBatch)
                else ColumnarBatch.from_tuples(tuples)
            )
            if col is not None:
                return self._process_columnar(col.fork())
            # Heterogeneous schema: fall through to the row path.
        counters = self._member_counters
        out: "Sequence[SensorTuple]" = tuples
        for index, step in enumerate(self._batch_steps):
            if counters is not None:
                counters[index].inc(len(out))
            out = step(out, 0)
            if not out:
                return []
        return list(out)

    def _process_columnar(self, col: ColumnarBatch) -> "Sequence[SensorTuple]":
        # Reproduces the row batch path's per-member ``on_batch``
        # accounting exactly: counter + tuples_in before the step,
        # errors and tuples_out after, early exit on an empty selection.
        counters = self._member_counters
        sel: "Sequence[int]" = range(col.count)
        for index, member in enumerate(self.members):
            count = len(sel)
            if counters is not None:
                counters[index].inc(count)
            stats = member.stats
            stats.tuples_in += count
            sel, errors = self._columnar_steps[index](col, sel)
            if errors:
                stats.errors += errors
            stats.tuples_out += len(sel)
            if not sel:
                return []
        # The emissions stay columnar until something row-oriented reads
        # them: forwarding to routes materializes (building the outgoing
        # batch), while a tail with no consumers never builds rows at all.
        return LazyRows(col, sel)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        super().reset()
        for member in self.members:
            member.reset()

    def checkpoint(self) -> dict:
        state = super().checkpoint()
        state["members"] = [member.checkpoint() for member in self.members]
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        member_states = state.get("members")
        if (
            not isinstance(member_states, list)
            or len(member_states) != len(self.members)
        ):
            raise CheckpointError(
                f"{self.name}: checkpoint does not match the fused chain "
                f"({len(self.members)} members)"
            )
        for member, member_state in zip(self.members, member_states):
            member.restore(member_state)

    def describe(self) -> str:
        inner = " -> ".join(member.describe() for member in self.members)
        return f"fused({inner})"
