"""Virtual property — ⊎ s⟨p, spec⟩: add a computed attribute.

Table 1: *"A new attribute p is added to the schema of s according to the
specification spec."*  The motivating example is apparent temperature,
computed from temperature and humidity.
"""

from __future__ import annotations

from repro.errors import DataflowError, ExpressionError
from repro.expr.eval import CompiledExpression, compile_expression
from repro.expr.vectorize import values_kernel
from repro.streams.base import NonBlockingOperator
from repro.streams.tuple import SensorTuple

#: Ready-made specification for the paper's running example: the Steadman
#: apparent-temperature approximation from dry-bulb temperature (°C) and
#: relative humidity (fraction 0..1), with a fixed light-breeze wind term.
APPARENT_TEMPERATURE_SPEC = (
    "temperature + 0.33 * (humidity * 6.105 * exp(17.27 * temperature "
    "/ (237.7 + temperature))) - 4.0"
)


class VirtualPropertyOperator(NonBlockingOperator):
    """Add attribute ``property_name`` computed by ``spec`` to each tuple.

    >>> op = VirtualPropertyOperator(
    ...     "apparent_temperature", APPARENT_TEMPERATURE_SPEC)
    """

    def __init__(
        self,
        property_name: str,
        spec: "str | CompiledExpression",
        name: str = "",
    ) -> None:
        super().__init__(name or "virtual-property")
        if not property_name:
            raise DataflowError("virtual property needs a property name")
        self.property_name = property_name
        spec = compile_expression(spec) if isinstance(spec, str) else spec
        self.spec = spec.prepare()
        self._evaluate = self.spec.bind()
        self._vspec = None  # column kernel, built on first columnar use

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        payload = tuple_.payload
        name = self.property_name
        if name in payload:
            # Collides with an existing attribute: quarantine, the schema
            # checker would have rejected this dataflow at design time.
            self.stats.errors += 1
            return []
        value = self._evaluate(payload)
        updated = dict(payload)
        updated[name] = value
        return [tuple_.with_owned_payload(updated)]

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        # Batch fast path: the prepared spec is bound once and evaluated in
        # a tight loop; collisions and failures quarantine per tuple.
        name = self.property_name
        evaluate = self._evaluate
        out: list[SensorTuple] = []
        append = out.append
        errors = 0
        for tuple_ in tuples:
            payload = tuple_.payload
            if name in payload:
                errors += 1
                continue
            try:
                value = evaluate(payload)
            except ExpressionError:
                errors += 1
                continue
            updated = dict(payload)
            updated[name] = value
            append(tuple_.with_owned_payload(updated))
        if errors:
            self.stats.errors += errors
        return out

    def columnar_step(self, col, sel):
        """Column kernel: compute the property for the selection, append
        it as a new column.

        A name collision quarantines *every* selected row (the schema is
        uniform across a columnar batch, so the row path would collide on
        each one); evaluation failures quarantine per row.
        """
        name = self.property_name
        if name in col.fields:
            return [], len(sel)
        kernel = self._vspec
        if kernel is None:
            kernel = self._vspec = values_kernel(self.spec)
        vals, errs = kernel(col.columns, sel)
        count = col.count
        errors = 0
        if len(sel) == count and not errs:
            col.set_column(name, vals)
            return sel, 0
        column = [None] * count
        if errs:
            bad = set(errs)
            errors = len(bad)
            for pos, i in enumerate(sel):
                if i not in bad:
                    column[i] = vals[pos]
            sel = [i for i in sel if i not in bad]
        else:
            for pos, i in enumerate(sel):
                column[i] = vals[pos]
        col.set_column(name, column)
        return sel, errors

    def describe(self) -> str:
        return f"⊎s⟨{self.property_name}, {self.spec.source}⟩"
