"""Runtime stream-processing algebra — Table 1 of the paper.

Nine operations over STT-stamped tuple streams:

=================  =======================================  =========
Operation          Table 1 syntax                           Kind
=================  =======================================  =========
Aggregation        ``@t,{a1..an} op (s)``                   blocking
Cull Time          ``γr(s, <t1,t2>)``                       non-blocking
Cull Space         ``γr(s, <coord1,coord2>)``               non-blocking
Filter             ``σ(s, cond)``                           non-blocking
Join               ``s1 ⋈t pred s2``                        blocking
Transform          ``▷trans s``                             non-blocking
Trigger On         ``⊕ON,t(s, {s1..sn}, cond)``             blocking
Trigger Off        ``⊕OFF,t(s, {s1..sn}, cond)``            blocking
Virtual property   ``⊎ s⟨p, spec⟩``                         non-blocking
=================  =======================================  =========

Non-blocking operators transform each tuple as it arrives; blocking
operators "require the maintenance of a cache of tuples that are processed
every t time intervals".  Operators are runtime-agnostic: they expose
``on_tuple`` / ``on_timer`` and are driven either directly (unit tests,
baselines) or by operator processes placed on network nodes (the executor).
"""

from repro.streams.tuple import (
    SensorTuple,
    TupleBatch,
    estimate_batch_size_bytes,
    estimate_size_bytes,
)
from repro.streams.base import (
    Operator,
    NonBlockingOperator,
    BlockingOperator,
    ControlCommand,
    OperatorStats,
)
from repro.streams.filter import FilterOperator
from repro.streams.transform import TransformOperator, ValidateOperator
from repro.streams.virtual import VirtualPropertyOperator
from repro.streams.cull import CullTimeOperator, CullSpaceOperator
from repro.streams.aggregate import AggregationOperator
from repro.streams.join import JoinOperator
from repro.streams.trigger import TriggerOnOperator, TriggerOffOperator
from repro.streams.windows import TupleCache
from repro.streams.sink import ListSink, CallbackSink, CountingSink

__all__ = [
    "SensorTuple",
    "TupleBatch",
    "estimate_batch_size_bytes",
    "estimate_size_bytes",
    "Operator",
    "NonBlockingOperator",
    "BlockingOperator",
    "ControlCommand",
    "OperatorStats",
    "FilterOperator",
    "TransformOperator",
    "ValidateOperator",
    "VirtualPropertyOperator",
    "CullTimeOperator",
    "CullSpaceOperator",
    "AggregationOperator",
    "JoinOperator",
    "TriggerOnOperator",
    "TriggerOffOperator",
    "TupleCache",
    "ListSink",
    "CallbackSink",
    "CountingSink",
]
