"""Filter — σ(s, cond): drop tuples that do not satisfy the condition."""

from __future__ import annotations

from repro.errors import ExpressionError
from repro.expr.eval import CompiledExpression, compile_expression
from repro.expr.vectorize import predicate_kernel
from repro.streams.base import NonBlockingOperator
from repro.streams.tuple import SensorTuple


class FilterOperator(NonBlockingOperator):
    """Table 1: *Filter out tuples in s that do not adhere to cond*.

    >>> f = FilterOperator("temperature > 24")
    >>> # tuples whose payload fails the condition are not emitted
    """

    def __init__(self, condition: "str | CompiledExpression", name: str = "") -> None:
        super().__init__(name or "filter")
        if isinstance(condition, str):
            condition = compile_expression(condition)
        # Lower to the fast evaluator now: filters run per tuple on the
        # hot path, the first reading should not pay the compile.
        self.condition = condition.prepare()
        self._predicate = self.condition.bind_bool()
        self._vpredicate = None  # column kernel, built on first columnar use

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        # The predicate only reads, so it runs against the immutable
        # payload mapping directly — no per-tuple dict copy.
        if self._predicate(tuple_.payload):
            return [tuple_]
        return []

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        # Batch fast path: the compiled predicate is bound once and run in
        # a tight loop; failing tuples are quarantined individually.
        evaluate = self._predicate
        out: list[SensorTuple] = []
        append = out.append
        errors = 0
        for tuple_ in tuples:
            try:
                if evaluate(tuple_.payload):
                    append(tuple_)
            except ExpressionError:
                errors += 1
        if errors:
            self.stats.errors += errors
        return out

    def columnar_step(self, col, sel):
        """Column kernel: map a selection to the rows passing the condition.

        Returns ``(kept_rows, error_count)``; rows whose evaluation raised
        (or returned a non-boolean) are quarantined, exactly like the row
        path's per-tuple ``except ExpressionError``.
        """
        kernel = self._vpredicate
        if kernel is None:
            kernel = self._vpredicate = predicate_kernel(self.condition)
        return kernel(col.columns, sel)

    def describe(self) -> str:
        return f"σ(s, {self.condition.source})"
