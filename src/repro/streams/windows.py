"""Tuple caches for blocking operators.

A :class:`TupleCache` is the "cache of tuples that are processed every t
time intervals".  It supports the two policies blocking operators need:

- *tumbling*: ``drain()`` empties the cache (aggregation, join);
- *sliding*: ``prune(before)`` evicts by timestamp, so a trigger can check
  a condition over "the last hour" while firing every few minutes.

An optional ``max_tuples`` bound protects node memory; when full, the
oldest tuples are evicted and counted, which the monitor reports.

Operators that maintain **running accumulators** over the cache register an
``on_evict`` callback: it fires once per tuple leaving through ``add``
overflow or ``prune``, so incremental state can be decremented without
rescanning.  Bulk lifecycle operations (``drain``, ``clear``, ``restore``)
do *not* fire it — the owning operator resets its accumulators itself on
those paths.  Iterating the cache (``for t in cache``) walks the underlying
deque without copying; ``snapshot()`` is the copying variant for callers
that must outlive subsequent mutation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import StreamLoaderError
from repro.streams.tuple import SensorTuple


class TupleCache:
    """Bounded FIFO cache of tuples keyed by arrival order."""

    def __init__(
        self,
        max_tuples: int = 100_000,
        on_evict: "Callable[[SensorTuple], None] | None" = None,
    ) -> None:
        if max_tuples <= 0:
            raise StreamLoaderError(f"max_tuples must be positive: {max_tuples}")
        self._buffer: deque[SensorTuple] = deque()
        self._max = max_tuples
        self.evicted = 0
        #: Per-tuple eviction hook (overflow and prune only).
        self.on_evict = on_evict

    def add(self, tuple_: SensorTuple) -> None:
        if len(self._buffer) >= self._max:
            evicted = self._buffer.popleft()
            self.evicted += 1
            if self.on_evict is not None:
                self.on_evict(evicted)
        self._buffer.append(tuple_)

    def drain(self) -> list[SensorTuple]:
        """Return and clear the whole cache (tumbling windows)."""
        drained = list(self._buffer)
        self._buffer.clear()
        return drained

    def prune(self, before: float) -> int:
        """Evict tuples stamped strictly earlier than ``before``.

        Returns the number evicted.  Assumes approximately time-ordered
        arrival (true for a single upstream stream); stragglers older than
        the head are still evicted correctly because the scan stops at the
        first retained tuple, matching the paper's fresh-data orientation.
        """
        pruned = 0
        on_evict = self.on_evict
        while self._buffer and self._buffer[0].stamp.time < before:
            evicted = self._buffer.popleft()
            pruned += 1
            if on_evict is not None:
                on_evict(evicted)
        return pruned

    def snapshot(self) -> list[SensorTuple]:
        """Copy of the cache contents (sliding windows, no eviction)."""
        return list(self._buffer)

    def restore(self, tuples: "list[SensorTuple]", evicted: int = 0) -> None:
        """Replace the contents with a previously snapshotted tuple list."""
        self._buffer.clear()
        self._buffer.extend(tuples[-self._max:])
        self.evicted = evicted

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def __bool__(self) -> bool:
        return bool(self._buffer)

    def __iter__(self):
        return iter(self._buffer)
