"""Terminal consumers for streams: collection, callbacks, counting.

Sinks share the operator interface so the executor can place them on nodes
like any other dataflow element; they simply never emit.
"""

from __future__ import annotations

from typing import Callable

from repro.streams.base import NonBlockingOperator
from repro.streams.tuple import SensorTuple


class ListSink(NonBlockingOperator):
    """Collect every received tuple into ``received`` (tests, samples)."""

    cost_per_tuple = 0.2
    span_name = "sink"

    def __init__(self, name: str = "") -> None:
        super().__init__(name or "list-sink")
        self.received: list[SensorTuple] = []

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        self.received.append(tuple_)
        return []

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        self.received.extend(tuples)
        return []

    def reset(self) -> None:
        super().reset()
        self.received = []


class CallbackSink(NonBlockingOperator):
    """Hand every tuple to a callback (warehouse loader, Sticker feed)."""

    cost_per_tuple = 0.5
    span_name = "sink"

    def __init__(
        self, callback: Callable[[SensorTuple], None], name: str = ""
    ) -> None:
        super().__init__(name or "callback-sink")
        self.callback = callback

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        self.callback(tuple_)
        return []

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        callback = self.callback
        for tuple_ in tuples:
            callback(tuple_)
        return []


class CountingSink(NonBlockingOperator):
    """Count tuples without retaining them (throughput benchmarks)."""

    cost_per_tuple = 0.1
    span_name = "sink"

    def __init__(self, name: str = "") -> None:
        super().__init__(name or "counting-sink")
        self.count = 0

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        self.count += 1
        return []

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        self.count += len(tuples)
        return []

    def reset(self) -> None:
        super().reset()
        self.count = 0
