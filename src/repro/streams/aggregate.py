"""Aggregation — @t,{a1..an} op (s): windowed aggregation.

Table 1: *"Every t time intervals, aggregate s on the attributes
{a1, ..., an} and apply the aggregation function op ∈ {COUNT, AVG, SUM,
MIN, MAX}."*

Blocking: tuples are cached; every ``t`` seconds the window is evaluated
and output tuples carry ``<fn>_<attr>`` per attribute (see
:func:`repro.schema.infer.aggregate_schema`).  An empty window emits
nothing — there is no reading to aggregate.  Output stamps use the
window-end time at a temporal granularity covering ``t``, and the bounding
box of the window's readings.

Two extensions beyond the paper's one-liner (both off by default):

- ``group_by``: partition each window by a key attribute and emit one
  tuple per group (per-station hourly means, the obvious multi-sensor
  need);
- ``window``: a sliding lookback longer than the flush interval, giving
  "mean over the last hour, every five minutes" — the same
  interval/window split the Trigger operators use.

Flushes are **incremental** by default: per-group running accumulators
(non-null count, sum, min, max, bounding box) are updated as tuples enter
the cache and as the cache evicts them, so ``_flush`` emits from O(groups)
state instead of rescanning the window.  Min/max (and the bounding box)
cannot be decremented, so an eviction that removes the current extremum
marks the accumulator dirty and the next flush recomputes just that piece
from the group's members — amortized O(1) per tuple.  ``incremental=False``
restores the original rescan-every-flush behaviour (:meth:`_aggregate_group`
is kept verbatim as that reference path, and the parity oracle for tests).
Non-numeric attribute values can't be accumulated; they flag the
group/attribute for rescan at flush, reproducing the reference semantics
(including its errors) for that slice only.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import DataflowError
from repro.schema.infer import AGGREGATION_FUNCTIONS
from repro.streams.base import BlockingOperator
from repro.streams.tuple import SensorTuple
from repro.streams.windows import TupleCache
from repro.stt.event import SttStamp
from repro.stt.granularity import common_temporal, temporal_granularity
from repro.stt.spatial import Box, representative_point


def _covering_granularity(interval: float):
    for name in ("second", "minute", "hour", "day", "week", "month", "year"):
        gran = temporal_granularity(name)
        if gran.seconds >= interval:
            return gran
    return temporal_granularity("year")


def _bounding_location(tuples: list[SensorTuple]):
    points = [representative_point(t.stamp.location) for t in tuples]
    if len(points) == 1:
        return points[0]
    south = min(p.lat for p in points)
    north = max(p.lat for p in points)
    west = min(p.lon for p in points)
    east = max(p.lon for p in points)
    if south == north and west == east:
        return points[0]
    return Box(south=south, west=west, north=north, east=east)


class _GroupAccumulator:
    """Running state for one group: members plus per-attribute extrema.

    ``stats[attr]`` is ``[count, sum, min, max]`` over the attribute's
    non-null numeric values.  ``dirty`` holds attributes whose min/max may
    be stale after an eviction; ``rescan`` holds attributes that saw a
    non-numeric value and fall back to the reference computation.
    """

    __slots__ = ("members", "stats", "dirty", "rescan", "bbox", "bbox_dirty")

    def __init__(self, attributes: "list[str]") -> None:
        self.members: deque[SensorTuple] = deque()
        self.stats: dict[str, list] = {
            attr: [0, 0.0, None, None] for attr in attributes
        }
        self.dirty: set[str] = set()
        self.rescan: set[str] = set()
        #: (south, west, north, east) over members' representative points.
        self.bbox: "tuple[float, float, float, float] | None" = None
        self.bbox_dirty = False


class AggregationOperator(BlockingOperator):
    """Windowed COUNT/AVG/SUM/MIN/MAX over selected attributes.

    >>> op = AggregationOperator(
    ...     interval=3600.0, attributes=["temperature"], function="AVG")
    >>> per_station = AggregationOperator(
    ...     interval=3600.0, attributes=["temperature"], function="AVG",
    ...     group_by="station")
    """

    cost_per_tuple = 1.2  # caching + vectorised math

    def __init__(
        self,
        interval: float,
        attributes: "list[str]",
        function: str,
        group_by: "str | None" = None,
        window: "float | None" = None,
        name: str = "",
        max_cache: int = 100_000,
        incremental: bool = True,
    ) -> None:
        super().__init__(interval, name or "aggregation")
        fn = function.upper()
        if fn not in AGGREGATION_FUNCTIONS:
            raise DataflowError(
                f"unknown aggregation function {function!r}; "
                f"known: {', '.join(AGGREGATION_FUNCTIONS)}"
            )
        if not attributes:
            raise DataflowError("aggregation requires at least one attribute")
        if group_by is not None and group_by in attributes:
            raise DataflowError(
                f"group_by attribute {group_by!r} cannot also be aggregated"
            )
        if window is not None and window < interval:
            raise DataflowError(
                f"aggregation window ({window}) must cover at least one "
                f"flush interval ({interval})"
            )
        self.function = fn
        self.attributes = list(attributes)
        self.group_by = group_by
        self.window = float(window) if window is not None else None
        self.incremental = incremental
        self._groups: dict[object, _GroupAccumulator] = {}
        self.cache = TupleCache(
            max_tuples=max_cache,
            on_evict=self._on_evict if incremental else None,
        )
        #: When set (to a dict) by a sharding adapter, every emitted
        #: group's resolved accumulators are recorded by str(group key) so
        #: a split key's replicas can ship partials to the merge's
        #: combine stage.
        self._partial_log: "dict[str, dict] | None" = None

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        self.cache.add(tuple_)
        if self.incremental:
            self._accumulate(tuple_)
        return []

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        # Batch fast path: one window append pass per batch — the cache
        # and accumulator methods are bound once outside the loop.
        add = self.cache.add
        if self.incremental:
            accumulate = self._accumulate
            for tuple_ in tuples:
                add(tuple_)
                accumulate(tuple_)
        else:
            for tuple_ in tuples:
                add(tuple_)
        return []

    # -- running accumulators -------------------------------------------------

    def _group_key(self, tuple_: SensorTuple) -> object:
        return None if self.group_by is None else tuple_.get(self.group_by)

    def _accumulate(self, tuple_: SensorTuple) -> None:
        key = self._group_key(tuple_)
        acc = self._groups.get(key)
        if acc is None:
            acc = self._groups[key] = _GroupAccumulator(self.attributes)
        acc.members.append(tuple_)
        for attr in self.attributes:
            value = tuple_.get(attr)
            if value is None:
                continue
            if not isinstance(value, (int, float)):
                # The reference path converts via numpy at flush time;
                # punt this attribute to that path so behaviour (including
                # conversion errors) is identical.
                acc.rescan.add(attr)
                continue
            stats = acc.stats[attr]
            fvalue = float(value)
            stats[0] += 1
            stats[1] += fvalue
            if stats[2] is None or fvalue < stats[2]:
                stats[2] = fvalue
            if stats[3] is None or fvalue > stats[3]:
                stats[3] = fvalue
        point = representative_point(tuple_.stamp.location)
        bbox = acc.bbox
        if bbox is None:
            acc.bbox = (point.lat, point.lon, point.lat, point.lon)
        else:
            acc.bbox = (
                point.lat if point.lat < bbox[0] else bbox[0],
                point.lon if point.lon < bbox[1] else bbox[1],
                point.lat if point.lat > bbox[2] else bbox[2],
                point.lon if point.lon > bbox[3] else bbox[3],
            )

    def _on_evict(self, tuple_: SensorTuple) -> None:
        """Cache eviction hook: retire the tuple from its accumulator.

        Evictions are FIFO overall, hence FIFO within each group, so the
        departing tuple is always its group's oldest member.
        """
        key = self._group_key(tuple_)
        acc = self._groups.get(key)
        if acc is None or not acc.members:
            return
        acc.members.popleft()
        if not acc.members:
            del self._groups[key]
            return
        for attr in self.attributes:
            value = tuple_.get(attr)
            if value is None or not isinstance(value, (int, float)):
                continue
            stats = acc.stats[attr]
            fvalue = float(value)
            stats[0] -= 1
            stats[1] -= fvalue
            # Removing an extremum invalidates min/max; recompute lazily.
            if fvalue == stats[2] or fvalue == stats[3]:
                acc.dirty.add(attr)
        bbox = acc.bbox
        if bbox is not None:
            point = representative_point(tuple_.stamp.location)
            if (point.lat == bbox[0] or point.lon == bbox[1]
                    or point.lat == bbox[2] or point.lon == bbox[3]):
                acc.bbox_dirty = True

    def _window_tuples(self, now: float) -> list[SensorTuple]:
        if self.window is None:
            return self.cache.drain()
        self.cache.prune(before=now - self.window)
        return self.cache.snapshot()

    def _flush(self, now: float) -> list[SensorTuple]:
        if self.incremental:
            return self._flush_incremental(now)
        window = self._window_tuples(now)
        if not window:
            return []
        if self.group_by is None:
            groups = {None: window}
        else:
            groups = {}
            for tuple_ in window:
                groups.setdefault(tuple_.get(self.group_by), []).append(tuple_)
        out: list[SensorTuple] = []
        for seq_offset, (key, members) in enumerate(
            sorted(groups.items(), key=lambda item: str(item[0]))
        ):
            out.append(self._aggregate_group(key, members, now, seq_offset))
        return out

    def _flush_incremental(self, now: float) -> list[SensorTuple]:
        if self.window is not None:
            # Sliding: evictions flow through _on_evict and keep the
            # accumulators current.
            self.cache.prune(before=now - self.window)
        if not self._groups:
            return []
        out = [
            self._emit_group(key, acc, now, seq_offset)
            for seq_offset, (key, acc) in enumerate(
                sorted(self._groups.items(), key=lambda item: str(item[0]))
            )
        ]
        if self.window is None:
            # Tumbling: the window is consumed wholesale.
            self.cache.clear()
            self._groups = {}
        return out

    def _emit_group(
        self, key: object, acc: _GroupAccumulator, now: float, seq_offset: int
    ) -> SensorTuple:
        """Emit one group's tuple from its running accumulators.

        Mirrors :meth:`_aggregate_group` (payload keys, null handling,
        stamp construction) without rescanning members except for
        dirty/rescan slices.
        """
        members = acc.members
        for attr in acc.dirty - acc.rescan:
            values = [
                float(v) for t in members
                if (v := t.get(attr)) is not None
            ]
            stats = acc.stats[attr]
            stats[2] = min(values) if values else None
            stats[3] = max(values) if values else None
        acc.dirty.clear()

        payload: dict[str, object] = {}
        if self.group_by is not None:
            payload[self.group_by] = key
        for attr in self.attributes:
            if attr in acc.rescan:
                # Reference computation for attributes the accumulators
                # could not track (non-numeric values).
                values = [t.get(attr) for t in members if t.get(attr) is not None]
                if self.function == "COUNT":
                    payload[f"count_{attr}"] = len(values)
                    continue
                out_key = f"{self.function.lower()}_{attr}"
                if not values:
                    payload[out_key] = None
                    continue
                array = np.asarray(values, dtype=float)
                if self.function == "AVG":
                    payload[out_key] = float(array.mean())
                elif self.function == "SUM":
                    payload[out_key] = float(array.sum())
                elif self.function == "MIN":
                    payload[out_key] = float(array.min())
                else:
                    payload[out_key] = float(array.max())
                continue
            count, total, low, high = acc.stats[attr]
            if self.function == "COUNT":
                payload[f"count_{attr}"] = count
                continue
            out_key = f"{self.function.lower()}_{attr}"
            if count == 0:
                payload[out_key] = None
            elif self.function == "AVG":
                payload[out_key] = total / count
            elif self.function == "SUM":
                payload[out_key] = total
            elif self.function == "MIN":
                payload[out_key] = low
            else:  # MAX
                payload[out_key] = high

        first = members[0]
        if acc.bbox_dirty or acc.bbox is None:
            location = _bounding_location(list(members))
            point = representative_point(first.stamp.location)
            # Refresh the running box from the rescan.
            if isinstance(location, Box):
                acc.bbox = (location.south, location.west,
                            location.north, location.east)
            else:
                acc.bbox = (point.lat, point.lon, point.lat, point.lon)
            acc.bbox_dirty = False
        else:
            south, west, north, east = acc.bbox
            if south == north and west == east:
                location = representative_point(first.stamp.location)
            else:
                location = Box(south=south, west=west, north=north, east=east)
        out_gran = common_temporal(
            first.stamp.temporal_granularity, _covering_granularity(self.interval)
        )
        stamp = SttStamp(
            time=now,
            location=location,
            temporal_granularity=out_gran,
            spatial_granularity=first.stamp.spatial_granularity,
            themes=first.stamp.themes,
        )
        out = SensorTuple(
            payload=payload,
            stamp=stamp,
            source=f"{self.name}({first.source})",
            seq=self.stats.timer_firings * 1000 + seq_offset,
        )
        if self._partial_log is not None:
            # Dirty slices were resolved above, so these are the exact
            # [count, sum, min, max] this emission was computed from.
            self._partial_log[str(key)] = {
                "stats": {
                    attr: list(acc.stats[attr]) for attr in self.attributes
                },
                "first": (first.stamp.time, first.source, first.seq),
                "bbox": acc.bbox,
            }
        if self.lineage is not None:
            self.lineage.record(out, list(members), self.name, now)
        return out

    def extract_partition(self, value: object) -> "list[SensorTuple]":
        """Remove and return one group key's cached window slice.

        The migration donor half: the returned tuples are in arrival
        order, so re-feeding them through :meth:`adopt_partition` on the
        recipient rebuilds byte-identical accumulators (same float
        accumulation order).  The group's accumulator is dropped here.
        """
        if self.group_by is None:
            raise DataflowError(
                f"{self.name}: extract_partition requires group_by"
            )
        moved = [t for t in self.cache if t.get(self.group_by) == value]
        if moved:
            kept = [t for t in self.cache if t.get(self.group_by) != value]
            self.cache.restore(kept, evicted=self.cache.evicted)
        self._groups.pop(value, None)
        return moved

    def adopt_partition(self, tuples: "list[SensorTuple]") -> None:
        """Fold a donor's extracted group slice into this window.

        The caches merge stable-sorted by stamp time (existing tuples
        first on ties) so ``prune``'s head-scan stays correct for sliding
        windows; accumulators replay the moved tuples in their original
        arrival order.  The moved group must not already live here — the
        router guarantees that (one owner per key at any instant).
        """
        moved = list(tuples)
        if not moved:
            return
        merged = sorted(
            list(self.cache) + moved, key=lambda t: t.stamp.time
        )
        self.cache.restore(merged, evicted=self.cache.evicted)
        if self.incremental:
            for tuple_ in moved:
                self._accumulate(tuple_)

    def _aggregate_group(
        self, key: object, window: list[SensorTuple], now: float, seq_offset: int
    ) -> SensorTuple:
        payload: dict[str, object] = {}
        if self.group_by is not None:
            payload[self.group_by] = key
        for attr in self.attributes:
            values = [t.get(attr) for t in window if t.get(attr) is not None]
            if self.function == "COUNT":
                payload[f"count_{attr}"] = len(values)
                continue
            out_key = f"{self.function.lower()}_{attr}"
            if not values:
                payload[out_key] = None
                continue
            array = np.asarray(values, dtype=float)
            if self.function == "AVG":
                payload[out_key] = float(array.mean())
            elif self.function == "SUM":
                payload[out_key] = float(array.sum())
            elif self.function == "MIN":
                payload[out_key] = float(array.min())
            else:  # MAX
                payload[out_key] = float(array.max())

        first = window[0]
        out_gran = common_temporal(
            first.stamp.temporal_granularity, _covering_granularity(self.interval)
        )
        stamp = SttStamp(
            time=now,
            location=_bounding_location(window),
            temporal_granularity=out_gran,
            spatial_granularity=first.stamp.spatial_granularity,
            themes=first.stamp.themes,
        )
        out = SensorTuple(
            payload=payload,
            stamp=stamp,
            source=f"{self.name}({first.source})",
            seq=self.stats.timer_firings * 1000 + seq_offset,
        )
        if self.lineage is not None:
            self.lineage.record(out, window, self.name, now)
        return out

    def reset(self) -> None:
        super().reset()
        self.cache.clear()
        self._groups = {}

    def checkpoint(self) -> dict:
        state = super().checkpoint()
        state["cache"] = self.cache.snapshot()
        state["evicted"] = self.cache.evicted
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self.cache.restore(state["cache"], evicted=state.get("evicted", 0))
        # Accumulators are derived state: rebuild them from the restored
        # window (the checkpoint format is unchanged from the rescan era).
        self._groups = {}
        if self.incremental:
            for tuple_ in self.cache:
                self._accumulate(tuple_)

    def describe(self) -> str:
        attrs = ",".join(self.attributes)
        suffix = f" by {self.group_by}" if self.group_by else ""
        return f"@{self.interval},{{{attrs}}} {self.function}(s){suffix}"
