"""Aggregation — @t,{a1..an} op (s): windowed aggregation.

Table 1: *"Every t time intervals, aggregate s on the attributes
{a1, ..., an} and apply the aggregation function op ∈ {COUNT, AVG, SUM,
MIN, MAX}."*

Blocking: tuples are cached; every ``t`` seconds the window is evaluated
and output tuples carry ``<fn>_<attr>`` per attribute (see
:func:`repro.schema.infer.aggregate_schema`).  An empty window emits
nothing — there is no reading to aggregate.  Output stamps use the
window-end time at a temporal granularity covering ``t``, and the bounding
box of the window's readings.

Two extensions beyond the paper's one-liner (both off by default):

- ``group_by``: partition each window by a key attribute and emit one
  tuple per group (per-station hourly means, the obvious multi-sensor
  need);
- ``window``: a sliding lookback longer than the flush interval, giving
  "mean over the last hour, every five minutes" — the same
  interval/window split the Trigger operators use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataflowError
from repro.schema.infer import AGGREGATION_FUNCTIONS
from repro.streams.base import BlockingOperator
from repro.streams.tuple import SensorTuple
from repro.streams.windows import TupleCache
from repro.stt.event import SttStamp
from repro.stt.granularity import common_temporal, temporal_granularity
from repro.stt.spatial import Box, representative_point


def _covering_granularity(interval: float):
    for name in ("second", "minute", "hour", "day", "week", "month", "year"):
        gran = temporal_granularity(name)
        if gran.seconds >= interval:
            return gran
    return temporal_granularity("year")


def _bounding_location(tuples: list[SensorTuple]):
    points = [representative_point(t.stamp.location) for t in tuples]
    if len(points) == 1:
        return points[0]
    south = min(p.lat for p in points)
    north = max(p.lat for p in points)
    west = min(p.lon for p in points)
    east = max(p.lon for p in points)
    if south == north and west == east:
        return points[0]
    return Box(south=south, west=west, north=north, east=east)


class AggregationOperator(BlockingOperator):
    """Windowed COUNT/AVG/SUM/MIN/MAX over selected attributes.

    >>> op = AggregationOperator(
    ...     interval=3600.0, attributes=["temperature"], function="AVG")
    >>> per_station = AggregationOperator(
    ...     interval=3600.0, attributes=["temperature"], function="AVG",
    ...     group_by="station")
    """

    cost_per_tuple = 1.2  # caching + vectorised math

    def __init__(
        self,
        interval: float,
        attributes: "list[str]",
        function: str,
        group_by: "str | None" = None,
        window: "float | None" = None,
        name: str = "",
        max_cache: int = 100_000,
    ) -> None:
        super().__init__(interval, name or "aggregation")
        fn = function.upper()
        if fn not in AGGREGATION_FUNCTIONS:
            raise DataflowError(
                f"unknown aggregation function {function!r}; "
                f"known: {', '.join(AGGREGATION_FUNCTIONS)}"
            )
        if not attributes:
            raise DataflowError("aggregation requires at least one attribute")
        if group_by is not None and group_by in attributes:
            raise DataflowError(
                f"group_by attribute {group_by!r} cannot also be aggregated"
            )
        if window is not None and window < interval:
            raise DataflowError(
                f"aggregation window ({window}) must cover at least one "
                f"flush interval ({interval})"
            )
        self.function = fn
        self.attributes = list(attributes)
        self.group_by = group_by
        self.window = float(window) if window is not None else None
        self.cache = TupleCache(max_tuples=max_cache)

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        self.cache.add(tuple_)
        return []

    def _window_tuples(self, now: float) -> list[SensorTuple]:
        if self.window is None:
            return self.cache.drain()
        self.cache.prune(before=now - self.window)
        return self.cache.snapshot()

    def _flush(self, now: float) -> list[SensorTuple]:
        window = self._window_tuples(now)
        if not window:
            return []
        if self.group_by is None:
            groups = {None: window}
        else:
            groups = {}
            for tuple_ in window:
                groups.setdefault(tuple_.get(self.group_by), []).append(tuple_)
        out: list[SensorTuple] = []
        for seq_offset, (key, members) in enumerate(
            sorted(groups.items(), key=lambda item: str(item[0]))
        ):
            out.append(self._aggregate_group(key, members, now, seq_offset))
        return out

    def _aggregate_group(
        self, key: object, window: list[SensorTuple], now: float, seq_offset: int
    ) -> SensorTuple:
        payload: dict[str, object] = {}
        if self.group_by is not None:
            payload[self.group_by] = key
        for attr in self.attributes:
            values = [t.get(attr) for t in window if t.get(attr) is not None]
            if self.function == "COUNT":
                payload[f"count_{attr}"] = len(values)
                continue
            out_key = f"{self.function.lower()}_{attr}"
            if not values:
                payload[out_key] = None
                continue
            array = np.asarray(values, dtype=float)
            if self.function == "AVG":
                payload[out_key] = float(array.mean())
            elif self.function == "SUM":
                payload[out_key] = float(array.sum())
            elif self.function == "MIN":
                payload[out_key] = float(array.min())
            else:  # MAX
                payload[out_key] = float(array.max())

        first = window[0]
        out_gran = common_temporal(
            first.stamp.temporal_granularity, _covering_granularity(self.interval)
        )
        stamp = SttStamp(
            time=now,
            location=_bounding_location(window),
            temporal_granularity=out_gran,
            spatial_granularity=first.stamp.spatial_granularity,
            themes=first.stamp.themes,
        )
        return SensorTuple(
            payload=payload,
            stamp=stamp,
            source=f"{self.name}({first.source})",
            seq=self.stats.timer_firings * 1000 + seq_offset,
        )

    def reset(self) -> None:
        super().reset()
        self.cache.clear()

    def checkpoint(self) -> dict:
        state = super().checkpoint()
        state["cache"] = self.cache.snapshot()
        state["evicted"] = self.cache.evicted
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self.cache.restore(state["cache"], evicted=state.get("evicted", 0))

    def describe(self) -> str:
        attrs = ",".join(self.attributes)
        suffix = f" by {self.group_by}" if self.group_by else ""
        return f"@{self.interval},{{{attrs}}} {self.function}(s){suffix}"
