"""Trigger On / Trigger Off — ⊕ON,t / ⊕OFF,t: event-driven stream control.

Table 1: *"Every t time intervals the condition cond is checked on the
tuples collected from s.  If the condition is verified, the streams of the
sensors {s1 ... sn} are (de-)activated."*

This is the paper's headline "event-driven" capability: the Osaka scenario
acquires rain, tweets and traffic *only when* the mean temperature of the
last hour exceeds 25 °C.

Condition context.  The condition is evaluated against a synthesized
payload of **window statistics** so users can express both per-window
aggregates and last-value conditions:

- for every numeric attribute ``a`` of the cached tuples:
  ``avg_a``, ``min_a``, ``max_a``, ``sum_a``, ``last_a``;
- for every non-numeric attribute: ``last_a``;
- ``count``: number of tuples in the window.

The scenario condition is then ``avg_temperature > 25``.  An empty window
never fires (there is no evidence either way).

Triggers are control-plane operators: they emit **no** data tuples; they
issue :class:`repro.streams.base.ControlCommand` to the runtime, which
starts/stops the subscriptions of the target sensors.  A trigger only
issues a command on an *edge* (condition outcome differs from the last
command issued), so a persistently hot hour does not spam activations.

The check window may be longer than the check cadence: ``window`` (default
``interval``) is the sliding lookback over which statistics are computed —
"the temperature identified in the last hour" checked every 5 minutes is
``interval=300, window=3600``.
"""

from __future__ import annotations

from collections.abc import Collection

from repro.errors import DataflowError
from repro.expr.eval import CompiledExpression, compile_expression
from repro.streams.base import BlockingOperator, ControlCommand
from repro.streams.tuple import SensorTuple
from repro.streams.windows import TupleCache

#: Statistic prefixes synthesized for numeric attributes.
STAT_PREFIXES = ("avg", "min", "max", "sum", "last")


def window_statistics(tuples: "Collection[SensorTuple]") -> dict[str, object]:
    """Synthesize the statistics payload trigger conditions run against.

    Accepts any sized iterable of tuples — a list, or a
    :class:`~repro.streams.windows.TupleCache` directly (the trigger's
    flush passes its cache to skip the per-check window copy).
    """
    stats: dict[str, object] = {"count": len(tuples)}
    if not tuples:
        return stats
    numeric: dict[str, list[float]] = {}
    last: dict[str, object] = {}
    for tuple_ in tuples:
        for name, value in tuple_.payload.items():
            last[name] = value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                numeric.setdefault(name, []).append(float(value))
    for name, values in numeric.items():
        stats[f"avg_{name}"] = sum(values) / len(values)
        stats[f"min_{name}"] = min(values)
        stats[f"max_{name}"] = max(values)
        stats[f"sum_{name}"] = sum(values)
    for name, value in last.items():
        stats[f"last_{name}"] = value
    return stats


class _TriggerBase(BlockingOperator):
    #: True for Trigger On, False for Trigger Off.
    activate_on_fire: bool

    def __init__(
        self,
        interval: float,
        condition: "str | CompiledExpression",
        targets: "list[str] | tuple[str, ...]",
        window: "float | None" = None,
        name: str = "",
        max_cache: int = 100_000,
    ) -> None:
        super().__init__(interval, name)
        if not targets:
            raise DataflowError("trigger needs at least one target sensor")
        if isinstance(condition, str):
            condition = compile_expression(condition)
        self.condition = condition.prepare()
        self.targets = tuple(targets)
        self.window = float(window) if window is not None else self.interval
        if self.window < self.interval:
            raise DataflowError(
                f"trigger window ({self.window}) must cover at least one "
                f"check interval ({self.interval})"
            )
        self.cache = TupleCache(max_tuples=max_cache)
        self._last_command: "bool | None" = None

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        self.cache.add(tuple_)
        return []

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        # Batch fast path: single bound append over the window cache.
        add = self.cache.add
        for tuple_ in tuples:
            add(tuple_)
        return []

    def _flush(self, now: float) -> list[SensorTuple]:
        self.cache.prune(before=now - self.window)
        if not self.cache:
            return []
        # Non-copying: statistics iterate the cache in place.
        stats_payload = window_statistics(self.cache)
        try:
            fired = self.condition.evaluate_bool(stats_payload)
        except Exception:
            self.stats.errors += 1
            return []
        if fired and self._last_command != self.activate_on_fire:
            self._last_command = self.activate_on_fire
            self._issue_control(
                ControlCommand(
                    activate=self.activate_on_fire,
                    sensor_ids=self.targets,
                    issued_at=now,
                    reason=(
                        f"{self.name}: {self.condition.source} over last "
                        f"{self.window}s window"
                    ),
                )
            )
        elif not fired:
            # Re-arm: the next time the condition holds, fire again.
            self._last_command = None
        return []

    def reset(self) -> None:
        super().reset()
        self.cache.clear()
        self._last_command = None

    def checkpoint(self) -> dict:
        state = super().checkpoint()
        state["cache"] = self.cache.snapshot()
        state["last_command"] = self._last_command
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self.cache.restore(state["cache"])
        self._last_command = state.get("last_command")


class TriggerOnOperator(_TriggerBase):
    """⊕ON,t: activate target sensor streams when the condition holds.

    >>> op = TriggerOnOperator(
    ...     interval=300.0, window=3600.0,
    ...     condition="avg_temperature > 25",
    ...     targets=["rain-osaka", "twitter-osaka", "traffic-osaka"],
    ... )
    """

    activate_on_fire = True

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("name", "trigger-on")
        super().__init__(*args, **kwargs)

    def describe(self) -> str:
        return (
            f"⊕ON,{self.interval}(s, {{{', '.join(self.targets)}}}, "
            f"{self.condition.source})"
        )


class TriggerOffOperator(_TriggerBase):
    """⊕OFF,t: de-activate target sensor streams when the condition holds."""

    activate_on_fire = False

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("name", "trigger-off")
        super().__init__(*args, **kwargs)

    def describe(self) -> str:
        return (
            f"⊕OFF,{self.interval}(s, {{{', '.join(self.targets)}}}, "
            f"{self.condition.source})"
        )
