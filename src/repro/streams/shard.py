"""Sharding plane for blocking operators: partitioner, adapter, merge.

The blocking operators (Aggregation, Join) cache every tuple of their
window on one operator process, which caps their throughput at one node's
capacity.  Sharding splits one *conceptual* blocking node into N replica
processes, each holding the slice of the key space a deterministic hash
partitioner assigns to it, plus one downstream **merge** stage that
re-establishes the unsharded flush order before the consumer.  The
conceptual dataflow the user designs is untouched — only the deployed
DSN/SCN plan fans out (DESIGN.md §12).

Three pieces live here:

- :func:`partition_index` — the partitioner contract.  CRC32 over the
  ``repr`` of the key values, modulo the shard count: deterministic
  across processes and runs (``hash()`` is salted per interpreter via
  ``PYTHONHASHSEED``, so it is exactly what this must *not* use).
- :class:`ShardedOperatorAdapter` — wraps one shard's inner operator.
  Tuples pass straight through to the inner operator; every timer firing
  is converted into exactly one **envelope** tuple carrying the flush's
  emissions tagged with per-entry order keys.  Empty flushes still emit
  an (empty) envelope: the envelope doubles as the shard's punctuation,
  telling the merge "shard k has flushed through virtual time T" —
  without it an empty window would be indistinguishable from a slow
  shard and the merge could never close an epoch.
- :class:`ShardMergeOperator` — non-blocking but stateful: buffers
  envelopes per flush epoch, closes an epoch once every shard's
  punctuation has passed it, re-sorts the union of entries by order key
  and renumbers ``seq`` exactly as the unsharded operator would have.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Sequence

from repro.errors import CheckpointError, StreamLoaderError
from repro.streams.base import Operator
from repro.streams.join import JoinOperator
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Point

#: Envelope payload keys (the wire format between shard and merge).
SHARD_KEY = "__shard__"
EPOCH_KEY = "__epoch__"
ENTRIES_KEY = "__entries__"

#: Histogram buckets for the flush skew ratio (max/mean entries per
#: shard); 1.0 is a perfectly balanced epoch, N is total collapse onto
#: one of N shards.
SKEW_BUCKETS = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 8.0)


def partition_index(values: "tuple | Sequence", count: int) -> int:
    """Deterministic shard index for a key-value tuple.

    CRC32 of ``repr(values)`` mod ``count`` — stable across interpreter
    restarts and machines (unlike builtin ``hash``), cheap, and
    well-mixed for the string/number keys group-by and equi-join use.
    """
    return zlib.crc32(repr(tuple(values)).encode("utf-8")) % count


def order_key_for_pair(lt: SensorTuple, rt: SensorTuple) -> tuple:
    """Merge order key for one join output pair.

    Unsharded join flushes are left-major in *arrival* order; arrival
    order equals ``(stamp.time, source, seq)`` order whenever upstream
    delivery is time-monotone (true on the zero-latency parity
    topologies; the known limits are documented in DESIGN.md §12).
    """
    return (
        (lt.stamp.time, lt.source, lt.seq),
        (rt.stamp.time, rt.source, rt.seq),
    )


class ShardedOperatorAdapter(Operator):
    """One shard of a blocking operator, speaking the envelope protocol.

    Wraps the shard's ``inner`` operator (a fresh instance built from the
    same spec as the conceptual node).  Tuple and batch input delegate
    straight to the inner operator; the timer hook converts each flush
    into one envelope for the merge stage.  ``stats`` and ``lineage``
    are *delegating properties* so runtime bookkeeping (and checkpoint
    restore, which swaps the inner stats object) sees one shared truth.
    """

    def __init__(self, inner: Operator, shard_index: int, shard_count: int) -> None:
        if not inner.is_blocking:
            raise StreamLoaderError(
                f"{inner.name}: only blocking operators can be sharded"
            )
        # Set before super().__init__ — the base class assigns
        # self.stats/self.lineage, which the delegating properties below
        # forward to the inner operator.
        self.inner = inner
        super().__init__(name=f"{inner.name}[{shard_index}]")
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.interval = inner.interval
        self.input_ports = inner.input_ports
        self.cost_per_tuple = inner.cost_per_tuple
        self.span_name = inner.span_name
        self._envelopes = 0
        # Instance-bound fast path: shadows the delegating methods below,
        # saving one call frame per tuple on the hottest path (the inner
        # operator does its own stats/lineage bookkeeping, and ``inner``
        # is never swapped — restore mutates it in place).
        self.on_tuple = inner.on_tuple
        self.on_batch = inner.on_batch

    @property
    def stats(self):
        return self.inner.stats

    @stats.setter
    def stats(self, value) -> None:
        self.inner.stats = value

    @property
    def lineage(self):
        return self.inner.lineage

    @lineage.setter
    def lineage(self, value) -> None:
        self.inner.lineage = value

    def on_tuple(self, tuple_: SensorTuple, port: int = 0) -> list[SensorTuple]:
        return self.inner.on_tuple(tuple_, port)

    def on_batch(self, tuples, port: int = 0) -> list[SensorTuple]:
        return self.inner.on_batch(tuples, port)

    def on_timer(self, now: float) -> list[SensorTuple]:
        inner = self.inner
        pair_log: "list | None" = None
        if isinstance(inner, JoinOperator):
            pair_log = inner._pair_log = []
        try:
            emitted = inner.on_timer(now)
        finally:
            if pair_log is not None:
                inner._pair_log = None
        if pair_log is not None:
            entries = tuple(
                (order_key_for_pair(lt, rt), out)
                for out, (lt, rt) in zip(emitted, pair_log)
            )
        else:
            # Aggregation: groups are whole on one shard, and the
            # unsharded flush orders them by str(group key).
            group_by = getattr(inner, "group_by", None)
            entries = tuple((str(t.get(group_by)), t) for t in emitted)
        envelope = SensorTuple(
            payload={
                SHARD_KEY: self.shard_index,
                EPOCH_KEY: now,
                ENTRIES_KEY: entries,
            },
            stamp=SttStamp(time=now, location=Point(0.0, 0.0)),
            source=f"{inner.name}#shard{self.shard_index}",
            seq=self._envelopes,
        )
        self._envelopes += 1
        return [envelope]

    def reset(self) -> None:
        self.inner.reset()
        self._envelopes = 0

    def checkpoint(self) -> dict:
        return {
            "stats": self.stats.snapshot(),
            "inner": self.inner.checkpoint(),
            "envelopes": self._envelopes,
        }

    def restore(self, state: dict) -> None:
        if not isinstance(state, dict) or "inner" not in state:
            raise CheckpointError(f"{self.name}: malformed shard checkpoint")
        self.inner.restore(state["inner"])
        self._envelopes = state.get("envelopes", 0)

    def describe(self) -> str:
        return (
            f"shard {self.shard_index}/{self.shard_count} of "
            f"{self.inner.describe()}"
        )


class ShardMergeOperator(Operator):
    """Re-establishes the unsharded flush order downstream of N shards.

    Non-blocking (it reacts to envelopes, not to a timer) but stateful —
    :attr:`checkpointable` is overridden so the runtime snapshots it.

    An *epoch* is one conceptual flush, identified by its virtual flush
    time.  Epoch T closes once every shard's latest envelope time has
    reached T: per-shard envelope times are strictly monotone, so a dead
    shard's gap closes as soon as its post-recovery punctuation arrives
    (surviving shards are never held up beyond the failed window —
    at-most-once, exactly the PR 1 recovery bound).  Envelopes for
    already-closed epochs (a recovered shard replaying a flush the merge
    has moved past) are dropped, never duplicated.

    Closing an epoch sorts the union of the shards' entries by order key
    and renumbers ``seq`` as the unsharded operator would have:
    aggregation seq is ``firings * 1000 + offset`` (every firing
    produces envelopes, so closed-epoch count ≡ the unsharded
    ``timer_firings``); join seq is the per-flush offset.
    """

    cost_per_tuple = 0.5  # sort + renumber, no predicate work

    def __init__(self, shard_count: int, mode: str, name: str = "") -> None:
        if mode not in ("aggregate", "join"):
            raise StreamLoaderError(f"unknown shard merge mode {mode!r}")
        super().__init__(name or "shard-merge")
        self.shard_count = shard_count
        self.mode = mode
        #: epoch time -> shard index -> entries tuple.
        self._pending: dict[float, dict[int, tuple]] = {}
        #: shard index -> latest envelope (punctuation) time seen.
        self._latest: dict[int, float] = {}
        self._epochs_closed = 0
        self._closed_through = float("-inf")
        self._skew_histogram = None
        self._entry_counters: "list | None" = None

    @property
    def checkpointable(self) -> bool:
        return True

    def bind_obs(self, metrics, service: str) -> None:
        """Cache per-shard instruments from the PR 3 registry."""
        self._skew_histogram = metrics.histogram(
            "shard_flush_skew_ratio",
            "Max/mean entries per shard at epoch close (1.0 = balanced)",
            buckets=SKEW_BUCKETS,
            service=service,
        )
        self._entry_counters = [
            metrics.counter(
                "shard_flush_entries_total",
                "Flush entries contributed by each shard",
                service=service,
                shard=str(index),
            )
            for index in range(self.shard_count)
        ]

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        payload = tuple_.payload
        shard = payload[SHARD_KEY]
        epoch = payload[EPOCH_KEY]
        if epoch > self._closed_through:
            self._pending.setdefault(epoch, {})[shard] = payload[ENTRIES_KEY]
        latest = self._latest.get(shard)
        if latest is None or epoch > latest:
            self._latest[shard] = epoch
        return self._close_ready_epochs()

    def _close_ready_epochs(self) -> list[SensorTuple]:
        out: list[SensorTuple] = []
        while self._pending:
            epoch = min(self._pending)
            if len(self._latest) < self.shard_count:
                break
            if any(latest < epoch for latest in self._latest.values()):
                break
            by_shard = self._pending.pop(epoch)
            self._closed_through = epoch
            self._epochs_closed += 1
            self._observe_epoch(by_shard)
            merged: list[tuple] = []
            for shard in sorted(by_shard):
                merged.extend(by_shard[shard])
            merged.sort(key=lambda entry: entry[0])
            base = self._epochs_closed * 1000 if self.mode == "aggregate" else 0
            for offset, (_, emitted) in enumerate(merged):
                out.append(replace(emitted, seq=base + offset))
        return out

    def _observe_epoch(self, by_shard: dict[int, tuple]) -> None:
        if self._entry_counters is not None:
            for shard, entries in by_shard.items():
                if entries:
                    self._entry_counters[shard].inc(len(entries))
        if self._skew_histogram is not None:
            counts = [len(by_shard.get(k, ())) for k in range(self.shard_count)]
            total = sum(counts)
            if total:
                self._skew_histogram.observe(
                    max(counts) / (total / self.shard_count)
                )

    def reset(self) -> None:
        super().reset()
        self._pending = {}
        self._latest = {}
        self._epochs_closed = 0
        self._closed_through = float("-inf")

    def checkpoint(self) -> dict:
        state = super().checkpoint()
        state["pending"] = {
            epoch: dict(by_shard) for epoch, by_shard in self._pending.items()
        }
        state["latest"] = dict(self._latest)
        state["epochs_closed"] = self._epochs_closed
        state["closed_through"] = self._closed_through
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self._pending = {
            epoch: dict(by_shard)
            for epoch, by_shard in state.get("pending", {}).items()
        }
        self._latest = dict(state.get("latest", {}))
        self._epochs_closed = state.get("epochs_closed", 0)
        self._closed_through = state.get("closed_through", float("-inf"))

    def describe(self) -> str:
        return f"merge of {self.shard_count} {self.mode} shards"
