"""Sharding plane for blocking operators: partitioner, adapter, merge.

The blocking operators (Aggregation, Join) cache every tuple of their
window on one operator process, which caps their throughput at one node's
capacity.  Sharding splits one *conceptual* blocking node into N replica
processes, each holding the slice of the key space a deterministic hash
partitioner assigns to it, plus one downstream **merge** stage that
re-establishes the unsharded flush order before the consumer.  The
conceptual dataflow the user designs is untouched — only the deployed
DSN/SCN plan fans out (DESIGN.md §12).

Three pieces live here:

- :func:`partition_index` — the partitioner contract.  CRC32 over the
  ``repr`` of the key values, modulo the shard count: deterministic
  across processes and runs (``hash()`` is salted per interpreter via
  ``PYTHONHASHSEED``, so it is exactly what this must *not* use).
- :class:`ShardedOperatorAdapter` — wraps one shard's inner operator.
  Tuples pass straight through to the inner operator; every timer firing
  is converted into exactly one **envelope** tuple carrying the flush's
  emissions tagged with per-entry order keys.  Empty flushes still emit
  an (empty) envelope: the envelope doubles as the shard's punctuation,
  telling the merge "shard k has flushed through virtual time T" —
  without it an empty window would be indistinguishable from a slow
  shard and the merge could never close an epoch.
- :class:`ShardMergeOperator` — non-blocking but stateful: buffers
  envelopes per flush epoch, closes an epoch once every shard's
  punctuation has passed it, re-sorts the union of entries by order key
  and renumbers ``seq`` exactly as the unsharded operator would have.

PR 6 adds the *elastic* overlay (DESIGN.md §13): a mutable
:class:`ShardAssignment` consulted ahead of the hash partitioner so a
rebalancer can migrate individual keys between shards or split one hot
key round-robin across replica shards.  Split replicas emit **partial**
entries (the raw ``[count, sum, min, max]`` accumulators next to the
replica-local tuple); the merge folds runs of equal order keys back into
the single tuple the unsharded operator would have emitted, before
sorting and renumbering — so nothing downstream can tell a split key
from a plain one.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Sequence

from repro.errors import CheckpointError, StreamLoaderError
from repro.streams.base import Operator
from repro.streams.join import JoinOperator
from repro.streams.tuple import SensorTuple
from repro.stt.event import SttStamp
from repro.stt.spatial import Box, Point

#: Envelope payload keys (the wire format between shard and merge).
SHARD_KEY = "__shard__"
EPOCH_KEY = "__epoch__"
ENTRIES_KEY = "__entries__"

#: Histogram buckets for the flush skew ratio (max/mean entries per
#: shard); 1.0 is a perfectly balanced epoch, N is total collapse onto
#: one of N shards.
SKEW_BUCKETS = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 8.0)


def partition_index(values: "tuple | Sequence", count: int) -> int:
    """Deterministic shard index for a key-value tuple.

    CRC32 of ``repr(values)`` mod ``count`` — stable across interpreter
    restarts and machines (unlike builtin ``hash``), cheap, and
    well-mixed for the string/number keys group-by and equi-join use.
    """
    return zlib.crc32(repr(tuple(values)).encode("utf-8")) % count


class ShardAssignment:
    """Mutable routing overlay consulted ahead of :func:`partition_index`.

    The static partitioner is a pure function of the key; elasticity needs
    per-key exceptions that a rebalancer can install at runtime without
    re-deploying.  Resolution order in :meth:`index_for`:

    1. **splits** — the key is replicated round-robin across its replica
       shards (a per-key counter, deterministic: the n-th tuple of a split
       key always lands on the same replica for the same history);
    2. **overrides** — the key was migrated to an explicit shard;
    3. the CRC32 hash default.

    One instance is shared by every router/forwarder of a shard group, so
    a single ``migrate()`` re-routes the broker fan-out and the
    operator-to-operator forwarding path at once.  ``version`` counts
    mutations (for logs and tests); no wall-clock anywhere.
    """

    __slots__ = ("count", "overrides", "splits", "version", "_rr")

    def __init__(self, count: int) -> None:
        if count < 1:
            raise StreamLoaderError(f"shard count must be positive: {count}")
        self.count = count
        #: key values tuple -> explicit shard index (migrated keys).
        self.overrides: dict[tuple, int] = {}
        #: key values tuple -> replica shard indexes (split keys).
        self.splits: dict[tuple, tuple[int, ...]] = {}
        self.version = 0
        self._rr: dict[tuple, int] = {}

    def index_for(self, values: "tuple | Sequence") -> int:
        key = tuple(values)
        replicas = self.splits.get(key)
        if replicas is not None:
            turn = self._rr.get(key, 0)
            self._rr[key] = turn + 1
            return replicas[turn % len(replicas)]
        index = self.overrides.get(key)
        if index is not None:
            return index
        return partition_index(key, self.count)

    def migrate(self, values: "tuple | Sequence", recipient: int) -> None:
        """Pin ``values`` to ``recipient`` (undoes any split)."""
        key = tuple(values)
        self.splits.pop(key, None)
        self._rr.pop(key, None)
        self.overrides[key] = recipient
        self.version += 1

    def split(self, values: "tuple | Sequence",
              replicas: "Sequence[int]") -> None:
        """Spray ``values`` round-robin across ``replicas``."""
        key = tuple(values)
        if not replicas:
            raise StreamLoaderError(f"split of {key!r} needs replicas")
        self.overrides.pop(key, None)
        self.splits[key] = tuple(replicas)
        self.version += 1

    def owner_of(self, values: "tuple | Sequence") -> "int | None":
        """Current single owner, or None when the key is split."""
        key = tuple(values)
        if key in self.splits:
            return None
        return self.overrides.get(key, partition_index(key, self.count))

    def describe(self) -> str:
        return (
            f"assignment v{self.version}: {len(self.overrides)} migrated, "
            f"{len(self.splits)} split of {self.count} shards"
        )


def order_key_for_pair(lt: SensorTuple, rt: SensorTuple) -> tuple:
    """Merge order key for one join output pair.

    Unsharded join flushes are left-major in *arrival* order; arrival
    order equals ``(stamp.time, source, seq)`` order whenever upstream
    delivery is time-monotone (true on the zero-latency parity
    topologies; the known limits are documented in DESIGN.md §12).
    """
    return (
        (lt.stamp.time, lt.source, lt.seq),
        (rt.stamp.time, rt.source, rt.seq),
    )


class ShardedOperatorAdapter(Operator):
    """One shard of a blocking operator, speaking the envelope protocol.

    Wraps the shard's ``inner`` operator (a fresh instance built from the
    same spec as the conceptual node).  Tuple and batch input delegate
    straight to the inner operator; the timer hook converts each flush
    into one envelope for the merge stage.  ``stats`` and ``lineage``
    are *delegating properties* so runtime bookkeeping (and checkpoint
    restore, which swaps the inner stats object) sees one shared truth.
    """

    def __init__(self, inner: Operator, shard_index: int, shard_count: int) -> None:
        if not inner.is_blocking:
            raise StreamLoaderError(
                f"{inner.name}: only blocking operators can be sharded"
            )
        # Set before super().__init__ — the base class assigns
        # self.stats/self.lineage, which the delegating properties below
        # forward to the inner operator.
        self.inner = inner
        super().__init__(name=f"{inner.name}[{shard_index}]")
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.interval = inner.interval
        self.input_ports = inner.input_ports
        self.cost_per_tuple = inner.cost_per_tuple
        self.span_name = inner.span_name
        self._envelopes = 0
        #: Order keys (str) whose entries must carry partial accumulators
        #: for the merge's combine stage (hot-key splitting).
        self.split_keys: set[str] = set()
        #: Key values tuples this shard no longer owns (migrated away);
        #: stragglers are re-routed via ``_reroute`` instead of cached.
        self.disowned: set[tuple] = set()
        #: Per-key tuple counts, maintained only on the elastic input
        #: path — the rebalancer's hot-key signal.
        self.key_loads: dict[tuple, int] = {}
        self.elastic_keys: "tuple[tuple[str, ...], ...] | None" = None
        self._reroute = None
        # Instance-bound fast path: shadows the delegating methods below,
        # saving one call frame per tuple on the hottest path (the inner
        # operator does its own stats/lineage bookkeeping, and ``inner``
        # is never swapped — restore mutates it in place).
        self.on_tuple = inner.on_tuple
        self.on_batch = inner.on_batch

    @property
    def stats(self):
        return self.inner.stats

    @stats.setter
    def stats(self, value) -> None:
        self.inner.stats = value

    @property
    def lineage(self):
        return self.inner.lineage

    @lineage.setter
    def lineage(self, value) -> None:
        self.inner.lineage = value

    def on_tuple(self, tuple_: SensorTuple, port: int = 0) -> list[SensorTuple]:
        return self.inner.on_tuple(tuple_, port)

    def on_batch(self, tuples, port: int = 0) -> list[SensorTuple]:
        return self.inner.on_batch(tuples, port)

    # -- elastic overlay ------------------------------------------------------

    def enable_elastic(self, keys_by_port, reroute=None) -> None:
        """Arm the elastic overlay without leaving the fast path.

        The zero-overhead ``inner.on_tuple`` binding stays in place until
        a key is actually disowned — an idle elastic deployment costs
        exactly what a static one does.  Key loads are not counted per
        tuple either; :meth:`on_timer` harvests them from the inner
        window state at each flush (O(groups), not O(tuples)).
        ``keys_by_port`` mirrors the router's partition keys;
        ``reroute(tuple_, port)`` delivers a straggler of a migrated key
        to its current owner (executor-provided).
        """
        self.elastic_keys = tuple(tuple(keys) for keys in keys_by_port)
        self._reroute = reroute
        self._rebind()

    def _rebind(self) -> None:
        """Pick the tuple path the current overlay state requires: the
        disowned-key filter only while something *is* disowned."""
        if self.disowned and self.elastic_keys is not None:
            self.on_tuple = self._elastic_on_tuple
            self.on_batch = self._elastic_on_batch
        else:
            self.on_tuple = self.inner.on_tuple
            self.on_batch = self.inner.on_batch

    def _key_values(self, tuple_: SensorTuple, port: int) -> tuple:
        keys = self.elastic_keys
        names = keys[port] if port < len(keys) else keys[-1]
        return tuple(tuple_.get(name) for name in names)

    def _elastic_on_tuple(self, tuple_: SensorTuple,
                          port: int = 0) -> list[SensorTuple]:
        values = self._key_values(tuple_, port)
        if values in self.disowned:
            if self._reroute is not None:
                self._reroute(tuple_, port)
            return []
        return self.inner.on_tuple(tuple_, port)

    def _elastic_on_batch(self, tuples, port: int = 0) -> list[SensorTuple]:
        kept = []
        for tuple_ in tuples:
            values = self._key_values(tuple_, port)
            if values in self.disowned:
                if self._reroute is not None:
                    self._reroute(tuple_, port)
                continue
            kept.append(tuple_)
        if not kept:
            return []
        return self.inner.on_batch(kept, port)

    def _harvest_key_loads(self) -> None:
        """Fold the inner window's per-key sizes into ``key_loads``.

        Runs once per flush.  For a tumbling aggregation this sums to
        exactly the per-key tuple counts since the last reset; for
        sliding windows and joins every key is over-counted by the same
        retention factor, which leaves the policy's rankings and ratios
        intact.
        """
        loads = self.key_loads
        inner = self.inner
        groups = getattr(inner, "_groups", None)
        if groups is not None:
            for key, acc in groups.items():
                values = (key,)
                loads[values] = loads.get(values, 0) + len(acc.members)
            return
        if isinstance(inner, JoinOperator):
            keys = self.elastic_keys
            for cache, names in ((inner.left_cache, keys[0]),
                                 (inner.right_cache, keys[-1])):
                name = names[0]
                for tuple_ in cache:
                    values = (tuple_.get(name),)
                    loads[values] = loads.get(values, 0) + 1

    def disown(self, values: "tuple | Sequence") -> None:
        """Mark a migrated-away key: cached state must already be
        extracted; stragglers re-route to the new owner."""
        self.disowned.add(tuple(values))
        self._rebind()

    def reclaim(self, values: "tuple | Sequence") -> None:
        """Clear a disowned marker (the key is coming home); drops back
        to the zero-overhead path once nothing is disowned."""
        self.disowned.discard(tuple(values))
        self._rebind()

    def mark_split(self, order_key: str) -> None:
        """Emit partial accumulators for this order key from now on."""
        self.split_keys.add(order_key)

    def extract_partition(self, values: "tuple | Sequence",
                          keys_by_port) -> dict:
        """Remove and return one key's slice of the inner window state."""
        inner = self.inner
        if isinstance(inner, JoinOperator):
            state = inner.extract_partition(
                keys_by_port[0][0], keys_by_port[-1][0], tuple(values)[0]
            )
            return {"kind": "join", **state}
        return {"kind": "aggregate",
                "tuples": inner.extract_partition(tuple(values)[0])}

    def adopt_partition(self, state: dict) -> None:
        """Fold a donor's extracted key slice into the inner window."""
        inner = self.inner
        if state.get("kind") == "join":
            inner.adopt_partition(state)
        else:
            inner.adopt_partition(state["tuples"])

    def on_timer(self, now: float) -> list[SensorTuple]:
        inner = self.inner
        if self.elastic_keys is not None:
            self._harvest_key_loads()
        pair_log: "list | None" = None
        partial_log: "dict | None" = None
        if isinstance(inner, JoinOperator):
            pair_log = inner._pair_log = []
        elif self.split_keys and getattr(inner, "incremental", False):
            partial_log = inner._partial_log = {}
        try:
            emitted = inner.on_timer(now)
        finally:
            if pair_log is not None:
                inner._pair_log = None
            if partial_log is not None:
                inner._partial_log = None
        if pair_log is not None:
            entries = tuple(
                (order_key_for_pair(lt, rt), out)
                for out, (lt, rt) in zip(emitted, pair_log)
            )
        elif partial_log:
            # Split keys ship their raw accumulators so the merge can
            # fold replica partials back into one tuple.
            group_by = getattr(inner, "group_by", None)
            items: list[tuple] = []
            for t in emitted:
                okey = str(t.get(group_by))
                partial = partial_log.get(okey)
                if okey in self.split_keys and partial is not None:
                    items.append((okey, t, partial))
                else:
                    items.append((okey, t))
            entries = tuple(items)
        else:
            # Aggregation: groups are whole on one shard, and the
            # unsharded flush orders them by str(group key).
            group_by = getattr(inner, "group_by", None)
            entries = tuple((str(t.get(group_by)), t) for t in emitted)
        envelope = SensorTuple(
            payload={
                SHARD_KEY: self.shard_index,
                EPOCH_KEY: now,
                ENTRIES_KEY: entries,
            },
            stamp=SttStamp(time=now, location=Point(0.0, 0.0)),
            source=f"{inner.name}#shard{self.shard_index}",
            seq=self._envelopes,
        )
        self._envelopes += 1
        return [envelope]

    def reset(self) -> None:
        self.inner.reset()
        self._envelopes = 0
        self.split_keys = set()
        self.disowned = set()
        self.key_loads = {}
        self._rebind()

    def checkpoint(self) -> dict:
        return {
            "stats": self.stats.snapshot(),
            "inner": self.inner.checkpoint(),
            "envelopes": self._envelopes,
            # Elastic overlay state: a restored donor must keep refusing
            # (and re-routing) keys it migrated away, or recovery would
            # re-grow the moved group and the merge would see it twice.
            "disowned": sorted(self.disowned, key=repr),
            "split_keys": sorted(self.split_keys),
            "key_loads": dict(self.key_loads),
        }

    def restore(self, state: dict) -> None:
        if not isinstance(state, dict) or "inner" not in state:
            raise CheckpointError(f"{self.name}: malformed shard checkpoint")
        self.inner.restore(state["inner"])
        self._envelopes = state.get("envelopes", 0)
        self.disowned = {tuple(values) for values in state.get("disowned", ())}
        self.split_keys = set(state.get("split_keys", ()))
        self.key_loads = {
            tuple(k): v for k, v in state.get("key_loads", {}).items()
        }
        if self.disowned and self.elastic_keys is not None:
            # Defensive: purge any disowned slice the snapshot still held
            # (checkpoints taken right after a handoff never do).
            for values in sorted(self.disowned, key=repr):
                self.extract_partition(values, self.elastic_keys)
        self._rebind()

    def describe(self) -> str:
        return (
            f"shard {self.shard_index}/{self.shard_count} of "
            f"{self.inner.describe()}"
        )


def _combine_split_entries(run: "list[tuple]") -> tuple:
    """Fold one order key's partial entries into the oracle tuple.

    ``run`` is every replica's ``(order_key, tuple, partial)`` entry for
    one split key within one epoch, in shard-index order.  The fold
    mirrors ``AggregationOperator._emit_group`` exactly: summed
    count/sum, min/max of extrema, payload rewritten per aggregation
    function, bounding box union (degenerate boxes collapse to a point),
    and the base tuple taken from the replica holding the key's earliest
    member — whose source/stamp already match the unsharded emission.
    Partial sums fold in shard order, so AVG/SUM equal the unsharded
    float accumulation only when the values are exactly representable
    (the combine-safety caveat documented in DESIGN.md §13).
    """
    base_key, base_tuple, _ = min(run, key=lambda entry: entry[2]["first"])
    folded: dict[str, list] = {}
    for _, _, partial in run:
        for attr, (count, total, low, high) in partial["stats"].items():
            agg = folded.setdefault(attr, [0, 0.0, None, None])
            agg[0] += count
            agg[1] += total
            if low is not None and (agg[2] is None or low < agg[2]):
                agg[2] = low
            if high is not None and (agg[3] is None or high > agg[3]):
                agg[3] = high
    payload = dict(base_tuple.payload)
    for attr, (count, total, low, high) in folded.items():
        for out_key, value in (
            (f"count_{attr}", count),
            (f"avg_{attr}", total / count if count else None),
            (f"sum_{attr}", total if count else None),
            (f"min_{attr}", low),
            (f"max_{attr}", high),
        ):
            if out_key in payload:
                payload[out_key] = value
    boxes = [partial["bbox"] for _, _, partial in run
             if partial["bbox"] is not None]
    stamp = base_tuple.stamp
    if boxes:
        south = min(box[0] for box in boxes)
        west = min(box[1] for box in boxes)
        north = max(box[2] for box in boxes)
        east = max(box[3] for box in boxes)
        if south == north and west == east:
            location = Point(south, west)
        else:
            location = Box(south=south, west=west, north=north, east=east)
        stamp = replace(stamp, location=location)
    return (base_key, replace(base_tuple, payload=payload, stamp=stamp))


def _fold_split_runs(entries: "list[tuple]") -> "list[tuple]":
    """Collapse runs of equal order keys whose entries carry partials."""
    out: list[tuple] = []
    i = 0
    n = len(entries)
    while i < n:
        j = i + 1
        while j < n and entries[j][0] == entries[i][0]:
            j += 1
        run = entries[i:j]
        if j - i > 1 and all(len(entry) == 3 for entry in run):
            out.append(_combine_split_entries(run))
        else:
            out.extend(run)
        i = j
    return out


class ShardMergeOperator(Operator):
    """Re-establishes the unsharded flush order downstream of N shards.

    Non-blocking (it reacts to envelopes, not to a timer) but stateful —
    :attr:`checkpointable` is overridden so the runtime snapshots it.

    An *epoch* is one conceptual flush, identified by its virtual flush
    time.  Epoch T closes once every shard's latest envelope time has
    reached T: per-shard envelope times are strictly monotone, so a dead
    shard's gap closes as soon as its post-recovery punctuation arrives
    (surviving shards are never held up beyond the failed window —
    at-most-once, exactly the PR 1 recovery bound).  Envelopes for
    already-closed epochs (a recovered shard replaying a flush the merge
    has moved past) are dropped, never duplicated.

    Closing an epoch sorts the union of the shards' entries by order key
    and renumbers ``seq`` as the unsharded operator would have:
    aggregation seq is ``firings * 1000 + offset`` (every firing
    produces envelopes, so closed-epoch count ≡ the unsharded
    ``timer_firings``); join seq is the per-flush offset.
    """

    cost_per_tuple = 0.5  # sort + renumber, no predicate work

    def __init__(self, shard_count: int, mode: str, name: str = "") -> None:
        if mode not in ("aggregate", "join"):
            raise StreamLoaderError(f"unknown shard merge mode {mode!r}")
        super().__init__(name or "shard-merge")
        self.shard_count = shard_count
        self.mode = mode
        #: epoch time -> shard index -> entries tuple.
        self._pending: dict[float, dict[int, tuple]] = {}
        #: shard index -> latest envelope (punctuation) time seen.
        self._latest: dict[int, float] = {}
        self._epochs_closed = 0
        self._closed_through = float("-inf")
        self._skew_histogram = None
        self._entry_counters: "list | None" = None
        #: Always-on per-shard flush-entry totals — the rebalancer's load
        #: signal even when no metrics registry is bound.
        self.entry_totals: list[int] = [0] * shard_count

    @property
    def checkpointable(self) -> bool:
        return True

    def bind_obs(self, metrics, service: str) -> None:
        """Cache per-shard instruments from the PR 3 registry."""
        self._skew_histogram = metrics.histogram(
            "shard_flush_skew_ratio",
            "Max/mean entries per shard at epoch close (1.0 = balanced)",
            buckets=SKEW_BUCKETS,
            service=service,
        )
        self._entry_counters = [
            metrics.counter(
                "shard_flush_entries_total",
                "Flush entries contributed by each shard",
                service=service,
                shard=str(index),
            )
            for index in range(self.shard_count)
        ]

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        payload = tuple_.payload
        shard = payload[SHARD_KEY]
        epoch = payload[EPOCH_KEY]
        if epoch > self._closed_through:
            self._pending.setdefault(epoch, {})[shard] = payload[ENTRIES_KEY]
        latest = self._latest.get(shard)
        if latest is None or epoch > latest:
            self._latest[shard] = epoch
        return self._close_ready_epochs()

    def _close_ready_epochs(self) -> list[SensorTuple]:
        out: list[SensorTuple] = []
        while self._pending:
            epoch = min(self._pending)
            if len(self._latest) < self.shard_count:
                break
            if any(latest < epoch for latest in self._latest.values()):
                break
            by_shard = self._pending.pop(epoch)
            self._closed_through = epoch
            self._epochs_closed += 1
            self._observe_epoch(by_shard)
            merged: list[tuple] = []
            for shard in sorted(by_shard):
                merged.extend(by_shard[shard])
            # Stable sort: within one order key, shard order survives —
            # the fold below relies on it for deterministic summation.
            merged.sort(key=lambda entry: entry[0])
            if any(len(entry) == 3 for entry in merged):
                merged = _fold_split_runs(merged)
            base = self._epochs_closed * 1000 if self.mode == "aggregate" else 0
            for offset, entry in enumerate(merged):
                out.append(replace(entry[1], seq=base + offset))
        return out

    def _observe_epoch(self, by_shard: dict[int, tuple]) -> None:
        for shard, entries in by_shard.items():
            if entries:
                self.entry_totals[shard] += len(entries)
        if self._entry_counters is not None:
            for shard, entries in by_shard.items():
                if entries:
                    self._entry_counters[shard].inc(len(entries))
        if self._skew_histogram is not None:
            counts = [len(by_shard.get(k, ())) for k in range(self.shard_count)]
            total = sum(counts)
            if total:
                self._skew_histogram.observe(
                    max(counts) / (total / self.shard_count)
                )

    def reset(self) -> None:
        super().reset()
        self._pending = {}
        self._latest = {}
        self._epochs_closed = 0
        self._closed_through = float("-inf")
        self.entry_totals = [0] * self.shard_count

    def checkpoint(self) -> dict:
        state = super().checkpoint()
        state["pending"] = {
            epoch: dict(by_shard) for epoch, by_shard in self._pending.items()
        }
        state["latest"] = dict(self._latest)
        state["epochs_closed"] = self._epochs_closed
        state["closed_through"] = self._closed_through
        state["entry_totals"] = list(self.entry_totals)
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self._pending = {
            epoch: dict(by_shard)
            for epoch, by_shard in state.get("pending", {}).items()
        }
        self._latest = dict(state.get("latest", {}))
        self._epochs_closed = state.get("epochs_closed", 0)
        self._closed_through = state.get("closed_through", float("-inf"))
        self.entry_totals = list(
            state.get("entry_totals", [0] * self.shard_count)
        )

    def describe(self) -> str:
        return f"merge of {self.shard_count} {self.mode} shards"
