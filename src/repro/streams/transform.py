"""Transform — ▷trans s: apply a transformation function to every tuple.

The paper's requirement list for the transform family: "(1) changing the
unit of measure (e.g. from yards to meters) or geographical coordinates
(from one standard to another one); ... (3) checking that data conform to
given validation rules (e.g. dates conforming to given patterns)".

:class:`TransformOperator` covers (1) declaratively: a set of attribute
assignments in the condition language (each can overwrite an existing
attribute or be combined with renames/projection).  Unit and coordinate
conversions are expression built-ins (``convert``, see
:mod:`repro.expr.functions`).  :class:`ValidateOperator` covers (3).
"""

from __future__ import annotations

from repro.errors import DataflowError, ExpressionError
from repro.expr.eval import CompiledExpression, compile_expression
from repro.expr.vectorize import predicate_kernel, values_kernel
from repro.streams.base import NonBlockingOperator
from repro.streams.tuple import SensorTuple


class TransformOperator(NonBlockingOperator):
    """Rewrite tuple payloads: assignments, then renames, then projection.

    Args:
        assignments: attribute -> expression over the *input* payload.
            All expressions see the original values (no chaining within one
            tuple), so assignment order never matters.
        rename: old name -> new name, applied after assignments.
        project: if given, keep only these attributes (post-rename names).

    >>> op = TransformOperator({"length_m": "convert(length_yd, 'yard', 'meter')"})
    """

    def __init__(
        self,
        assignments: "dict[str, str | CompiledExpression] | None" = None,
        rename: "dict[str, str] | None" = None,
        project: "list[str] | None" = None,
        name: str = "",
    ) -> None:
        super().__init__(name or "transform")
        if not assignments and not rename and not project:
            raise DataflowError(
                "transform needs at least one of assignments/rename/project"
            )
        self.assignments = {
            attr: (compile_expression(expr) if isinstance(expr, str) else expr).prepare()
            for attr, expr in (assignments or {}).items()
        }
        self.rename = dict(rename or {})
        self.project = list(project) if project is not None else None
        self._assign = [
            (attr, expr.bind()) for attr, expr in self.assignments.items()
        ]
        self._vassign = None  # column kernels, built on first columnar use

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        # Assignments see the original (immutable) payload — evaluating
        # against it directly both skips a dict copy and makes the
        # order-independence guarantee structural.
        values = tuple_.payload
        updated = dict(values)
        for attr, evaluate in self._assign:
            updated[attr] = evaluate(values)
        if self.rename:
            updated = {
                self.rename.get(name, name): value for name, value in updated.items()
            }
        if self.project is not None:
            updated = {name: updated[name] for name in self.project}
        return [tuple_.with_owned_payload(updated)]

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        # Batch fast path: assignments/rename/project are bound once; each
        # member is rewritten in a tight loop with per-tuple quarantine.
        assign = self._assign
        rename = self.rename
        project = self.project
        out: list[SensorTuple] = []
        append = out.append
        errors = 0
        for tuple_ in tuples:
            try:
                values = tuple_.payload
                updated = dict(values)
                for attr, evaluate in assign:
                    updated[attr] = evaluate(values)
                if rename:
                    updated = {
                        rename.get(name, name): value
                        for name, value in updated.items()
                    }
                if project is not None:
                    updated = {name: updated[name] for name in project}
                append(tuple_.with_owned_payload(updated))
            except ExpressionError:
                errors += 1
        if errors:
            self.stats.errors += errors
        return out

    def columnar_step(self, col, sel):
        """Column kernels: evaluate every assignment over the selection,
        then apply rename/project as whole-column dict operations.

        A row failing *any* assignment is quarantined whole-row, matching
        the row path's single ``try`` around all assignments.  Assignment
        kernels all read the pre-image columns (installs happen after all
        evaluations), which makes the order-independence guarantee
        structural here too.
        """
        kernels = self._vassign
        if kernels is None:
            kernels = self._vassign = [
                (attr, values_kernel(expr))
                for attr, expr in self.assignments.items()
            ]
        errors = 0
        if kernels:
            columns = col.columns
            count = col.count
            results = [kernel(columns, sel) for _, kernel in kernels]
            bad: "set[int]" = set()
            for _, errs in results:
                bad.update(errs)
            full = len(sel) == count and not bad
            for (attr, _), (vals, _) in zip(kernels, results):
                if full:
                    # Selection covers every row in order: the kernel's
                    # output is already row-aligned.
                    col.set_column(attr, vals)
                    continue
                column = [None] * count
                if bad:
                    for pos, i in enumerate(sel):
                        if i not in bad:
                            column[i] = vals[pos]
                else:
                    for pos, i in enumerate(sel):
                        column[i] = vals[pos]
                col.set_column(attr, column)
            if bad:
                errors = len(bad)
                sel = [i for i in sel if i not in bad]
        if self.rename:
            col.rename_columns(self.rename)
        if self.project is not None:
            col.project_columns(self.project)
        return sel, errors

    def describe(self) -> str:
        parts = [f"{attr}:={expr.source}" for attr, expr in self.assignments.items()]
        parts += [f"{old}->{new}" for old, new in self.rename.items()]
        if self.project is not None:
            parts.append(f"project[{','.join(self.project)}]")
        return f"▷trans({'; '.join(parts)})"


class ValidateOperator(NonBlockingOperator):
    """Check tuples against validation rules; quarantine violators.

    Each rule is a boolean expression; a tuple failing any rule is dropped
    and counted in ``stats.errors`` (the error-quarantine convention), so a
    bad reading never propagates into the warehouse.
    """

    def __init__(
        self, rules: "list[str | CompiledExpression]", name: str = ""
    ) -> None:
        super().__init__(name or "validate")
        if not rules:
            raise DataflowError("validate needs at least one rule")
        self.rules = [
            (compile_expression(rule) if isinstance(rule, str) else rule).prepare()
            for rule in rules
        ]
        self._checks = [rule.bind_bool() for rule in self.rules]
        self._vchecks = None  # column kernels, built on first columnar use

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        values = tuple_.payload  # rules only read; no per-tuple copy
        for check in self._checks:
            if not check(values):
                self.stats.errors += 1
                return []
        return [tuple_]

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        # Batch fast path: the rule list is bound once; violators and
        # evaluation failures are quarantined tuple by tuple.
        checks = self._checks
        out: list[SensorTuple] = []
        append = out.append
        errors = 0
        for tuple_ in tuples:
            values = tuple_.payload
            try:
                for check in checks:
                    if not check(values):
                        errors += 1
                        break
                else:
                    append(tuple_)
            except ExpressionError:
                errors += 1
        if errors:
            self.stats.errors += errors
        return out

    def columnar_step(self, col, sel):
        """Column kernels: narrow the selection through each rule in turn.

        Rule *k* only evaluates rows that passed rules *1..k-1* — the same
        evaluation set as the row path's first-violation ``break`` — and
        every non-True row (violation, evaluation failure, non-boolean)
        counts as an error, matching validate's quarantine convention.
        """
        kernels = self._vchecks
        if kernels is None:
            kernels = self._vchecks = [
                predicate_kernel(rule) for rule in self.rules
            ]
        errors = 0
        columns = col.columns
        for kernel in kernels:
            kept, _ = kernel(columns, sel)
            errors += len(sel) - len(kept)
            sel = kept
            if not sel:
                break
        return sel, errors

    def describe(self) -> str:
        rules = " ∧ ".join(rule.source for rule in self.rules)
        return f"validate({rules})"
