"""Join — s1 ⋈ᵗ_pred s2: windowed two-stream join.

Table 1: *"Every t time intervals, s1 and s2 are joined according to the
join predicate."*

Blocking, two input ports.  Both sides are cached; every ``t`` seconds all
cross pairs satisfying the predicate are emitted and both caches are
drained (tumbling windows).  The predicate addresses the two sides with
qualifiers — by default ``left``/``right`` (``left.city == right.city``).

Merged payloads follow :func:`repro.schema.infer.join_schema`: colliding
attribute names get the qualifier prefix, everything else keeps its name.
The output stamp takes the later of the pair's times at the coarser common
granularities, the pair's bounding location, and the union of themes —
the STT consistency rules for composition.

Flush strategy.  When the predicate's top-level ``and``-chain contains at
least one equi-conjunct between the two sides (``left.a == right.b``), the
flush **hash-partitions** the right window on those attributes and probes
it per left tuple, evaluating the full predicate only on key-matched
candidates — O(|L| + |R| + matches) instead of the O(|L| x |R|) nested
loop.  Candidate pairs still run the complete predicate, so results (and
their order and seq numbers) are identical to the nested loop; the only
observable difference is that pairs pruned by the hash never evaluate, so
predicate *errors* are only counted on candidate pairs.  The nested loop
remains for non-equi predicates, for ``hash_join=False``, and whenever a
window tuple is missing a key attribute or holds a key value outside the
plain scalar types (str/int/float/bool/None) whose hash semantics are
guaranteed to agree with ``==``.
"""

from __future__ import annotations

from repro.errors import DataflowError
from repro.expr.ast import AttributeRef, BinaryOp, Node
from repro.expr.eval import CompiledExpression, compile_expression
from repro.streams.base import BlockingOperator
from repro.streams.tuple import SensorTuple
from repro.streams.windows import TupleCache
from repro.stt.event import SttStamp
from repro.stt.granularity import common_spatial, common_temporal
from repro.stt.spatial import Box, representative_point


def merge_payloads(
    left: dict, right: dict, left_prefix: str, right_prefix: str
) -> dict:
    """Merge two payloads with collision prefixing (join output rule)."""
    collisions = set(left) & set(right)
    merged: dict[str, object] = {}
    for name, value in left.items():
        merged[f"{left_prefix}_{name}" if name in collisions else name] = value
    for name, value in right.items():
        merged[f"{right_prefix}_{name}" if name in collisions else name] = value
    return merged


class JoinOperator(BlockingOperator):
    """Windowed theta-join of two streams.

    >>> op = JoinOperator(
    ...     interval=60.0,
    ...     predicate="left.station == right.station",
    ... )
    >>> # feed port 0 (left) and port 1 (right), then op.on_timer(now)
    """

    input_ports = 2
    cost_per_tuple = 2.0  # caching + pairwise predicate evaluation

    def __init__(
        self,
        interval: float,
        predicate: "str | CompiledExpression",
        left_prefix: str = "left",
        right_prefix: str = "right",
        name: str = "",
        max_cache: int = 100_000,
        hash_join: bool = True,
    ) -> None:
        super().__init__(interval, name or "join")
        if left_prefix == right_prefix:
            raise DataflowError("join prefixes must differ")
        if isinstance(predicate, str):
            predicate = compile_expression(predicate)
        self.predicate = predicate.prepare()
        self.left_prefix = left_prefix
        self.right_prefix = right_prefix
        self.left_cache = TupleCache(max_tuples=max_cache)
        self.right_cache = TupleCache(max_tuples=max_cache)
        self.hash_join = hash_join
        #: [(left_attr, right_attr)] equi-conjuncts found in the predicate.
        self.equi_keys = self._extract_equi_keys(predicate.root)
        #: When set (to a list) by a sharding adapter, every emitted pair's
        #: source tuples are appended so the merge stage can order pairs
        #: across shards without re-parsing composed ``source`` strings.
        self._pair_log: "list[tuple[SensorTuple, SensorTuple]] | None" = None

    def _extract_equi_keys(self, root: Node) -> "list[tuple[str, str]]":
        """Equality conjuncts ``left.a == right.b`` in the top-level
        and-chain, normalized to (left_attr, right_attr) pairs."""

        def conjuncts(node: Node):
            if isinstance(node, BinaryOp) and node.op == "and":
                yield from conjuncts(node.left)
                yield from conjuncts(node.right)
            else:
                yield node

        pairs: list[tuple[str, str]] = []
        for node in conjuncts(root):
            if not (isinstance(node, BinaryOp) and node.op == "=="):
                continue
            left, right = node.left, node.right
            if not (isinstance(left, AttributeRef) and isinstance(right, AttributeRef)):
                continue
            if (left.qualifier == self.left_prefix
                    and right.qualifier == self.right_prefix):
                pairs.append((left.name, right.name))
            elif (left.qualifier == self.right_prefix
                    and right.qualifier == self.left_prefix):
                pairs.append((right.name, left.name))
        return pairs

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        if port == 0:
            self.left_cache.add(tuple_)
        else:
            self.right_cache.add(tuple_)
        return []

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        # Batch fast path: resolve the side once per batch, not per tuple.
        add = self.left_cache.add if port == 0 else self.right_cache.add
        for tuple_ in tuples:
            add(tuple_)
        return []

    #: Key value types whose hash/equality semantics are guaranteed to
    #: agree with the expression evaluator's ``==`` (numeric cross-type
    #: equality included; NaN keys are safe because candidates re-run the
    #: full predicate, which rejects NaN == NaN).
    _HASHABLE_KEY_TYPES = (str, int, float, bool, type(None))

    def _flush(self, now: float) -> list[SensorTuple]:
        left_window = self.left_cache.drain()
        right_window = self.right_cache.drain()
        if not left_window or not right_window:
            return []
        if self.hash_join and self.equi_keys:
            out = self._hash_flush(left_window, right_window, now)
            if out is not None:
                return out
        return self._nested_loop_flush(left_window, right_window, now)

    def _nested_loop_flush(
        self,
        left_window: list[SensorTuple],
        right_window: list[SensorTuple],
        now: float,
    ) -> list[SensorTuple]:
        """Reference O(|L| x |R|) flush — every pair runs the predicate."""
        out: list[SensorTuple] = []
        seq = 0
        for lt in left_window:
            l_values = lt.values()
            for rt in right_window:
                kwargs = {
                    self.left_prefix: l_values,
                    self.right_prefix: rt.values(),
                }
                try:
                    matched = self.predicate.evaluate_bool(None, **kwargs)
                except Exception:
                    self.stats.errors += 1
                    continue
                if not matched:
                    continue
                out.append(self._merge(lt, rt, now, seq))
                seq += 1
        return out

    def _hash_flush(
        self,
        left_window: list[SensorTuple],
        right_window: list[SensorTuple],
        now: float,
    ) -> "list[SensorTuple] | None":
        """Equi-key hash join; returns None to signal nested-loop fallback.

        The right window is bucketed on its key attributes; each left
        tuple probes its bucket and candidates run the *full* predicate,
        so emitted pairs, their left-major order, and seq numbers are
        exactly the nested loop's.
        """
        left_names = [pair[0] for pair in self.equi_keys]
        right_names = [pair[1] for pair in self.equi_keys]
        scalar = self._HASHABLE_KEY_TYPES

        buckets: dict[tuple, list[tuple[SensorTuple, dict]]] = {}
        for rt in right_window:
            r_values = rt.values()
            key = []
            for name in right_names:
                if name not in r_values:
                    return None  # the evaluator would raise per pair
                value = r_values[name]
                if not isinstance(value, scalar):
                    return None  # no hash==eq guarantee for this type
                key.append(value)
            buckets.setdefault(tuple(key), []).append((rt, r_values))

        out: list[SensorTuple] = []
        seq = 0
        probed: list[tuple] = []
        for lt in left_window:
            l_values = lt.values()
            key = []
            for name in left_names:
                if name not in l_values:
                    return None
                value = l_values[name]
                if not isinstance(value, scalar):
                    return None
                key.append(value)
            probed.append((lt, l_values, tuple(key)))
        for lt, l_values, key in probed:
            for rt, r_values in buckets.get(key, ()):
                kwargs = {
                    self.left_prefix: l_values,
                    self.right_prefix: r_values,
                }
                try:
                    matched = self.predicate.evaluate_bool(None, **kwargs)
                except Exception:
                    self.stats.errors += 1
                    continue
                if not matched:
                    continue
                out.append(self._merge(lt, rt, now, seq))
                seq += 1
        return out

    def _merge(
        self, lt: SensorTuple, rt: SensorTuple, now: float, seq: int
    ) -> SensorTuple:
        payload = merge_payloads(
            lt.values(), rt.values(), self.left_prefix, self.right_prefix
        )
        l_point = representative_point(lt.stamp.location)
        r_point = representative_point(rt.stamp.location)
        if l_point == r_point:
            location = lt.stamp.location
        else:
            location = Box(
                south=min(l_point.lat, r_point.lat),
                west=min(l_point.lon, r_point.lon),
                north=max(l_point.lat, r_point.lat),
                east=max(l_point.lon, r_point.lon),
            )
        themes = lt.stamp.themes + tuple(
            t for t in rt.stamp.themes if t not in lt.stamp.themes
        )
        stamp = SttStamp(
            time=max(lt.stamp.time, rt.stamp.time),
            location=location,
            temporal_granularity=common_temporal(
                lt.stamp.temporal_granularity, rt.stamp.temporal_granularity
            ),
            spatial_granularity=common_spatial(
                lt.stamp.spatial_granularity, rt.stamp.spatial_granularity
            ),
            themes=themes,
        )
        out = SensorTuple(
            payload=payload,
            stamp=stamp,
            source=f"{self.name}({lt.source}⋈{rt.source})",
            seq=seq,
        )
        if self._pair_log is not None:
            self._pair_log.append((lt, rt))
        if self.lineage is not None:
            self.lineage.record(out, (lt, rt), self.name, now)
        return out

    def extract_partition(
        self, left_attr: str, right_attr: str, value: object
    ) -> dict:
        """Remove and return one equi-key's slice of both windows."""
        moved_left = [t for t in self.left_cache if t.get(left_attr) == value]
        moved_right = [
            t for t in self.right_cache if t.get(right_attr) == value
        ]
        if moved_left:
            self.left_cache.restore(
                [t for t in self.left_cache if t.get(left_attr) != value],
                evicted=self.left_cache.evicted,
            )
        if moved_right:
            self.right_cache.restore(
                [t for t in self.right_cache if t.get(right_attr) != value],
                evicted=self.right_cache.evicted,
            )
        return {"left": moved_left, "right": moved_right}

    def adopt_partition(self, state: dict) -> None:
        """Fold a donor's extracted equi-key slice into both windows.

        Merged stable-sorted by stamp time (residents first on ties) so
        the caches stay approximately time-ordered for pruning.
        """
        for cache, moved in (
            (self.left_cache, state.get("left", ())),
            (self.right_cache, state.get("right", ())),
        ):
            moved = list(moved)
            if moved:
                cache.restore(
                    sorted(list(cache) + moved, key=lambda t: t.stamp.time),
                    evicted=cache.evicted,
                )

    def reset(self) -> None:
        super().reset()
        self.left_cache.clear()
        self.right_cache.clear()

    def checkpoint(self) -> dict:
        state = super().checkpoint()
        state["left"] = self.left_cache.snapshot()
        state["right"] = self.right_cache.snapshot()
        state["evicted"] = (self.left_cache.evicted, self.right_cache.evicted)
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        evicted = state.get("evicted", (0, 0))
        self.left_cache.restore(state["left"], evicted=evicted[0])
        self.right_cache.restore(state["right"], evicted=evicted[1])

    def describe(self) -> str:
        return f"s1 ⋈{self.interval}_{{{self.predicate.source}}} s2"
