"""Join — s1 ⋈ᵗ_pred s2: windowed two-stream join.

Table 1: *"Every t time intervals, s1 and s2 are joined according to the
join predicate."*

Blocking, two input ports.  Both sides are cached; every ``t`` seconds all
cross pairs satisfying the predicate are emitted and both caches are
drained (tumbling windows).  The predicate addresses the two sides with
qualifiers — by default ``left``/``right`` (``left.city == right.city``).

Merged payloads follow :func:`repro.schema.infer.join_schema`: colliding
attribute names get the qualifier prefix, everything else keeps its name.
The output stamp takes the later of the pair's times at the coarser common
granularities, the pair's bounding location, and the union of themes —
the STT consistency rules for composition.
"""

from __future__ import annotations

from repro.errors import DataflowError
from repro.expr.eval import CompiledExpression, compile_expression
from repro.streams.base import BlockingOperator
from repro.streams.tuple import SensorTuple
from repro.streams.windows import TupleCache
from repro.stt.event import SttStamp
from repro.stt.granularity import common_spatial, common_temporal
from repro.stt.spatial import Box, representative_point


def merge_payloads(
    left: dict, right: dict, left_prefix: str, right_prefix: str
) -> dict:
    """Merge two payloads with collision prefixing (join output rule)."""
    collisions = set(left) & set(right)
    merged: dict[str, object] = {}
    for name, value in left.items():
        merged[f"{left_prefix}_{name}" if name in collisions else name] = value
    for name, value in right.items():
        merged[f"{right_prefix}_{name}" if name in collisions else name] = value
    return merged


class JoinOperator(BlockingOperator):
    """Windowed theta-join of two streams.

    >>> op = JoinOperator(
    ...     interval=60.0,
    ...     predicate="left.station == right.station",
    ... )
    >>> # feed port 0 (left) and port 1 (right), then op.on_timer(now)
    """

    input_ports = 2
    cost_per_tuple = 2.0  # caching + pairwise predicate evaluation

    def __init__(
        self,
        interval: float,
        predicate: "str | CompiledExpression",
        left_prefix: str = "left",
        right_prefix: str = "right",
        name: str = "",
        max_cache: int = 100_000,
    ) -> None:
        super().__init__(interval, name or "join")
        if left_prefix == right_prefix:
            raise DataflowError("join prefixes must differ")
        if isinstance(predicate, str):
            predicate = compile_expression(predicate)
        self.predicate = predicate
        self.left_prefix = left_prefix
        self.right_prefix = right_prefix
        self.left_cache = TupleCache(max_tuples=max_cache)
        self.right_cache = TupleCache(max_tuples=max_cache)

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        if port == 0:
            self.left_cache.add(tuple_)
        else:
            self.right_cache.add(tuple_)
        return []

    def _flush(self, now: float) -> list[SensorTuple]:
        left_window = self.left_cache.drain()
        right_window = self.right_cache.drain()
        if not left_window or not right_window:
            return []
        out: list[SensorTuple] = []
        seq = 0
        for lt in left_window:
            l_values = lt.values()
            for rt in right_window:
                kwargs = {
                    self.left_prefix: l_values,
                    self.right_prefix: rt.values(),
                }
                try:
                    matched = self.predicate.evaluate_bool(None, **kwargs)
                except Exception:
                    self.stats.errors += 1
                    continue
                if not matched:
                    continue
                out.append(self._merge(lt, rt, now, seq))
                seq += 1
        return out

    def _merge(
        self, lt: SensorTuple, rt: SensorTuple, now: float, seq: int
    ) -> SensorTuple:
        payload = merge_payloads(
            lt.values(), rt.values(), self.left_prefix, self.right_prefix
        )
        l_point = representative_point(lt.stamp.location)
        r_point = representative_point(rt.stamp.location)
        if l_point == r_point:
            location = lt.stamp.location
        else:
            location = Box(
                south=min(l_point.lat, r_point.lat),
                west=min(l_point.lon, r_point.lon),
                north=max(l_point.lat, r_point.lat),
                east=max(l_point.lon, r_point.lon),
            )
        themes = lt.stamp.themes + tuple(
            t for t in rt.stamp.themes if t not in lt.stamp.themes
        )
        stamp = SttStamp(
            time=max(lt.stamp.time, rt.stamp.time),
            location=location,
            temporal_granularity=common_temporal(
                lt.stamp.temporal_granularity, rt.stamp.temporal_granularity
            ),
            spatial_granularity=common_spatial(
                lt.stamp.spatial_granularity, rt.stamp.spatial_granularity
            ),
            themes=themes,
        )
        return SensorTuple(
            payload=payload,
            stamp=stamp,
            source=f"{self.name}({lt.source}⋈{rt.source})",
            seq=seq,
        )

    def reset(self) -> None:
        super().reset()
        self.left_cache.clear()
        self.right_cache.clear()

    def checkpoint(self) -> dict:
        state = super().checkpoint()
        state["left"] = self.left_cache.snapshot()
        state["right"] = self.right_cache.snapshot()
        state["evicted"] = (self.left_cache.evicted, self.right_cache.evicted)
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        evicted = state.get("evicted", (0, 0))
        self.left_cache.restore(state["left"], evicted=evicted[0])
        self.right_cache.restore(state["right"], evicted=evicted[1])

    def describe(self) -> str:
        return f"s1 ⋈{self.interval}_{{{self.predicate.source}}} s2"
