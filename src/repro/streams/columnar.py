"""Struct-of-arrays micro-batches: the columnar physical representation.

A :class:`TupleBatch` is row-oriented — a run of :class:`SensorTuple`
objects, each owning a payload mapping.  Operators that process a batch
pay Python-level work *per row*: a closure call, one or two dict copies,
and a tuple clone.  A :class:`ColumnarBatch` transposes the same batch
into one list per payload field so the vectorized expression kernels
(:mod:`repro.expr.vectorize`) can run the whole loop inside generated
code with direct list indexing, and so a fused chain can pass a single
columnar batch plus a shrinking *selection vector* between members with
no re-materialization.

Representation invariants:

- **Uniform schema.**  Every row shares the same payload key *order*
  (``tuple(payload)``).  Heterogeneous batches are not transposed —
  :meth:`from_tuples` returns ``None`` and callers keep the row path.
  Order matters because materialization rebuilds payload dicts in column
  order, and the row path's dict-insertion-order semantics are part of
  the parity contract.
- **Columns are never mutated in place.**  Transform/virtual kernels
  install freshly built lists via :meth:`set_column`; the lists created
  by :meth:`from_tuples` are shared with the (cached, re-deliverable)
  source batch, so a pipeline always works on a :meth:`fork` whose
  column *dict* is private while the untouched column lists stay shared.
- **Selection vectors only shrink.**  Operators in the accelerated
  family emit zero-or-one tuple per input, so a member maps a selection
  to a sub-selection.  Rows dropped from the selection may be left with
  stale/placeholder values in later-installed columns; they are never
  materialized, so those holes are unobservable.
- **Originals carry provenance.**  Stamp, source, seq, and trace are
  not copied into columns; materialization clones them from the source
  row, so traces attached by the broker ride through untouched.

Rows come back to :class:`SensorTuple` form only at materialization
boundaries — the end of a fused chain (before forwarding to blocking,
sink, or sharded consumers) — via :meth:`to_tuples`.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import TYPE_CHECKING, Callable, Sequence

from repro.streams.tuple import SensorTuple, TupleBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.stt.event import SttStamp


#: Materializer kernels, one per payload schema (field-name tuple).
#: Generated on first use; the population is bounded by the number of
#: distinct schemas flowing through the plane.
_MATERIALIZERS: "dict[tuple[str, ...], Callable]" = {}


def _materializer(fields: "tuple[str, ...]") -> Callable:
    """A generated row-builder for one payload schema.

    ``dict(zip(fields, values))`` was the single most expensive step of
    materialization (~40% of the loop); with the schema known, a kernel
    with the field names baked in as dict-literal keys builds each
    payload with one ``BUILD_MAP`` of constant keys and direct column
    indexing — and needs no per-selection column re-picking either.
    """
    kernel = _MATERIALIZERS.get(fields)
    if kernel is not None:
        return kernel
    cols = [f"_c{i}" for i in range(len(fields))]
    binds = "".join(
        f"    {col} = _COLUMNS[{name!r}]\n"
        for col, name in zip(cols, fields)
    )
    payload = ", ".join(
        f"{name!r}: {col}[_i]" for name, col in zip(fields, cols)
    )
    source = (
        "def _mkernel(_ORIGINALS, _ROWS, _COLUMNS):\n"
        f"{binds}"
        "    _out = []\n"
        "    _append = _out.append\n"
        "    for _i in _ROWS:\n"
        "        _b = _ORIGINALS[_i]\n"
        "        _t = _new(SensorTuple)\n"
        "        _set(_t, '__dict__', {\n"
        f"            'payload': _proxy({{{payload}}}),\n"
        "            'stamp': _b.stamp,\n"
        "            'source': _b.source,\n"
        "            'seq': _b.seq,\n"
        "            'trace': _b.trace,\n"
        "        })\n"
        "        _append(_t)\n"
        "    return _out\n"
    )
    env = {
        "SensorTuple": SensorTuple,
        "_new": SensorTuple.__new__,
        "_set": object.__setattr__,
        "_proxy": MappingProxyType,
    }
    exec(compile(source, "<columnar-materialize>", "exec"), env)
    kernel = env["_mkernel"]
    _MATERIALIZERS[fields] = kernel
    return kernel


class ColumnarBatch:
    """A transposed micro-batch: one value list per payload field.

    Attributes:
        originals: the source rows, aligned with column indices; the
            provenance (stamp/source/seq/trace) store.
        fields: payload field names, in payload insertion order.
        columns: field name -> list of per-row values.  May grow beyond
            ``fields`` of the source batch as kernels install derived
            columns.
        count: number of rows (every column has this length).
        dirty: whether any column/field differs from the source rows;
            when clean, :meth:`to_tuples` returns the original tuple
            objects themselves (identity-preserving fast path).
    """

    __slots__ = ("originals", "fields", "columns", "count", "dirty", "_stamps")

    def __init__(
        self,
        originals: "Sequence[SensorTuple]",
        fields: "tuple[str, ...]",
        columns: "dict[str, list]",
    ) -> None:
        self.originals = originals
        self.fields = fields
        self.columns = columns
        self.count = len(originals)
        self.dirty = False
        self._stamps: "list[SttStamp] | None" = None

    @classmethod
    def from_tuples(
        cls, tuples: "Sequence[SensorTuple]"
    ) -> "ColumnarBatch | None":
        """Transpose ``tuples`` into columns, or ``None`` if ineligible.

        Eligibility is a uniform payload key *sequence* across every row
        (same names, same insertion order).  The check is strict on
        order because materialized payload dicts are rebuilt in column
        order and must be item-for-item identical to the row path's.
        """
        if not tuples:
            return None
        fields = tuple(tuples[0].payload)
        for tuple_ in tuples:
            if tuple(tuple_.payload) != fields:
                return None
        columns = {
            name: [t.payload[name] for t in tuples] for name in fields
        }
        return cls(tuples, fields, columns)

    def __len__(self) -> int:
        return self.count

    def fork(self) -> "ColumnarBatch":
        """A cheap private copy for one pipeline run.

        Shares the originals and the column lists (immutable by the
        no-in-place-mutation invariant) but owns its column dict and
        field tuple, so kernel installs never leak into a cached batch
        that other subscribers may receive.
        """
        clone = ColumnarBatch.__new__(ColumnarBatch)
        clone.originals = self.originals
        clone.fields = self.fields
        clone.columns = dict(self.columns)
        clone.count = self.count
        clone.dirty = False
        clone._stamps = self._stamps
        return clone

    def stamp_column(self) -> "list[SttStamp]":
        """The rows' STT stamps, built on first use (cull kernels)."""
        stamps = self._stamps
        if stamps is None:
            stamps = [t.stamp for t in self.originals]
            self._stamps = stamps
        return stamps

    def seq_column(self) -> "list[int]":
        return [t.seq for t in self.originals]

    def set_column(self, name: str, values: list) -> None:
        """Install a freshly built full-length column under ``name``."""
        if name not in self.columns:
            self.fields = self.fields + (name,)
        self.columns[name] = values
        self.dirty = True

    def rename_columns(self, mapping: "dict[str, str]") -> None:
        """Rename fields, with dict-comprehension collision semantics.

        Mirrors the row path's ``{rename.get(k, k): v for k, v in ...}``:
        on a collision the first occurrence fixes the position and the
        last occurrence's values win.
        """
        renamed = {
            mapping.get(name, name): self.columns[name] for name in self.fields
        }
        self.fields = tuple(renamed)
        self.columns = renamed
        self.dirty = True

    def project_columns(self, names: "Sequence[str]") -> None:
        """Keep exactly ``names``, in that order (transform's project)."""
        self.columns = {name: self.columns[name] for name in names}
        self.fields = tuple(names)
        self.dirty = True

    def to_tuples(self, selection: "Sequence[int] | None" = None) -> "list[SensorTuple]":
        """Materialize the selected rows back to :class:`SensorTuple`.

        Clean batches return the original tuple objects (no allocation,
        and per-tuple ``_wire_size`` memos survive).  Dirty batches
        rebuild each payload in column order and clone provenance from
        the original row.
        """
        rows: "Sequence[int]" = (
            range(self.count) if selection is None else selection
        )
        originals = self.originals
        if not self.dirty:
            if selection is None:
                return list(originals)
            return [originals[i] for i in rows]
        # One generated kernel per schema: constant-key payload literals
        # and a single instance-dict install per row (SensorTuple has no
        # __slots__, so the instance dict is the attribute store).  This
        # loop is the materialization boundary of every columnar chain.
        return _materializer(self.fields)(originals, rows, self.columns)

    def to_batch(self, selection: "Sequence[int] | None" = None) -> TupleBatch:
        """Materialize selected rows as a row-oriented envelope."""
        return TupleBatch.of(self.to_tuples(selection))


class LazyRows(Sequence):
    """A fused chain's emissions, materialized only when consumed.

    The columnar pipeline knows *how many* rows survived (the final
    selection) without building a single :class:`SensorTuple`; length
    and truthiness answer from that count alone.  The rows themselves
    are built on first element access — which is exactly the
    materialization boundary: a process forwarding to routes iterates
    (building the outgoing batch), while a process with no consumers
    never pays for rows nobody reads.  Materialization runs at most
    once; afterwards the column source is released.
    """

    __slots__ = ("_source", "_selection", "_rows")

    def __init__(
        self, source: ColumnarBatch, selection: "Sequence[int]"
    ) -> None:
        self._source: "ColumnarBatch | None" = source
        self._selection: "Sequence[int] | None" = selection
        self._rows: "list[SensorTuple] | None" = None

    def _materialize(self) -> "list[SensorTuple]":
        rows = self._rows
        if rows is None:
            rows = self._source.to_tuples(self._selection)  # type: ignore[union-attr]
            self._rows = rows
            self._source = None
            self._selection = None
        return rows

    def __len__(self) -> int:
        rows = self._rows
        if rows is not None:
            return len(rows)
        return len(self._selection)  # type: ignore[arg-type]

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyRows):
            return self._materialize() == other._materialize()
        if isinstance(other, (list, tuple)):
            return self._materialize() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialized" if self._rows is not None else "lazy"
        return f"LazyRows({len(self)} rows, {state})"


#: Minimum rows for a fused chain to transpose a batch: below this the
#: conversion + materialization overhead outweighs the kernel savings.
MIN_COLUMNAR_ROWS = 4
