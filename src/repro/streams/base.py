"""Operator base classes and the blocking/non-blocking contract.

The paper distinguishes operators "that are non-blocking (filter, cull-
time/space, transform, virtual property) from those that are blocking
(aggregation, trigger, join).  The former are directly applied on each
tuple when they are processed, whereas the others require the maintenance
of a cache of tuples that are processed every t time intervals."

Operators are *runtime-agnostic*: they expose

- ``on_tuple(t, port)`` -> emitted tuples (non-blocking ops emit here;
  blocking ops buffer and emit nothing);
- ``on_timer(now)``     -> emitted tuples (blocking ops flush here; the
  hosting runtime schedules a timer every ``interval`` seconds);
- ``control``           -> callback receiving :class:`ControlCommand`
  (only triggers use it).

Data errors are quarantined: a tuple that makes a condition or expression
fail is counted in ``stats.errors`` and dropped, never crashing the
operator — emergencies are exactly when malformed sensor data shows up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import CheckpointError, ExpressionError, StreamLoaderError
from repro.streams.tuple import SensorTuple


@dataclass(frozen=True)
class ControlCommand:
    """A trigger's instruction to the control plane.

    ``activate=True`` means "start the streams of sensors {s1..sn}";
    False means stop them (Trigger Off).
    """

    activate: bool
    sensor_ids: tuple[str, ...]
    issued_at: float
    reason: str = ""


@dataclass
class OperatorStats:
    """Per-operator counters the monitor reads."""

    tuples_in: int = 0
    tuples_out: int = 0
    errors: int = 0
    timer_firings: int = 0
    controls_issued: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "tuples_in": self.tuples_in,
            "tuples_out": self.tuples_out,
            "errors": self.errors,
            "timer_firings": self.timer_firings,
            "controls_issued": self.controls_issued,
        }


class Operator:
    """Base class of all stream operators."""

    #: Number of input ports (join has 2, everything else 1).
    input_ports: int = 1
    #: Flush interval in seconds for blocking operators; None otherwise.
    interval: "float | None" = None
    #: Relative CPU cost of processing one tuple (placement/load model).
    cost_per_tuple: float = 1.0
    #: Span name recorded when a traced tuple enters this operator
    #: ("evaluate" for per-tuple operators, "enqueue" for blocking ones
    #: that buffer, "sink" for terminal consumers).
    span_name: str = "evaluate"

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.stats = OperatorStats()
        #: Trigger control-plane sink; the runtime injects its own.
        self.control: Callable[[ControlCommand], None] = lambda command: None
        #: Lineage recorder (``repro.obs.lineage.LineageStore``); injected
        #: by the executor when observability is enabled.  Blocking
        #: operators record input->output derivations through it.
        self.lineage: "object | None" = None

    @property
    def is_blocking(self) -> bool:
        return self.interval is not None

    @property
    def checkpointable(self) -> bool:
        """Whether the runtime should snapshot this operator periodically.

        Defaults to :attr:`is_blocking` (non-blocking operators hold no
        state across tuples); stateful-but-non-blocking operators (the
        shard merge stage) override this to True.
        """
        return self.is_blocking

    def on_tuple(self, tuple_: SensorTuple, port: int = 0) -> list[SensorTuple]:
        """Feed one tuple into the given input port; returns emissions."""
        if not (0 <= port < self.input_ports):
            raise StreamLoaderError(
                f"{self.name}: invalid port {port} (has {self.input_ports})"
            )
        self.stats.tuples_in += 1
        try:
            out = self._process(tuple_, port)
        except ExpressionError:
            self.stats.errors += 1
            return []
        self.stats.tuples_out += len(out)
        return out

    def on_batch(
        self, tuples: "Sequence[SensorTuple]", port: int = 0
    ) -> list[SensorTuple]:
        """Feed a micro-batch into the given input port; returns emissions.

        Semantically identical to calling :meth:`on_tuple` per member, but
        the port check and stats updates happen once per batch and
        subclasses may override :meth:`_process_batch` with a tight loop
        over pre-bound state (the micro-batch fast path).
        """
        if not (0 <= port < self.input_ports):
            raise StreamLoaderError(
                f"{self.name}: invalid port {port} (has {self.input_ports})"
            )
        self.stats.tuples_in += len(tuples)
        out = self._process_batch(tuples, port)
        self.stats.tuples_out += len(out)
        return out

    def on_timer(self, now: float) -> list[SensorTuple]:
        """Flush hook for blocking operators; no-op for non-blocking ones."""
        if self.interval is None:
            return []
        self.stats.timer_firings += 1
        out = self._flush(now)
        self.stats.tuples_out += len(out)
        return out

    def reset(self) -> None:
        """Clear caches and counters (re-deployment support)."""
        self.stats = OperatorStats()

    # -- checkpointing ----------------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot of the operator's recoverable state.

        Non-blocking operators hold no state across tuples, so the base
        snapshot carries only the counters; blocking operators extend it
        with their caches.  The snapshot must be self-contained: restoring
        it on a fresh operator instance yields the same future behaviour.
        """
        return {"stats": self.stats.snapshot()}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`checkpoint` snapshot, replacing live state.

        Tuples absorbed after the snapshot was taken are discarded — this
        is exactly the at-most-once recovery bound the runtime documents.

        Raises:
            CheckpointError: if ``state`` is not a checkpoint of a
                compatible operator.
        """
        if not isinstance(state, dict) or "stats" not in state:
            raise CheckpointError(
                f"{self.name}: malformed checkpoint {state!r}"
            )
        self.stats = OperatorStats(**state["stats"])

    def describe(self) -> str:
        """One-line summary, shown in the designer and in DSN comments."""
        return self.name

    # -- subclass hooks ---------------------------------------------------

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        raise NotImplementedError

    def _process_batch(
        self, tuples: "Sequence[SensorTuple]", port: int
    ) -> list[SensorTuple]:
        """Default batch path: per-tuple processing with the same
        error-quarantine semantics as :meth:`on_tuple` (a failing tuple is
        counted and dropped without poisoning the rest of the batch)."""
        out: list[SensorTuple] = []
        process = self._process
        errors = 0
        for tuple_ in tuples:
            try:
                out.extend(process(tuple_, port))
            except ExpressionError:
                errors += 1
        if errors:
            self.stats.errors += errors
        return out

    def _flush(self, now: float) -> list[SensorTuple]:
        return []

    def _issue_control(self, command: ControlCommand) -> None:
        self.stats.controls_issued += 1
        self.control(command)


class NonBlockingOperator(Operator):
    """Applied directly on each tuple; never holds state across tuples."""

    interval = None


class BlockingOperator(Operator):
    """Caches tuples and processes them every ``interval`` seconds."""

    span_name = "enqueue"

    def __init__(self, interval: float, name: str = "") -> None:
        super().__init__(name)
        if interval <= 0:
            raise StreamLoaderError(
                f"{self.name}: blocking interval must be positive, got {interval}"
            )
        self.interval = float(interval)
