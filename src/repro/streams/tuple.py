"""Stream tuples: an immutable payload plus the STT stamp and provenance.

Also home of the micro-batch envelope: a :class:`TupleBatch` groups
consecutive readings from one source so the broker, network, and operator
layers can amortize their per-message framing costs over many tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence
from types import MappingProxyType

from repro.stt.event import Event, SttStamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import TraceContext
    from repro.streams.columnar import ColumnarBatch

#: Cached marker for batches that cannot be transposed (heterogeneous
#: payload schemas) so re-deliveries don't retry the conversion.
_NOT_COLUMNAR = object()


@dataclass(frozen=True)
class SensorTuple:
    """One reading flowing through a dataflow.

    Attributes:
        payload: attribute name -> value, per the stream's schema.
        stamp: STT stamp (time, location, granularities, themes).
        source: id of the producing sensor (or derived-stream label).
        seq: per-source sequence number, for deterministic ordering.
        trace: observability context (trace id + last span), attached by
            the broker when the tuple's trace is sampled; ``None`` means
            untraced.  Excluded from equality — two readings are the same
            reading whether or not one was sampled.
    """

    payload: Mapping[str, object]
    stamp: SttStamp
    source: str = ""
    seq: int = 0
    trace: "TraceContext | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.payload, MappingProxyType):
            object.__setattr__(self, "payload", MappingProxyType(dict(self.payload)))

    def __getitem__(self, name: str) -> object:
        return self.payload[name]

    def get(self, name: str, default: object = None) -> object:
        return self.payload.get(name, default)

    def __contains__(self, name: object) -> bool:
        return name in self.payload

    @property
    def time(self) -> float:
        return self.stamp.time

    def values(self) -> dict[str, object]:
        """A mutable copy of the payload (for expression evaluation)."""
        return dict(self.payload)

    # The copy-with-changes methods below run per tuple per operator on
    # the data plane; ``dataclasses.replace`` re-enters the generated
    # ``__init__`` and ``__post_init__`` (re-wrapping the payload it just
    # unwrapped), which costs several times a direct field assembly.
    def _clone(
        self,
        payload: Mapping[str, object],
        stamp: SttStamp,
        source: str,
        seq: int,
        trace: "TraceContext | None",
    ) -> "SensorTuple":
        clone = SensorTuple.__new__(SensorTuple)
        set_ = object.__setattr__
        set_(clone, "payload", payload)
        set_(clone, "stamp", stamp)
        set_(clone, "source", source)
        set_(clone, "seq", seq)
        set_(clone, "trace", trace)
        return clone

    def _clone_same_payload(self, stamp, source, trace) -> "SensorTuple":
        clone = self._clone(self.payload, stamp, source, self.seq, trace)
        size = self.__dict__.get("_wire_size")
        if size is not None:  # size depends only on the (shared) payload
            object.__setattr__(clone, "_wire_size", size)
        return clone

    def with_payload(self, payload: Mapping[str, object]) -> "SensorTuple":
        return self._clone(
            MappingProxyType(dict(payload)),
            self.stamp, self.source, self.seq, self.trace,
        )

    def with_owned_payload(self, payload: "dict[str, object]") -> "SensorTuple":
        """Like :meth:`with_payload` for a dict the caller just built and
        transfers ownership of — skips the defensive copy.  The caller
        must not mutate ``payload`` afterwards."""
        return self._clone(
            MappingProxyType(payload),
            self.stamp, self.source, self.seq, self.trace,
        )

    def with_updates(self, **updates: object) -> "SensorTuple":
        merged = dict(self.payload)
        merged.update(updates)
        return self._clone(
            MappingProxyType(merged),
            self.stamp, self.source, self.seq, self.trace,
        )

    def with_stamp(self, stamp: SttStamp) -> "SensorTuple":
        return self._clone_same_payload(stamp, self.source, self.trace)

    def with_trace(self, trace: "TraceContext | None") -> "SensorTuple":
        return self._clone_same_payload(self.stamp, self.source, trace)

    def relabelled(self, source: str) -> "SensorTuple":
        return self._clone_same_payload(self.stamp, source, self.trace)

    def to_event(self, value_attribute: "str | None" = None) -> Event:
        """Project this tuple to an STT :class:`Event` for warehousing.

        With ``value_attribute`` the event value is that single attribute;
        otherwise the whole payload dict is the value.
        """
        if value_attribute is not None:
            value: object = self.payload[value_attribute]
        else:
            value = dict(self.payload)
        return Event(value=value, stamp=self.stamp, source=self.source)


@dataclass(frozen=True, slots=True)
class TupleBatch:
    """A micro-batch of readings travelling the data plane as one message.

    The envelope is deliberately thin: an immutable run of tuples plus the
    producing source's id.  Ordering inside a batch is the emission order,
    so per-source tuple order is preserved whether a stream is delivered
    tuple-by-tuple or in batches (the ``batched ≡ unbatched`` parity
    property).  Batches are routed once, charged to links once, and
    delivered by a single scheduled event — that amortization is the whole
    point (see DESIGN.md §11).
    """

    tuples: tuple[SensorTuple, ...]
    source: str = ""
    # Lazy per-batch caches, excluded from value semantics: the wire-size
    # memo (sized once however many links/routes the batch crosses) and
    # the columnar transposition (built once however many subscribers'
    # fused chains receive this envelope).
    _wire: "int | None" = field(default=None, compare=False, repr=False)
    _cols: object = field(default=None, compare=False, repr=False)
    _span: "tuple[float, float] | None" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.tuples, tuple):
            object.__setattr__(self, "tuples", tuple(self.tuples))

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[SensorTuple]:
        return iter(self.tuples)

    def __getitem__(self, index: int) -> SensorTuple:
        return self.tuples[index]

    def __bool__(self) -> bool:
        return bool(self.tuples)

    def with_tuples(self, tuples: "Sequence[SensorTuple]") -> "TupleBatch":
        return TupleBatch(tuples=tuple(tuples), source=self.source)

    def with_traced(self, tuples: "Sequence[SensorTuple]") -> "TupleBatch":
        """Like :meth:`with_tuples` for per-tuple clones that all kept
        their payloads (trace attachment): the wire-size memo depends
        only on payloads, so it carries over to the clone."""
        clone = TupleBatch(tuples=tuple(tuples), source=self.source)
        size = self._wire
        if size is not None:
            object.__setattr__(clone, "_wire", size)
        span = self._span
        if span is not None:  # trace attachment keeps every stamp
            object.__setattr__(clone, "_span", span)
        return clone

    def stamp_span(self) -> "tuple[float, float]":
        """``(oldest, newest)`` stamp time across the batch.

        Computed once per envelope: stamps are immutable, but every
        latency probe along the batch's path needs the same extremes
        (watermark advance from the newest, worst stage latency from the
        oldest), and multi-subscriber fan-out re-delivers one envelope.
        """
        span = self._span
        if span is None:
            times = [t.stamp.time for t in self.tuples]
            span = (min(times), max(times))
            object.__setattr__(self, "_span", span)
        return span

    def columnar(self) -> "ColumnarBatch | None":
        """Transpose to struct-of-arrays form, lazily and at most once.

        Returns ``None`` when the batch is heterogeneous (rows disagree
        on payload schema); the negative result is cached too.  Callers
        must :meth:`ColumnarBatch.fork` before installing columns.
        """
        cached = self._cols
        if cached is None:
            from repro.streams.columnar import ColumnarBatch

            cached = ColumnarBatch.from_tuples(self.tuples)
            object.__setattr__(
                self, "_cols", _NOT_COLUMNAR if cached is None else cached
            )
            return cached
        if cached is _NOT_COLUMNAR:
            return None
        return cached  # type: ignore[return-value]

    @classmethod
    def of(cls, tuples: "Sequence[SensorTuple]") -> "TupleBatch":
        """Wrap a run of tuples, labelling the batch with the first
        tuple's source (the common single-source case)."""
        tuples = tuple(tuples)
        return cls(tuples=tuples, source=tuples[0].source if tuples else "")


def estimate_size_bytes(tuple_: SensorTuple) -> int:
    """Approximate wire size of a tuple, for link traffic accounting.

    A fixed per-tuple envelope (stamp + provenance) plus a per-attribute
    cost by type.  Deliberately simple and deterministic — relative sizes
    between streams are what the placement ablation measures.

    Memoized per tuple: the payload is immutable, but the same reading is
    sized once per hop it travels, and multi-hop chains were paying the
    isinstance walk at every link.
    """
    cached = tuple_.__dict__.get("_wire_size")
    if cached is not None:
        return cached
    size = 48  # envelope: stamp, source, seq
    for name, value in tuple_.payload.items():
        size += len(name)
        if isinstance(value, bool):
            size += 1
        elif isinstance(value, int):
            size += 8
        elif isinstance(value, float):
            size += 8
        elif isinstance(value, str):
            size += len(value.encode("utf-8"))
        else:
            size += 16
    object.__setattr__(tuple_, "_wire_size", size)
    return size


#: Fixed wire overhead of a batch envelope (count + source + framing).
BATCH_ENVELOPE_BYTES = 24


def estimate_batch_size_bytes(batch: "TupleBatch | Sequence[SensorTuple]") -> int:
    """Approximate wire size of a whole batch.

    One batch envelope plus every member's individual size — batching
    amortizes *framing work* (routing, scheduling, dispatch), not payload
    bytes, so links are still charged for each reading they carry.

    Memoized per batch envelope: the same batch is sized once per route
    it fans out to and once per link it crosses, and payload-preserving
    clones (:meth:`TupleBatch.with_traced`) inherit the memo.
    """
    if isinstance(batch, TupleBatch):
        cached = batch._wire
        if cached is not None:
            return cached
        size = BATCH_ENVELOPE_BYTES + sum(
            estimate_size_bytes(t) for t in batch.tuples
        )
        object.__setattr__(batch, "_wire", size)
        return size
    return BATCH_ENVELOPE_BYTES + sum(estimate_size_bytes(t) for t in batch)
