"""Stream tuples: an immutable payload plus the STT stamp and provenance.

Also home of the micro-batch envelope: a :class:`TupleBatch` groups
consecutive readings from one source so the broker, network, and operator
layers can amortize their per-message framing costs over many tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence
from types import MappingProxyType

from repro.stt.event import Event, SttStamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import TraceContext


@dataclass(frozen=True)
class SensorTuple:
    """One reading flowing through a dataflow.

    Attributes:
        payload: attribute name -> value, per the stream's schema.
        stamp: STT stamp (time, location, granularities, themes).
        source: id of the producing sensor (or derived-stream label).
        seq: per-source sequence number, for deterministic ordering.
        trace: observability context (trace id + last span), attached by
            the broker when the tuple's trace is sampled; ``None`` means
            untraced.  Excluded from equality — two readings are the same
            reading whether or not one was sampled.
    """

    payload: Mapping[str, object]
    stamp: SttStamp
    source: str = ""
    seq: int = 0
    trace: "TraceContext | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.payload, MappingProxyType):
            object.__setattr__(self, "payload", MappingProxyType(dict(self.payload)))

    def __getitem__(self, name: str) -> object:
        return self.payload[name]

    def get(self, name: str, default: object = None) -> object:
        return self.payload.get(name, default)

    def __contains__(self, name: object) -> bool:
        return name in self.payload

    @property
    def time(self) -> float:
        return self.stamp.time

    def values(self) -> dict[str, object]:
        """A mutable copy of the payload (for expression evaluation)."""
        return dict(self.payload)

    def with_payload(self, payload: Mapping[str, object]) -> "SensorTuple":
        return replace(self, payload=MappingProxyType(dict(payload)))

    def with_updates(self, **updates: object) -> "SensorTuple":
        merged = dict(self.payload)
        merged.update(updates)
        return self.with_payload(merged)

    def with_stamp(self, stamp: SttStamp) -> "SensorTuple":
        return replace(self, stamp=stamp)

    def with_trace(self, trace: "TraceContext | None") -> "SensorTuple":
        return replace(self, trace=trace)

    def relabelled(self, source: str) -> "SensorTuple":
        return replace(self, source=source)

    def to_event(self, value_attribute: "str | None" = None) -> Event:
        """Project this tuple to an STT :class:`Event` for warehousing.

        With ``value_attribute`` the event value is that single attribute;
        otherwise the whole payload dict is the value.
        """
        if value_attribute is not None:
            value: object = self.payload[value_attribute]
        else:
            value = dict(self.payload)
        return Event(value=value, stamp=self.stamp, source=self.source)


@dataclass(frozen=True, slots=True)
class TupleBatch:
    """A micro-batch of readings travelling the data plane as one message.

    The envelope is deliberately thin: an immutable run of tuples plus the
    producing source's id.  Ordering inside a batch is the emission order,
    so per-source tuple order is preserved whether a stream is delivered
    tuple-by-tuple or in batches (the ``batched ≡ unbatched`` parity
    property).  Batches are routed once, charged to links once, and
    delivered by a single scheduled event — that amortization is the whole
    point (see DESIGN.md §11).
    """

    tuples: tuple[SensorTuple, ...]
    source: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.tuples, tuple):
            object.__setattr__(self, "tuples", tuple(self.tuples))

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[SensorTuple]:
        return iter(self.tuples)

    def __getitem__(self, index: int) -> SensorTuple:
        return self.tuples[index]

    def __bool__(self) -> bool:
        return bool(self.tuples)

    def with_tuples(self, tuples: "Sequence[SensorTuple]") -> "TupleBatch":
        return TupleBatch(tuples=tuple(tuples), source=self.source)

    @classmethod
    def of(cls, tuples: "Sequence[SensorTuple]") -> "TupleBatch":
        """Wrap a run of tuples, labelling the batch with the first
        tuple's source (the common single-source case)."""
        tuples = tuple(tuples)
        return cls(tuples=tuples, source=tuples[0].source if tuples else "")


def estimate_size_bytes(tuple_: SensorTuple) -> int:
    """Approximate wire size of a tuple, for link traffic accounting.

    A fixed per-tuple envelope (stamp + provenance) plus a per-attribute
    cost by type.  Deliberately simple and deterministic — relative sizes
    between streams are what the placement ablation measures.
    """
    size = 48  # envelope: stamp, source, seq
    for name, value in tuple_.payload.items():
        size += len(name)
        if isinstance(value, bool):
            size += 1
        elif isinstance(value, int):
            size += 8
        elif isinstance(value, float):
            size += 8
        elif isinstance(value, str):
            size += len(value.encode("utf-8"))
        else:
            size += 16
    return size


#: Fixed wire overhead of a batch envelope (count + source + framing).
BATCH_ENVELOPE_BYTES = 24


def estimate_batch_size_bytes(batch: "TupleBatch | Sequence[SensorTuple]") -> int:
    """Approximate wire size of a whole batch.

    One batch envelope plus every member's individual size — batching
    amortizes *framing work* (routing, scheduling, dispatch), not payload
    bytes, so links are still charged for each reading they carry.
    """
    return BATCH_ENVELOPE_BYTES + sum(estimate_size_bytes(t) for t in batch)
