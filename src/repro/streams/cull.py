"""Cull Time / Cull Space — γr(s, region): down-sample tuples in a region.

Table 1: *"Culling the tuples in the temporal interval [t1, t2] (resp. the
area delimited by coord1, coord2) by a reducing rate r."*

Interpretation (documented because the paper gives only the one line):
tuples that fall **inside** the region are reduced to one out of every
``r`` (deterministically, by a per-operator counter); tuples outside the
region pass through untouched.  ``r = 1`` keeps everything; ``r = 10``
keeps every tenth matching tuple.  This matches the operator's purpose in
the paper — taming the volume of a hot time window or geographic area
without losing the rest of the stream.
"""

from __future__ import annotations

from repro.errors import DataflowError
from repro.streams.base import NonBlockingOperator
from repro.streams.tuple import SensorTuple
from repro.stt.spatial import Box, Point, within
from repro.stt.temporal import Interval


class _CullBase(NonBlockingOperator):
    def __init__(self, rate: int, name: str) -> None:
        super().__init__(name)
        if not isinstance(rate, int) or rate < 1:
            raise DataflowError(f"reducing rate must be an integer >= 1, got {rate!r}")
        self.rate = rate
        self._counter = 0

    def _in_region(self, tuple_: SensorTuple) -> bool:
        raise NotImplementedError

    def _stamp_in_region(self, stamp) -> bool:
        raise NotImplementedError

    def _process(self, tuple_: SensorTuple, port: int) -> list[SensorTuple]:
        if not self._in_region(tuple_):
            return [tuple_]
        self._counter += 1
        if self._counter % self.rate == 0:
            return [tuple_]
        return []

    def _process_batch(self, tuples, port: int) -> list[SensorTuple]:
        # Batch fast path: the down-sampling counter lives in a local for
        # the duration of the loop and is written back once.
        in_region = self._in_region
        rate = self.rate
        counter = self._counter
        out: list[SensorTuple] = []
        append = out.append
        for tuple_ in tuples:
            if not in_region(tuple_):
                append(tuple_)
                continue
            counter += 1
            if counter % rate == 0:
                append(tuple_)
        self._counter = counter
        return out

    def columnar_step(self, col, sel):
        """Column kernel: region test over the stamp column, with the
        deterministic down-sampling counter held in a local and written
        back once (same discipline as the row batch path)."""
        stamps = col.stamp_column()
        in_region = self._stamp_in_region
        rate = self.rate
        counter = self._counter
        keep: list[int] = []
        append = keep.append
        for i in sel:
            if not in_region(stamps[i]):
                append(i)
                continue
            counter += 1
            if counter % rate == 0:
                append(i)
        self._counter = counter
        return keep, 0

    def reset(self) -> None:
        super().reset()
        self._counter = 0


class CullTimeOperator(_CullBase):
    """γr(s, ⟨t1, t2⟩): down-sample tuples stamped inside [t1, t2].

    >>> op = CullTimeOperator(rate=10, start=0.0, end=3600.0)
    """

    def __init__(self, rate: int, start: float, end: float, name: str = "") -> None:
        super().__init__(rate, name or "cull-time")
        self.window = Interval(start, end)

    def _in_region(self, tuple_: SensorTuple) -> bool:
        return self.window.contains(tuple_.stamp.time)

    def _stamp_in_region(self, stamp) -> bool:
        return self.window.contains(stamp.time)

    def describe(self) -> str:
        return f"γ{self.rate}(s, ⟨{self.window.start}, {self.window.end}⟩)"


class CullSpaceOperator(_CullBase):
    """γr(s, ⟨coord1, coord2⟩): down-sample tuples inside the corner box.

    >>> op = CullSpaceOperator(
    ...     rate=5, corner1=Point(34.5, 135.3), corner2=Point(34.9, 135.7))
    """

    def __init__(
        self,
        rate: int,
        corner1: "Point | tuple[float, float]",
        corner2: "Point | tuple[float, float]",
        name: str = "",
    ) -> None:
        super().__init__(rate, name or "cull-space")
        if not isinstance(corner1, Point):
            corner1 = Point(*corner1)
        if not isinstance(corner2, Point):
            corner2 = Point(*corner2)
        self.area = Box.from_corners(corner1, corner2)

    def _in_region(self, tuple_: SensorTuple) -> bool:
        return within(tuple_.stamp.location, self.area)

    def _stamp_in_region(self, stamp) -> bool:
        return within(stamp.location, self.area)

    def describe(self) -> str:
        return (
            f"γ{self.rate}(s, ⟨({self.area.south},{self.area.west}), "
            f"({self.area.north},{self.area.east})⟩)"
        )
