"""StreamLoader: an event-driven ETL system for heterogeneous sensor data.

A full reproduction of the EDBT 2016 demo paper by Mesiti et al.: the
Table 1 stream-processing algebra over STT-stamped tuples, a distributed
publish-subscribe sensor layer, a conceptual dataflow designer with
consistency checks and sample debugging, translation to the DSN/SCN
declarative-networking layer, workload-aware execution on a simulated
programmable network with live monitoring, and the Event Data Warehouse
and Sticker visualization sinks.

Quickstart::

    from repro import build_stack, osaka_scenario_flow

    stack = build_stack(hot=True)
    flow = osaka_scenario_flow(stack)
    deployment = stack.executor.deploy(flow)
    stack.run_until(16 * 3600.0)          # one virtual morning->afternoon
    print(stack.executor.monitor.render_dashboard())
    print(stack.warehouse.query().theme("weather/rain").count())
"""

from repro.scenario import Stack, build_stack, osaka_scenario_flow
from repro.dataflow import (
    Dataflow,
    FilterSpec,
    TransformSpec,
    ValidateSpec,
    VirtualPropertySpec,
    CullTimeSpec,
    CullSpaceSpec,
    AggregationSpec,
    JoinSpec,
    TriggerOnSpec,
    TriggerOffSpec,
    validate_dataflow,
)
from repro.designer import DesignerSession
from repro.dsn import dataflow_to_dsn, parse_dsn, ScnController
from repro.network import NetworkSimulator, SimClock, Topology
from repro.pubsub import (
    BrokerNetwork,
    DiscoveryService,
    SensorMetadata,
    SensorRegistry,
    SubscriptionFilter,
)
from repro.runtime import Executor, Monitor
from repro.schema import Attribute, AttributeType, StreamSchema
from repro.sticker import StickerFeed
from repro.streams import SensorTuple
from repro.stt import Box, Point, SttStamp, Theme
from repro.warehouse import EventWarehouse

__version__ = "1.0.0"

__all__ = [
    "Stack",
    "build_stack",
    "osaka_scenario_flow",
    "Dataflow",
    "FilterSpec",
    "TransformSpec",
    "ValidateSpec",
    "VirtualPropertySpec",
    "CullTimeSpec",
    "CullSpaceSpec",
    "AggregationSpec",
    "JoinSpec",
    "TriggerOnSpec",
    "TriggerOffSpec",
    "validate_dataflow",
    "DesignerSession",
    "dataflow_to_dsn",
    "parse_dsn",
    "ScnController",
    "NetworkSimulator",
    "SimClock",
    "Topology",
    "BrokerNetwork",
    "DiscoveryService",
    "SensorMetadata",
    "SensorRegistry",
    "SubscriptionFilter",
    "Executor",
    "Monitor",
    "Attribute",
    "AttributeType",
    "StreamSchema",
    "StickerFeed",
    "SensorTuple",
    "Box",
    "Point",
    "SttStamp",
    "Theme",
    "EventWarehouse",
    "__version__",
]
