"""Centralized streaming baseline: no in-network placement.

Identical runtime to StreamLoader, but the SCN is replaced with a
controller that pins every operator and sink to one central node.  Raw
streams therefore always cross the network to the center before any
filtering/culling happens — the traffic delta against workload-aware
placement is the in-network dividend the SCN papers claim.
"""

from __future__ import annotations

from repro.dsn.ast import DsnService
from repro.dsn.scn import PlacementDecision, ScnController
from repro.network.topology import Topology


class CentralizedScnController(ScnController):
    """An SCN that places everything on ``center_node`` and never migrates."""

    def __init__(self, topology: Topology, center_node: str) -> None:
        super().__init__(topology)
        topology.node(center_node)  # validate it exists
        self.center_node = center_node

    def _score_nodes(
        self,
        service: DsnService,
        upstream_nodes: list[str],
        demand: float,
        projected: dict[str, float],
    ) -> PlacementDecision:
        return PlacementDecision(
            service=service.name,
            node_id=self.center_node,
            score=0.0,
            reason="centralized baseline: all services on the center node",
        )

    def suggest_migrations(self, placements, service_demands, pinned=None):
        return []
