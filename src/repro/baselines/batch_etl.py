"""Offline batch ETL baseline: collect everything, process later.

The traditional pipeline the paper's motivation argues against: raw sensor
data is shipped unfiltered to a collection point during the acquisition
period and the ETL operators run only when the batch closes.  Two costs
become measurable against StreamLoader's on-line execution:

- **traffic**: every raw tuple crosses the network (no trigger gating,
  no in-network filtering or culling);
- **staleness**: a reading is not analysable until the batch closes, so
  the mean staleness is ~half the batch period plus processing time,
  versus ~the operator interval for the streaming dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.graph import Dataflow
from repro.dataflow.validate import validate_dataflow
from repro.network.netsim import NetworkSimulator
from repro.pubsub.broker import BrokerNetwork
from repro.streams.tuple import SensorTuple
from repro.warehouse.loader import EventWarehouse


@dataclass
class BatchEtlReport:
    """Outcome of one batch run."""

    collected: int
    loaded: int
    batch_close_time: float
    mean_staleness: float
    link_bytes: float


class BatchEtlPipeline:
    """Collect raw streams centrally, then run the dataflow as a batch.

    The same conceptual dataflow a streaming deployment would run is
    executed, operator by operator, over the accumulated batch at close
    time — so outputs are comparable tuple-for-tuple with the streaming
    run, while the cost profile is the offline one.
    """

    def __init__(
        self,
        netsim: NetworkSimulator,
        broker_network: BrokerNetwork,
        flow: Dataflow,
        collection_node: str,
        warehouse: "EventWarehouse | None" = None,
    ) -> None:
        report = validate_dataflow(flow, broker_network.registry)
        report.raise_if_invalid()
        self.netsim = netsim
        self.broker_network = broker_network
        self.flow = flow
        self.collection_node = collection_node
        # Explicit None check: an empty EventWarehouse is falsy (len 0).
        self.warehouse = warehouse if warehouse is not None else EventWarehouse()
        self._raw: dict[str, list[SensorTuple]] = {
            source_id: [] for source_id in flow.sources
        }
        self._subscriptions = []
        self._arrival: dict[int, float] = {}

    # -- collection phase -----------------------------------------------------

    def start_collection(self) -> None:
        """Subscribe to every source's sensors, raw, at the central node.

        Note what is *not* here: no trigger gating, no filters — offline
        ETL ships everything because it cannot know yet what matters.
        """
        for source_id, source in self.flow.sources.items():
            subscription = self.broker_network.subscribe(
                node_id=self.collection_node,
                filter_=source.filter,
                callback=lambda t, sid=source_id: self._collect(sid, t),
            )
            self._subscriptions.append(subscription)

    def _collect(self, source_id: str, tuple_: SensorTuple) -> None:
        self._raw[source_id].append(tuple_)
        self._arrival[id(tuple_)] = self.netsim.clock.now

    @property
    def collected(self) -> int:
        return sum(len(batch) for batch in self._raw.values())

    # -- batch close ----------------------------------------------------------

    def close_batch(self) -> BatchEtlReport:
        """Stop collecting, run the dataflow over the batch, load results."""
        from repro.dataflow.sample import run_sample

        for subscription in self._subscriptions:
            self.broker_network.unsubscribe(subscription)
        self._subscriptions.clear()

        close_time = self.netsim.clock.now
        result = run_sample(
            self.flow, self._raw, self.broker_network.registry, validate=False
        )
        loaded = 0
        for sink_id, sink in self.flow.sinks.items():
            for tuple_ in result.at(sink_id):
                if sink.sink_kind == "warehouse":
                    if self.warehouse.load(tuple_) is not None:
                        loaded += 1
        staleness = [
            close_time - tuple_.stamp.time
            for batch in self._raw.values()
            for tuple_ in batch
        ]
        return BatchEtlReport(
            collected=self.collected,
            loaded=loaded,
            batch_close_time=close_time,
            mean_staleness=(sum(staleness) / len(staleness)) if staleness else 0.0,
            link_bytes=self.netsim.total_link_bytes(),
        )
