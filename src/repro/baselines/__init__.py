"""Comparison baselines.

The paper positions StreamLoader against offline ETL tools ("traditionally
developed to operate offline on historical data") and against shipping all
raw data to a central site before processing.  Two executable baselines
make those comparisons measurable:

- :class:`repro.baselines.batch_etl.BatchEtlPipeline` — collect raw tuples
  centrally for a full period, then transform and load in one batch;
- :func:`repro.baselines.centralized.centralized_scn` — the same streaming
  runtime but with every operator pinned to one central node (no
  in-network placement).
"""

from repro.baselines.batch_etl import BatchEtlPipeline, BatchEtlReport
from repro.baselines.centralized import CentralizedScnController

__all__ = ["BatchEtlPipeline", "BatchEtlReport", "CentralizedScnController"]
