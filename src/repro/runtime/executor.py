"""The executor: deploy DSN programs and coordinate their processes.

Deployment pipeline (Section 3 / demo part P2):

1. validate + translate the conceptual dataflow (or accept a DSN program);
2. SCN service discovery: bind source services to published sensors;
3. estimate per-service load and ask the SCN for a placement;
4. QoS admission on the sink channels;
5. spawn one :class:`OperatorProcess` per operation/sink on its node;
6. wire channels (process routes) and source subscriptions (pub-sub);
7. wire trigger control: commands pause/resume the governed sources'
   subscriptions — suppressing traffic at the source;
8. start timers, register with the monitor, begin periodic rebalancing.

The same executor hosts many deployments ("this and other dataflows that
are under control", Figure 3).

Fault tolerance: the monitor's heartbeat failure detector calls back into
the executor when a node dies; the executor re-places the affected
processes on surviving nodes through the SCN placement path, restores each
blocking operator's last checkpoint, and logs the assignment change.  A
deployment whose source set shrinks below quorum degrades (state
``DEGRADED``) instead of erroring, and recovers when sensors republish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DeploymentError, LifecycleError, PlacementError
from repro.dataflow.graph import Dataflow
from repro.dsn.ast import DsnProgram, ServiceRole
from repro.dsn.generate import dataflow_to_dsn
from repro.dsn.scn import PlacementDecision, ScnController
from repro.network.netsim import NetworkSimulator
from repro.pubsub.broker import BrokerNetwork
from repro.pubsub.registry import SensorMetadata
from repro.pubsub.subscription import Subscription
from repro.runtime.backends.base import ExecutionBackend
from repro.runtime.backends.sim import SimBackend
from repro.runtime.lifecycle import DeploymentState
from repro.runtime.monitor import Monitor
from repro.runtime.process import OperatorProcess
from repro.runtime.sharding import ShardGroup
from repro.streams.base import ControlCommand
from repro.streams.sink import CallbackSink, ListSink
from repro.streams.tuple import SensorTuple

#: Nominal demand (cost-units/s) assumed for a service before live rates
#: are known.
_NOMINAL_DEMAND = 1.0


@dataclass
class _SourceBinding:
    """A deployed source service: its sensors and subscriptions."""

    service_name: str
    sensors: list[SensorMetadata]
    subscriptions: list[Subscription] = field(default_factory=list)
    #: The source's discovery filter (re-matched as sensors come and go).
    filter: "object | None" = None
    #: Sensors matched at deploy time — the quorum reference point.
    initial_count: int = 0

    @property
    def sensor_ids(self) -> set[str]:
        return {metadata.sensor_id for metadata in self.sensors}


class Deployment:
    """A running dataflow: processes, bindings, placements, state."""

    def __init__(
        self,
        name: str,
        program: DsnProgram,
        executor: "Executor",
        flow: "Dataflow | None" = None,
    ) -> None:
        self.name = name
        self.program = program
        self.flow = flow
        self.executor = executor
        self.processes: dict[str, OperatorProcess] = {}
        #: conceptual service name -> its shard group (sharded blocking
        #: operators only).  The member processes also appear in
        #: :attr:`processes` under ``"<service>#<index>"`` keys and the
        #: merge stage under ``"<service>#merge"``.
        self.shard_groups: dict[str, ShardGroup] = {}
        #: member service name -> the fused process key ("a+b+c") hosting
        #: it.  Fused chains collapse a run of non-blocking services into
        #: one process (see :mod:`repro.dataflow.fusion`); the members do
        #: not appear in :attr:`processes` individually.
        self.fused: dict[str, str] = {}
        #: fused process key -> its member service names, in chain order.
        self.fused_chains: dict[str, tuple[str, ...]] = {}
        self.bindings: dict[str, _SourceBinding] = {}
        self.placements: dict[str, PlacementDecision] = {}
        self.collectors: dict[str, ListSink] = {}
        #: source service -> micro-batch hint (max over its channels'
        #: declared ``batch``).  The scenario layer applies these to the
        #: matched sensors (the executor does not own sensor objects).
        self.batch_hints: dict[str, int] = {}
        #: conceptual service name -> its elastic-sharding control loop
        #: (only services deployed with ``shard ... elastic``).
        self.rebalancers: dict[str, object] = {}
        self.state = DeploymentState.DESIGNED
        self._rebalance_cancel: "Callable[[], None] | None" = None
        #: subscription id -> the process that consumes its deliveries.
        self._sub_targets: dict[int, OperatorProcess] = {}

    # -- accessors ----------------------------------------------------------

    def process(self, service_name: str) -> OperatorProcess:
        """The process hosting a service (a fused member resolves to the
        chain's shared process)."""
        key = self.fused.get(service_name, service_name)
        try:
            return self.processes[key]
        except KeyError:
            raise DeploymentError(
                f"no process for service {service_name!r} in {self.name!r}"
            ) from None

    def collected(self, sink_name: str) -> list[SensorTuple]:
        """Tuples received by a collector sink."""
        try:
            return self.collectors[sink_name].received
        except KeyError:
            raise DeploymentError(
                f"{sink_name!r} is not a collector sink of {self.name!r}"
            ) from None

    def assignments(self) -> dict[str, str]:
        return {name: process.node_id for name, process in self.processes.items()}

    # -- control ------------------------------------------------------------------

    def update_source_health(self) -> None:
        """Re-evaluate source quorum; degrade or recover accordingly.

        Called by the executor whenever a sensor joins or leaves the
        network.  Each binding re-matches its discovery filter against the
        live registry; when any source's sensor set shrinks below the
        executor's quorum fraction of what deployment-time discovery
        found, the flow degrades (it keeps streaming whatever remains)
        and automatically recovers once sensors republish.
        """
        if self.state not in (DeploymentState.RUNNING, DeploymentState.DEGRADED):
            return
        registry = self.executor.broker_network.registry
        starved: list[str] = []
        for binding in self.bindings.values():
            if binding.filter is None:
                continue
            binding.sensors = sorted(
                (m for m in registry.all() if binding.filter.matches(m)),
                key=lambda m: m.sensor_id,
            )
            if len(binding.sensors) < self.executor.source_quorum_of(
                binding.initial_count
            ):
                starved.append(binding.service_name)
        if starved and self.state is DeploymentState.RUNNING:
            self.state = DeploymentState.DEGRADED
            self.executor.monitor.log(
                self.name,
                "degraded",
                f"source(s) below quorum: {', '.join(sorted(starved))}",
            )
        elif not starved and self.state is DeploymentState.DEGRADED:
            self.state = DeploymentState.RUNNING
            self.executor.monitor.log(self.name, "recovered", "sources back above quorum")

    def pause(self) -> None:
        """Suspend acquisition (subscriptions stop producing traffic)."""
        if self.state is not DeploymentState.RUNNING:
            raise LifecycleError(f"cannot pause deployment in state {self.state}")
        for binding in self.bindings.values():
            for subscription in binding.subscriptions:
                subscription.pause()
        self.state = DeploymentState.PAUSED

    def resume(self) -> None:
        if self.state is not DeploymentState.PAUSED:
            raise LifecycleError(f"cannot resume deployment in state {self.state}")
        for binding in self.bindings.values():
            for subscription in binding.subscriptions:
                subscription.resume()
        self.state = DeploymentState.RUNNING

    def teardown(self) -> None:
        """Stop everything and release network resources."""
        if self.state is DeploymentState.STOPPED:
            return
        if self._rebalance_cancel is not None:
            self._rebalance_cancel()
            self._rebalance_cancel = None
        for rebalancer in self.rebalancers.values():
            rebalancer.stop()
        for binding in self.bindings.values():
            for subscription in binding.subscriptions:
                self.executor.broker_network.unsubscribe(subscription)
            binding.subscriptions.clear()
        for process in self.processes.values():
            process.stop()
        self.executor.monitor.unwatch(self.name)
        self.state = DeploymentState.STOPPED

    def apply_control(self, command: ControlCommand) -> int:
        """Actuate a trigger command: toggle governed subscriptions.

        Returns the number of subscriptions toggled.  The command's sensor
        ids select which governed sources are affected; a command naming no
        sensor bound to this deployment toggles nothing.
        """
        self.executor.monitor.record_control(self.name, command)
        targets = set(command.sensor_ids)
        toggled = 0
        governed = {
            control.source for control in self.program.controls
        }
        for service_name in governed:
            binding = self.bindings.get(service_name)
            if binding is None:
                continue
            if targets and not (targets & binding.sensor_ids):
                continue
            for subscription in binding.subscriptions:
                if command.activate:
                    subscription.resume()
                else:
                    subscription.pause()
                toggled += 1
        return toggled


class Executor:
    """Coordinates deployments over one network + pub-sub + SCN stack."""

    def __init__(
        self,
        netsim: NetworkSimulator,
        broker_network: BrokerNetwork,
        scn: "ScnController | None" = None,
        monitor: "Monitor | None" = None,
        warehouse: "object | None" = None,
        sticker: "object | None" = None,
        rebalance_interval: float = 300.0,
        checkpoint_interval: float = 60.0,
        source_quorum: float = 0.5,
        obs: "object | None" = None,
        rebalance_config: "object | None" = None,
        alert_cadence: float = 60.0,
        backend: "ExecutionBackend | None" = None,
    ) -> None:
        if not (0.0 < source_quorum <= 1.0):
            raise DeploymentError(
                f"source_quorum must be in (0, 1]: {source_quorum}"
            )
        self.netsim = netsim
        #: Execution backend the deployed processes run on.  Defaults to
        #: wrapping ``netsim`` in a SimBackend, which changes nothing —
        #: the simulator executes processes inline in delivery callbacks.
        if backend is None:
            backend = SimBackend(netsim)
        self.backend = backend
        self.broker_network = broker_network
        #: Observability bundle (``repro.obs.Observability``); threads
        #: through the monitor, every spawned process, the SCN's placement
        #: events, and the blocking operators' lineage recorders.
        self.obs = obs
        self.scn = scn or ScnController(netsim.topology)
        self.monitor = monitor or Monitor(netsim, obs=obs)
        if obs is not None:
            obs.tracer.bind_clock(netsim.clock)
            if netsim.tracer is None:
                netsim.tracer = obs.tracer
            if getattr(self.scn, "tracer", None) is None:
                self.scn.tracer = obs.tracer
            if broker_network.obs is None:
                broker_network.obs = obs
        self.warehouse = warehouse
        self.sticker = sticker
        self.rebalance_interval = rebalance_interval
        #: Knobs for the elastic key-level control loop (``shard ...
        #: elastic`` services); node-level coordination rounds above keep
        #: their own ``rebalance_interval``.
        from repro.runtime.rebalance import RebalanceConfig

        self.rebalance_config = rebalance_config or RebalanceConfig()
        #: Blocking-operator snapshot cadence (seconds of virtual time).
        self.checkpoint_interval = checkpoint_interval
        #: Fraction of deploy-time sensors a source must keep to stay healthy.
        self.source_quorum = source_quorum
        #: Virtual-time cadence of the alert engine's evaluation ticks.
        self.alert_cadence = alert_cadence
        #: The deterministic alerting engine, created lazily by the first
        #: deployment that declares SLO clauses (``slo "..." ...;``).
        self.alerts = None
        self.deployments: dict[str, Deployment] = {}
        self.monitor.on_node_dead.append(self._handle_node_death)
        self._chain_broker_hooks()
        self.monitor.start()

    def _chain_broker_hooks(self) -> None:
        """Observe sensor churn and dead letters without displacing other
        listeners already attached to the broker network."""
        previous_pub = self.broker_network.on_sensor_published
        previous_unpub = self.broker_network.on_sensor_unpublished
        previous_dead = self.broker_network.on_dead_letter

        def on_published(metadata) -> None:
            if previous_pub is not None:
                previous_pub(metadata)
            self._on_sensor_churn()

        def on_unpublished(metadata) -> None:
            if previous_unpub is not None:
                previous_unpub(metadata)
            self._on_sensor_churn()

        def on_dead_letter(subscription, tuple_, reason) -> None:
            if previous_dead is not None:
                previous_dead(subscription, tuple_, reason)
            self.monitor.record_dead_letter(
                subscription.subscription_id,
                subscription.node_id,
                tuple_.source,
                reason,
            )

        self.broker_network.on_sensor_published = on_published
        self.broker_network.on_sensor_unpublished = on_unpublished
        self.broker_network.on_dead_letter = on_dead_letter

    def _on_sensor_churn(self) -> None:
        for deployment in self.deployments.values():
            deployment.update_source_health()

    def source_quorum_of(self, initial_count: int) -> int:
        """Minimum live sensors a source binding needs to stay healthy."""
        if initial_count <= 0:
            return 0
        return max(1, math.ceil(self.source_quorum * initial_count))

    # -- demand estimation -------------------------------------------------------

    def _estimate_demands(
        self, program: DsnProgram, bindings: dict[str, list[SensorMetadata]]
    ) -> dict[str, float]:
        """Expected cost-units/s per service from advertised sensor rates.

        Rates propagate along channels: pass-through for per-tuple
        operators, 1/interval for aggregations, zero for triggers (control
        only).  This is only the *initial* placement signal; live rates
        take over at the first monitor sample.
        """
        rates: dict[str, float] = {}
        demands: dict[str, float] = {}
        for service in self.scn._topological_services(program):
            if service.role is ServiceRole.SOURCE:
                sensors = bindings.get(service.name, [])
                rates[service.name] = sum(m.frequency for m in sensors)
                continue
            in_rate = sum(
                rates.get(channel.source, 0.0)
                for channel in program.channels_into(service.name)
            )
            if service.kind == "aggregation":
                interval = float(service.params.get("interval", 1.0))
                out_rate = 1.0 / interval if interval > 0 else 0.0
            elif service.kind in ("trigger-on", "trigger-off"):
                out_rate = 0.0
            else:
                out_rate = in_rate
            rates[service.name] = out_rate
            demands[service.name] = max(_NOMINAL_DEMAND, in_rate)
        return demands

    # -- deployment --------------------------------------------------------------

    def deploy(
        self,
        flow_or_program: "Dataflow | DsnProgram",
        shards: "int | dict[str, int] | None" = None,
        elastic: bool = False,
        fuse: bool = True,
        columnar: bool = True,
    ) -> Deployment:
        """Translate (if needed), place, spawn, wire, and start a dataflow.

        ``shards`` requests key-partitioned scale-out for blocking
        operators when translating a conceptual dataflow (see
        :func:`repro.dsn.generate.dataflow_to_dsn`); ``elastic`` marks
        those shard clauses elastic, attaching the load-feedback
        rebalance loop (``--rebalance``).  A DSN program passed directly
        already carries its ``shard`` clauses, so both are only honoured
        for :class:`Dataflow` input.

        ``fuse`` (default on) runs the operator-fusion planner
        (:func:`repro.dataflow.fusion.chains_for`): maximal chains of
        non-blocking operators on private single-in/single-out channels
        are hosted in one process each, eliding the interior hops.  A
        program's explicit ``fuse`` clauses pin the plan; ``fuse=False``
        is the ``--no-fuse`` escape hatch.

        ``columnar`` (default on) lets fused chains whose members all
        carry column kernels (:func:`repro.dataflow.fusion.
        columnar_eligible`) execute micro-batches as struct-of-arrays
        columns with selection-vector filtering (DESIGN.md §16);
        ``columnar=False`` is the ``--no-columnar`` escape hatch and
        pins every chain to the row batch path.
        """
        if isinstance(flow_or_program, Dataflow):
            flow = flow_or_program
            program = dataflow_to_dsn(
                flow, self.broker_network.registry, shards=shards,
                elastic=elastic,
            )
        else:
            flow = None
            program = flow_or_program
            program.check()
        if program.name in self.deployments:
            existing = self.deployments[program.name]
            if existing.state is not DeploymentState.STOPPED:
                raise DeploymentError(
                    f"a deployment named {program.name!r} is already running"
                )

        deployment = Deployment(program.name, program, self, flow=flow)
        sensor_bindings = self.scn.discover(program, self.broker_network.registry)
        demands = self._estimate_demands(program, sensor_bindings)
        placements = self.scn.place(program, sensor_bindings, demands)

        # Fusion plan: collapse each chain's members onto the head's
        # placement *before* QoS admission, so admitted latencies reflect
        # the elided (zero-distance) interior hops.
        from repro.dataflow.fusion import chains_for

        chains = chains_for(program, fuse=fuse)
        member_of: dict[str, tuple[str, ...]] = {}
        for chain in chains:
            head = placements[chain[0]]
            for name in chain:
                member_of[name] = chain
                if name != chain[0]:
                    placements[name] = PlacementDecision(
                        service=name,
                        node_id=head.node_id,
                        score=head.score,
                        reason=f"fused with {chain[0]}",
                    )

        self.scn.admit_qos(program, placements)
        deployment.placements = placements

        # Spawn processes for operators and sinks.
        from repro.dsn.scn import _filter_from_params

        shard_specs = {
            shard.service: shard
            for shard in program.shards
            if shard.count > 1
        }
        for service in program.services:
            if service.role is ServiceRole.SOURCE:
                sensors = sensor_bindings[service.name]
                deployment.bindings[service.name] = _SourceBinding(
                    service_name=service.name,
                    sensors=sensors,
                    filter=_filter_from_params(service.params),
                    initial_count=len(sensors),
                )
                continue
            if (
                service.role is ServiceRole.OPERATOR
                and service.name in shard_specs
            ):
                self._spawn_sharded(
                    deployment,
                    service,
                    shard_specs[service.name],
                    placements,
                    sensor_bindings,
                    demands,
                )
                continue
            if service.name in member_of:
                chain = member_of[service.name]
                if service.name == chain[0]:
                    self._spawn_fused(
                        deployment, chain, placements, demands, columnar
                    )
                continue
            operator = self._build_runtime(service, deployment)
            if self.obs is not None:
                operator.lineage = self.obs.lineage
            process = OperatorProcess(
                process_id=f"{program.name}:{service.name}",
                operator=operator,
                node_id=placements[service.name].node_id,
                netsim=self.netsim,
                obs=self.obs,
            )
            if operator.checkpointable:
                process.enable_checkpoints(self.checkpoint_interval)
            node = self.netsim.topology.node(process.node_id)
            process.placement_demand = demands.get(service.name, 0.0)
            node.update_demand(process.process_id, process.placement_demand)
            deployment.processes[service.name] = process

        # Wire channels.
        for channel in program.channels:
            if (
                channel.source in deployment.fused
                and deployment.fused[channel.source]
                == deployment.fused.get(channel.target)
            ):
                continue  # fused-interior hop: traversed inside one process
            qos = program.service(channel.target).qos
            if channel.target in deployment.shard_groups:
                # Deliveries into a sharded operator are key-partitioned
                # across its member processes.
                group = deployment.shard_groups[channel.target]
                if channel.source in deployment.bindings:
                    self._bind_source_sharded(
                        deployment, channel.source, group, channel.port
                    )
                    if channel.batch > 1:
                        deployment.batch_hints[channel.source] = max(
                            deployment.batch_hints.get(channel.source, 1),
                            channel.batch,
                        )
                else:
                    self._outgoing_process(deployment, channel.source).add_route(
                        group, port=channel.port, qos=qos
                    )
                continue
            # A channel into a fused chain can only target its head (the
            # planner guarantees interior members have no other feeder),
            # and the head resolves to the chain's shared process.
            target = deployment.process(channel.target)
            if channel.source in deployment.bindings:
                self._bind_source(deployment, channel.source, target, channel.port)
                if channel.batch > 1:
                    deployment.batch_hints[channel.source] = max(
                        deployment.batch_hints.get(channel.source, 1),
                        channel.batch,
                    )
            else:
                self._outgoing_process(deployment, channel.source).add_route(
                    target, port=channel.port, qos=qos
                )

        if program.slos:
            self._install_slo_plane(deployment)

        # Start processes, hand them to the execution backend, and monitor.
        for process in deployment.processes.values():
            process.start()
        for process in deployment.processes.values():
            self.backend.host_process(process)
        self.monitor.watch(program.name, list(deployment.processes.values()))
        self.monitor.log(program.name, "deployed", f"{len(deployment.processes)} processes")
        deployment.state = DeploymentState.RUNNING
        deployment._rebalance_cancel = self.netsim.clock.schedule_periodic(
            self.rebalance_interval, lambda: self._rebalance(deployment)
        )
        for rebalancer in deployment.rebalancers.values():
            rebalancer.start()
        self.deployments[program.name] = deployment
        return deployment

    def _install_slo_plane(self, deployment: Deployment) -> None:
        """Install the latency plane for a deployment with SLO clauses.

        Creates the plane (idempotent per observability bundle), hooks the
        broker and network simulator, attaches a probe to every spawned
        process, lowers the dataflow's channel graph into per-process
        watermark upstream sets, and registers one alert rule per ``slo``
        clause with the executor-wide engine.
        """
        program = deployment.program
        if self.obs is None:
            raise DeploymentError(
                f"deployment {program.name!r} declares SLO clauses but the "
                "executor was built without observability"
            )
        from repro.obs.alerts import AlertEngine, AlertRule

        plane = self.obs.ensure_latency()
        self.netsim.plane = plane
        plane.attach_broker(self.broker_network)
        for process in deployment.processes.values():
            operator = process.operator
            process._probe = plane.register_process(
                process.process_id,
                blocking=operator.is_blocking,
                sink=operator.span_name == "sink",
            )

        # Watermark graph: each channel between *deployed* services adds
        # the emitting process to the consuming process's upstream set.
        # Sources feed through the broker and have no probe (source_high
        # covers them); shard groups fan a channel in across the members
        # and out through the merge; fused members collapse to the chain.
        upstreams: dict[str, set[str]] = {
            key: set() for key in deployment.processes
        }

        def out_key(service_name: str) -> "str | None":
            if service_name in deployment.bindings:
                return None
            if service_name in deployment.shard_groups:
                return f"{service_name}#merge"
            return deployment.fused.get(service_name, service_name)

        def in_keys(service_name: str) -> list[str]:
            group = deployment.shard_groups.get(service_name)
            if group is not None:
                return [
                    f"{service_name}#{index}"
                    for index in range(len(group.members))
                ]
            return [deployment.fused.get(service_name, service_name)]

        for channel in program.channels:
            up = out_key(channel.source)
            if up is None:
                continue
            for down in in_keys(channel.target):
                if down != up:
                    upstreams[down].add(up)
        for service_name, group in deployment.shard_groups.items():
            merge_key = f"{service_name}#merge"
            for index in range(len(group.members)):
                upstreams[merge_key].add(f"{service_name}#{index}")
        for key in deployment.processes:
            plane.set_upstreams(
                deployment.processes[key].process_id,
                sorted(
                    deployment.processes[up].process_id
                    for up in upstreams[key]
                ),
            )

        # The elastic control loops (PR 6) can read per-shard watermark
        # lag as a tie-breaking rebalance input.
        for service_name, rebalancer in deployment.rebalancers.items():
            group = deployment.shard_groups[service_name]
            rebalancer.load_monitor.lag_provider = (
                lambda members=tuple(group.members), plane=plane: [
                    plane.watermark_lag(member.process_id) or 0.0
                    for member in members
                ]
            )

        engine = self.alerts
        if engine is None:
            engine = self.alerts = AlertEngine(
                self.obs.metrics,
                plane=plane,
                tracer=self.obs.tracer,
                cadence=self.alert_cadence,
            )
            engine.start(self.netsim.clock)
            self.monitor.alerts = engine
        for slo in program.slos:
            engine.add_rule(
                AlertRule(
                    name=f"slo:{slo.flow}:{slo.metric}",
                    metric=slo.metric,
                    op=slo.op,
                    threshold=slo.threshold,
                    window=slo.window,
                    scope=slo.flow,
                )
            )

    def _build_runtime(self, service, deployment: Deployment):
        """Instantiate the runtime operator (or sink) for a service."""
        from repro.dataflow.ops import spec_from_dict

        if service.role is ServiceRole.OPERATOR:
            spec = spec_from_dict({"kind": service.kind, **service.params})
            operator = spec.build_operator()
            if service.kind in ("trigger-on", "trigger-off"):
                operator.control = deployment.apply_control
            return operator
        # Sinks.
        config = dict(service.params.get("config", {}))
        if service.kind == "warehouse":
            if self.warehouse is None:
                raise DeploymentError(
                    f"sink {service.name!r} needs a warehouse, but the "
                    f"executor was built without one"
                )
            value_attribute = config.get("value_attribute")
            return CallbackSink(
                lambda t, va=value_attribute: self.warehouse.load(t, value_attribute=va),
                name=f"warehouse:{service.name}",
            )
        if service.kind == "visualization":
            if self.sticker is None:
                raise DeploymentError(
                    f"sink {service.name!r} needs a visualization feed, but "
                    f"the executor was built without one"
                )
            return CallbackSink(
                self.sticker.push, name=f"sticker:{service.name}"
            )
        sink = ListSink(name=f"collector:{service.name}")
        deployment.collectors[service.name] = sink
        return sink

    def _bind_source(
        self,
        deployment: Deployment,
        service_name: str,
        target: OperatorProcess,
        port: int,
    ) -> None:
        """Subscribe the target process to the source's sensors."""
        service = deployment.program.service(service_name)
        from repro.dsn.scn import _filter_from_params

        filter_ = _filter_from_params(service.params)
        subscription = self.broker_network.subscribe(
            node_id=target.node_id,
            filter_=filter_,
            callback=lambda tuple_, t=target, p=port: t.receive(tuple_, port=p),
        )
        # Micro-batches delivered to this subscription go through the
        # process's batch path in one call instead of unrolling per tuple.
        subscription.batch_callback = (
            lambda batch, t=target, p=port: t.receive_batch(batch, port=p)
        )
        if not service.params.get("active", True):
            subscription.pause()
        deployment.bindings[service_name].subscriptions.append(subscription)
        deployment._sub_targets[subscription.subscription_id] = target

    # -- fused chains ------------------------------------------------------------

    def _spawn_fused(
        self,
        deployment: Deployment,
        chain: "tuple[str, ...]",
        placements: dict[str, PlacementDecision],
        demands: dict[str, float],
        columnar: bool = True,
    ) -> None:
        """Spawn one process hosting a whole fused non-blocking chain.

        The process is keyed and named ``"a+b+c"`` after its members,
        placed on the chain head's node, and booked with the chain's
        *max* member demand (the members see the same stream, so their
        demands overlap rather than add; the summed per-tuple cost is
        carried by the fused operator's ``cost_per_tuple``).

        ``columnar`` gates the chain's columnar batch pipeline; it is
        further narrowed by the plan-time eligibility check (every
        member's kind must carry a column kernel).
        """
        from repro.dataflow.fusion import columnar_eligible
        from repro.streams.fused import FUSED_NAME_SEPARATOR, FusedOperator

        program = deployment.program
        members = []
        for name in chain:
            operator = self._build_runtime(program.service(name), deployment)
            # Spans and describe() should carry the service names the
            # designer knows, not the operator class names.
            operator.name = name
            if self.obs is not None:
                operator.lineage = self.obs.lineage
            members.append(operator)
        key = FUSED_NAME_SEPARATOR.join(chain)
        fused = FusedOperator(members, name=key)
        fused.columnar = columnar and columnar_eligible(program, chain)
        if self.obs is not None:
            fused.lineage = self.obs.lineage
            fused.bind_obs(
                self.obs.metrics,
                [f"{program.name}:{name}" for name in chain],
            )
        process = OperatorProcess(
            process_id=f"{program.name}:{key}",
            operator=fused,
            node_id=placements[chain[0]].node_id,
            netsim=self.netsim,
            obs=self.obs,
        )
        if fused.checkpointable:
            process.enable_checkpoints(self.checkpoint_interval)
        node = self.netsim.topology.node(process.node_id)
        process.placement_demand = max(
            demands.get(name, 0.0) for name in chain
        )
        node.update_demand(process.process_id, process.placement_demand)
        head = placements[chain[0]]
        deployment.processes[key] = process
        deployment.placements[key] = PlacementDecision(
            service=key,
            node_id=head.node_id,
            score=head.score,
            reason=head.reason,
        )
        deployment.fused_chains[key] = chain
        for name in chain:
            deployment.fused[name] = key

    def _chain_placements(
        self, deployment: Deployment, key: str, node_id: str,
        score: float, reason: str,
    ) -> None:
        """Keep fused members' placement records on the chain's node.

        Channels name the conceptual member services, so replacement and
        placement lookups read the member entries; they must follow the
        shared process wherever it moves.
        """
        for member in deployment.fused_chains.get(key, ()):
            deployment.placements[member] = PlacementDecision(
                service=member, node_id=node_id, score=score, reason=reason,
            )

    # -- sharded operators -------------------------------------------------------

    def _outgoing_process(
        self, deployment: Deployment, service_name: str
    ) -> OperatorProcess:
        """The process that emits a service's output downstream.

        For a sharded service that is its merge stage (shards feed the
        merge, the merge feeds the rest of the flow); for a fused member
        the chain's shared process (only the tail has outward channels);
        otherwise the service's own process.
        """
        group = deployment.shard_groups.get(service_name)
        if group is not None:
            assert group.merge is not None
            return group.merge
        return deployment.process(service_name)

    def _spawn_sharded(
        self,
        deployment: Deployment,
        service,
        shard,
        placements: dict[str, PlacementDecision],
        sensor_bindings: dict[str, list[SensorMetadata]],
        demands: dict[str, float],
    ) -> None:
        """Spawn one blocking operator as N key-partitioned shard replicas.

        Each shard is a full copy of the operator wrapped in a
        :class:`~repro.streams.shard.ShardedOperatorAdapter` (so flushes
        travel as ordered envelopes), placed on its own node through
        :meth:`ScnController.place_shards`.  A
        :class:`~repro.streams.shard.ShardMergeOperator` on the service's
        conceptual placement node re-establishes the unsharded per-flush
        order before anything flows downstream.
        """
        from repro.dataflow.ops import spec_from_dict
        from repro.streams.shard import ShardedOperatorAdapter, ShardMergeOperator

        program = deployment.program
        count = shard.count
        #: the conceptual demand splits across the replicas.
        demand = demands.get(service.name, 0.0) / count
        upstream_nodes: list[str] = []
        for channel in program.channels_into(service.name):
            if channel.source in sensor_bindings:
                upstream_nodes.extend(
                    sorted({m.node_id for m in sensor_bindings[channel.source]})
                )
            elif channel.source in placements:
                upstream_nodes.append(placements[channel.source].node_id)
        decisions = self.scn.place_shards(
            service.name, count, upstream_nodes, demand
        )

        spec = spec_from_dict({"kind": service.kind, **service.params})
        members: list[OperatorProcess] = []
        for index in range(count):
            inner = spec.build_operator()
            adapter = ShardedOperatorAdapter(
                inner, shard_index=index, shard_count=count
            )
            if self.obs is not None:
                adapter.lineage = self.obs.lineage
            process = OperatorProcess(
                process_id=f"{program.name}:{service.name}#{index}",
                operator=adapter,
                node_id=decisions[index].node_id,
                netsim=self.netsim,
                obs=self.obs,
            )
            if adapter.checkpointable:
                process.enable_checkpoints(self.checkpoint_interval)
            node = self.netsim.topology.node(process.node_id)
            process.placement_demand = demand
            node.update_demand(process.process_id, demand)
            key = f"{service.name}#{index}"
            deployment.processes[key] = process
            deployment.placements[key] = decisions[index]
            members.append(process)

        mode = "aggregate" if service.kind == "aggregation" else "join"
        merge = ShardMergeOperator(
            count, mode, name=f"{service.name}-merge"
        )
        if self.obs is not None:
            merge.bind_obs(self.obs.metrics, service.name)
            merge.lineage = self.obs.lineage
        merge_process = OperatorProcess(
            process_id=f"{program.name}:{service.name}#merge",
            operator=merge,
            node_id=placements[service.name].node_id,
            netsim=self.netsim,
            obs=self.obs,
        )
        if merge.checkpointable:
            merge_process.enable_checkpoints(self.checkpoint_interval)
        node = self.netsim.topology.node(merge_process.node_id)
        merge_process.placement_demand = demand
        node.update_demand(merge_process.process_id, demand)
        merge_key = f"{service.name}#merge"
        deployment.processes[merge_key] = merge_process
        deployment.placements[merge_key] = placements[service.name]

        if service.kind == "join" and len(shard.keys) >= 2:
            keys_by_port: tuple[tuple[str, ...], ...] = tuple(
                (key,) for key in shard.keys
            )
        else:
            keys_by_port = (tuple(shard.keys),)
        for member in members:
            member.add_route(merge_process, port=0, qos=service.qos)
        assignment = None
        if getattr(shard, "elastic", False):
            from repro.runtime.rebalance import ShardRebalancer
            from repro.streams.shard import ShardAssignment

            assignment = ShardAssignment(count)
        group = ShardGroup(
            service=service.name,
            members=members,
            keys_by_port=keys_by_port,
            merge=merge_process,
            assignment=assignment,
        )
        deployment.shard_groups[service.name] = group
        if assignment is not None:
            # Stragglers of a migrated key (tuples in flight when the
            # routing flipped) are handed to the current owner.
            def reroute(tuple_, port, group=group):
                group.member_for(tuple_, port).receive(tuple_, port=port)

            for member in members:
                member.operator.enable_elastic(keys_by_port, reroute)
            deployment.rebalancers[service.name] = ShardRebalancer(
                group,
                assignment,
                self.netsim,
                service.name,
                interval=members[0].operator.interval,
                config=self.rebalance_config,
                monitor=self.monitor,
                combine_safe=spec.combine_safe(),
            )

    def _bind_source_sharded(
        self,
        deployment: Deployment,
        service_name: str,
        group: ShardGroup,
        port: int,
    ) -> None:
        """Subscribe a shard group to the source's sensors.

        One subscription per shard, all on the shard's own node, joined
        into a :class:`~repro.pubsub.partition.ShardRouter` so the broker
        hashes each published tuple to exactly one member.
        """
        service = deployment.program.service(service_name)
        from repro.dsn.scn import _filter_from_params

        filter_ = _filter_from_params(service.params)
        callbacks = [
            (lambda tuple_, m=member, p=port: m.receive(tuple_, port=p))
            for member in group.members
        ]
        batch_callbacks = [
            (lambda batch, m=member, p=port: m.receive_batch(batch, port=p))
            for member in group.members
        ]
        router = self.broker_network.subscribe_sharded(
            node_ids=[member.node_id for member in group.members],
            filter_=filter_,
            callbacks=callbacks,
            keys=group.keys_for_port(port),
            batch_callbacks=batch_callbacks,
            assignment=group.assignment,
        )
        active = service.params.get("active", True)
        binding = deployment.bindings[service_name]
        for member_sub, member in zip(router.members, group.members):
            if not active:
                member_sub.pause()
            binding.subscriptions.append(member_sub)
            deployment._sub_targets[member_sub.subscription_id] = member

    # -- rebalancing -------------------------------------------------------------

    def _rebalance(self, deployment: Deployment) -> None:
        """One SCN coordination round: migrate off overloaded/dead nodes."""
        if deployment.state not in (
            DeploymentState.RUNNING, DeploymentState.DEGRADED
        ):
            return
        now = self.netsim.clock.now
        self._evacuate_dead_nodes(deployment)
        service_demands: dict[str, float] = {}
        current: dict[str, PlacementDecision] = {}
        for name, process in deployment.processes.items():
            service_demands[process.process_id] = process.sample_load(now)
            current[process.process_id] = PlacementDecision(
                service=process.process_id,
                node_id=process.node_id,
                score=0.0,
                reason="live",
            )
        moves = self.scn.suggest_migrations(current, service_demands)
        by_pid = {p.process_id: (name, p) for name, p in deployment.processes.items()}
        for move in moves:
            name, process = by_pid[move.service]
            process.move_to(move.to_node)
            deployment.placements[name] = PlacementDecision(
                service=name,
                node_id=move.to_node,
                score=0.0,
                reason=move.reason,
            )
            self._chain_placements(
                deployment, name, move.to_node, 0.0, move.reason
            )
            # Subscriptions feeding the moved process follow it.
            for binding in deployment.bindings.values():
                for subscription in binding.subscriptions:
                    if deployment._sub_targets.get(
                        subscription.subscription_id
                    ) is process:
                        subscription.node_id = move.to_node
            self.monitor.record_assignment(
                move.service, move.from_node, move.to_node, move.reason
            )

    def _evacuate_dead_nodes(self, deployment: Deployment) -> None:
        """Coordination-round backstop: move processes off dead nodes.

        The heartbeat failure detector normally reacts first (see
        :meth:`_handle_node_death`); this catches anything it missed —
        e.g. a node that died with the monitor stopped.
        """
        dead = {
            process.node_id
            for process in deployment.processes.values()
            if not self.netsim.topology.node(process.node_id).up
        }
        for node_id in sorted(dead):
            self._replace_processes(deployment, node_id)

    def _handle_node_death(self, node_id: str) -> None:
        """Failure-detector verdict: re-place every process of every
        deployment that was running on the dead node."""
        for deployment in list(self.deployments.values()):
            if deployment.state in (
                DeploymentState.RUNNING,
                DeploymentState.DEGRADED,
                DeploymentState.PAUSED,
            ):
                self._replace_processes(deployment, node_id)

    def _replace_processes(self, deployment: Deployment, node_id: str) -> None:
        """Move a dead node's processes to survivors and restore state.

        Each displaced process is re-placed through the SCN's placement
        scoring (load + distance to its upstream services), its blocking
        operator restored from the last checkpoint, and its feeding
        subscriptions re-pointed; the monitor logs each assignment change.
        With no live node left, processes stay put until one recovers.
        """
        displaced = [
            (name, process)
            for name, process in deployment.processes.items()
            if process.node_id == node_id
            and not self.netsim.topology.node(node_id).up
        ]
        for name, process in displaced:
            # Shard and merge processes are keyed "<service>#<suffix>" but
            # the program's channels name the conceptual service.
            base = name.split("#", 1)[0]
            # A fused process is keyed "a+b+c"; the channels feeding it
            # name its head member, and the whole chain re-places as one
            # unit (it *is* one process).
            chain = deployment.fused_chains.get(base)
            if chain is not None:
                base = chain[0]
            upstream_nodes = [
                deployment.placements[channel.source].node_id
                for channel in deployment.program.channels_into(base)
                if channel.source in deployment.placements
            ]
            # Floor at the deploy-time estimate: a process displaced
            # before its first monitor sample reads rate 0.0, and booking
            # zero demand lets every displaced sibling pack onto the same
            # node unseen (the place_shards double-booking bug).
            demand = max(
                process.rate.rate * process.operator.cost_per_tuple,
                process.placement_demand,
            )
            try:
                decision = self.scn.replace_service(
                    name, upstream_nodes, demand, avoid={node_id}
                )
            except PlacementError:
                return  # nowhere to go; keep waiting for recovery
            origin = process.node_id
            reason = f"node {origin!r} is down"
            process.move_to(decision.node_id)
            restored = process.restore_last_checkpoint()
            for binding in deployment.bindings.values():
                for subscription in binding.subscriptions:
                    if deployment._sub_targets.get(
                        subscription.subscription_id
                    ) is process:
                        subscription.node_id = decision.node_id
            deployment.placements[name] = PlacementDecision(
                service=name,
                node_id=decision.node_id,
                score=decision.score,
                reason=reason,
            )
            self._chain_placements(
                deployment, name, decision.node_id, decision.score, reason
            )
            self.monitor.record_assignment(
                process.process_id, origin, decision.node_id, reason
            )
            if restored:
                checkpoint_time = process.last_checkpoint[0]
                self.monitor.log(
                    process.process_id,
                    "checkpoint-restored",
                    f"state from t={checkpoint_time:.1f}s on {decision.node_id}",
                )
