"""The simulator backend: today's discrete-event stack behind the interface.

A thin wrapper — the clock is the :class:`~repro.network.simclock
.SimClock` the simulator already owns, the transport *is* the
:class:`~repro.network.netsim.NetworkSimulator`, and processes execute
inline in delivery callbacks, so ``host_process`` has nothing to do.
Wrapping an existing simulator changes nothing about its behaviour;
byte-for-byte this is the stack every earlier PR ran on, which is what
makes it the determinism oracle the parity suite compares the async
backend against.
"""

from __future__ import annotations

from repro.network.netsim import NetworkSimulator
from repro.network.topology import Topology
from repro.runtime.backends.base import ExecutionBackend


class SimBackend(ExecutionBackend):
    """Deterministic discrete-event execution (the default)."""

    name = "sim"

    def __init__(
        self,
        netsim: "NetworkSimulator | None" = None,
        topology: "Topology | None" = None,
    ) -> None:
        if netsim is None:
            netsim = NetworkSimulator(topology=topology)
        self.transport = netsim
        self.clock = netsim.clock
        self.topology = netsim.topology

    def run_until(self, time: float, max_events: int = 10_000_000) -> int:
        return self.clock.run_until(time, max_events)
