"""Execution backends: the simulator oracle and the asyncio runtime.

See :mod:`repro.runtime.backends.base` for the interface,
:mod:`repro.runtime.backends.sim` for the deterministic default and
:mod:`repro.runtime.backends.asyncio_backend` for wall-clock execution.
"""

from __future__ import annotations

from repro.errors import StreamLoaderError
from repro.runtime.backends.asyncio_backend import (
    AsyncBackend,
    AsyncClock,
    AsyncTransport,
    live_backends,
)
from repro.runtime.backends.base import ExecutionBackend
from repro.runtime.backends.sim import SimBackend

#: Backend names the CLI accepts (``--backend``).
BACKEND_NAMES = ("sim", "async")

__all__ = [
    "AsyncBackend",
    "AsyncClock",
    "AsyncTransport",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SimBackend",
    "backend_from_name",
    "live_backends",
]


def backend_from_name(
    name: str,
    topology=None,
    **kwargs,
) -> ExecutionBackend:
    """Construct a backend by CLI name (``sim`` or ``async``).

    ``kwargs`` (``time_scale``, ``max_wall``, capacities) only apply to
    the async backend; the simulator takes none.
    """
    if name == "sim":
        return SimBackend(topology=topology)
    if name == "async":
        return AsyncBackend(topology=topology, **kwargs)
    raise StreamLoaderError(
        f"unknown backend {name!r} (expected one of {', '.join(BACKEND_NAMES)})"
    )
