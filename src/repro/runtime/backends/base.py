"""The execution-backend interface: what a deployed plan actually runs on.

The DSN/SCN layers decide *what* runs *where*; a backend decides *how*:
which clock fires the timers, which substrate carries the messages, and
what hosts an :class:`~repro.runtime.process.OperatorProcess`.  Keeping
that behind one small interface lets the executor deploy the same plan
onto the deterministic simulator (the test oracle) or onto a real
wall-clock asyncio runtime without either knowing about the other.

A backend exposes:

- ``clock`` — the timer service (``schedule`` / ``schedule_at`` /
  ``schedule_periodic`` / ``now``, the :class:`~repro.network.simclock
  .SimClock` protocol).  Everything in the runtime — sensor emissions,
  window flushes, heartbeats, checkpoints, retry backoff — runs off it.
- ``transport`` — the :class:`~repro.network.netsim.NetworkSimulator`
  protocol (``send`` / ``send_batch`` / ``topology`` / ``stats`` /
  ``kill_node`` / ``total_link_bytes`` ...).  Processes, the broker and
  the monitor talk only to this surface.
- ``host_process`` — claim execution of an operator process (a no-op on
  the simulator, an asyncio task + bounded mailbox on the async backend).
- ``run_until`` / ``close`` — drive virtual time forward and release any
  real resources (tasks, event loops) the backend holds.
"""

from __future__ import annotations


class ExecutionBackend:
    """Base class for execution backends (see the module docstring).

    Subclasses set :attr:`name` and the ``clock`` / ``transport`` /
    ``topology`` attributes in their constructor.
    """

    #: Short identifier surfaced by the CLI and the monitor ("sim", "async").
    name = "?"

    def run_until(self, time: float, max_events: int = 10_000_000) -> int:
        """Advance virtual time to ``time``; returns events executed."""
        raise NotImplementedError

    def host_process(self, process) -> None:
        """Claim execution of an operator process.

        Called by the executor once per spawned process after ``start()``.
        The simulator executes processes inline, so its implementation is
        a no-op; the async backend gives each process a task + mailbox.
        """

    def kill_node(self, node_id: str) -> None:
        """Fault-injection: fail a node (and whatever hosts its processes)."""
        self.transport.kill_node(node_id)

    def revive_node(self, node_id: str) -> None:
        """Fault-injection: recover a failed node."""
        self.transport.revive_node(node_id)

    def close(self) -> None:
        """Release real resources (tasks, loops).  Idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
