"""The asyncio backend: wall-clock execution with the sim as its oracle.

Every :class:`~repro.runtime.process.OperatorProcess` becomes an asyncio
task draining a bounded mailbox; every network message crosses a bounded
per-node queue drained by that node's pump task.  Full queues suspend the
producing coroutine (``await queue.put``), so backpressure propagates
upstream instead of dropping tuples.  Node death cancels the hosted
tasks; the heartbeat detector, checkpoint restore and shard-merge
punctuation all run unchanged on top.

**Epoch-barrier execution.**  Timers and message deliveries keep their
*logical* instants: the clock is the same deadline heap as the simulator
(:class:`AsyncClock` inherits :class:`~repro.network.simclock.SimClock`),
and the driver advances one deadline ("epoch") at a time —

1. optionally sleep on the wall clock until the epoch is due
   (``time_scale`` virtual seconds per wall second; ``None`` free-runs),
2. fire every callback scheduled at exactly that instant, in the
   simulator's (time, sequence) order,
3. flush the deliveries those callbacks staged into the bounded queues,
4. **drain**: await quiescence (every queue empty, every task idle)
   before the next epoch may begin.

Inside an epoch, deliveries and operator work run concurrently across
tasks in whatever order the event loop schedules them — that is the
genuinely asynchronous (and nondeterministic) part.  Across epochs,
``clock.now`` reports logical deadlines, so emission stamps, window
contents, flush instants, retry backoff times and QoS drop decisions are
identical to the simulator's.  The parity suite exploits exactly this
split: sink *multisets* match the sim byte for byte while sink *order*
may not.

Known caveat (documented in DESIGN.md §17): a timer scheduled at the
same float instant as a *local* (zero-delay) delivery runs before it
here, whereas the simulator interleaves both by sequence number.  None
of the shipped scenarios create that shape; the parity suite would catch
one that did.
"""

from __future__ import annotations

import asyncio
import heapq
import time as _wall
import weakref
from typing import Callable

from repro.errors import SimulationError
from repro.network.netsim import Message, NetworkSimulator
from repro.network.qos import QosPolicy
from repro.network.simclock import SimClock
from repro.network.topology import Topology
from repro.runtime.backends.base import ExecutionBackend

#: AsyncBackend instances not yet closed — the test plane's flake guard
#: sweeps this set to fail any test that leaks an event loop or tasks.
_LIVE_BACKENDS: "weakref.WeakSet[AsyncBackend]" = weakref.WeakSet()


def live_backends() -> "list[AsyncBackend]":
    """Unclosed AsyncBackend instances (for the pytest flake guard)."""
    return [backend for backend in _LIVE_BACKENDS if not backend.closed]


class AsyncClock(SimClock):
    """The simulator's deadline heap, fired by the backend's epoch driver.

    ``schedule`` / ``schedule_at`` / ``schedule_periodic`` / ``cancel``
    are inherited unchanged — including the (time, insertion-sequence)
    tie-break — which is what keeps same-instant timer ordering identical
    to the simulator's.  ``now`` reports the logical time of the current
    epoch, so stamps and window ends are deterministic even though the
    callbacks run against the wall clock.  ``run_until`` delegates to the
    owning backend, so ``stack.clock.run_until(...)`` transparently
    drives the event loop.
    """

    def __init__(self, start: float = 0.0) -> None:
        super().__init__(start)
        self._backend: "AsyncBackend | None" = None
        self._wall_epoch = _wall.monotonic()

    @property
    def wall_now(self) -> float:
        """Wall-clock seconds since this clock was created (monotonic).

        The tracer binds this as its wall source, so spans carry real
        timestamps next to their virtual ones (DESIGN.md §17).
        """
        return _wall.monotonic() - self._wall_epoch

    def run_until(self, time: float, max_events: int = 10_000_000) -> int:
        if self._backend is None:
            raise SimulationError("AsyncClock is not attached to a backend")
        return self._backend.run_until(time, max_events=max_events)

    def run(self, max_events: int = 10_000_000) -> int:
        raise SimulationError(
            "AsyncClock cannot free-run synchronously; use run_until"
        )

    def step(self) -> bool:
        raise SimulationError(
            "AsyncClock cannot step synchronously; use run_until"
        )

    # -- epoch-driver hooks (backend-internal) ------------------------------

    def _next_deadline(self) -> "float | None":
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def _run_epoch(self, deadline: float, budget: int) -> int:
        """Run every event due at exactly ``deadline`` in sequence order.

        Zero-delay events scheduled *by* those callbacks land at the same
        instant and are included (matching ``SimClock.run_until``).
        """
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        self._now = deadline
        while heap and heap[0][0] <= deadline:
            _, _, event = heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.done = True
            event.callback()
            executed += 1
            if executed >= budget:
                raise SimulationError(
                    f"epoch at t={deadline} exceeded {budget} events; "
                    f"likely a zero-delay rescheduling loop"
                )
        return executed

    def _finish(self, time: float) -> None:
        self._now = time


class AsyncTransport(NetworkSimulator):
    """The NetworkSimulator protocol over the backend's bounded queues.

    Routing, QoS admission, link accounting, traffic stats, tracing and
    every drop reason are inherited from the simulator; only
    :meth:`_schedule_delivery` differs — the message lands in the target
    node's bounded queue at its logical delivery instant and the node's
    pump task delivers it, dropping it with the simulator's exact reason
    string if the node died in flight.  Processes, the broker and the
    monitor run against this object unmodified.
    """

    backend_name = "async"

    def __init__(
        self,
        backend: "AsyncBackend",
        topology: "Topology | None" = None,
        clock: "AsyncClock | None" = None,
        default_qos: "QosPolicy | None" = None,
    ) -> None:
        super().__init__(topology=topology, clock=clock, default_qos=default_qos)
        self._backend = backend

    def _schedule_delivery(
        self,
        message: Message,
        delay: float,
        on_delivery: Callable[[object], None],
        on_drop: "Callable[[Message, str], None] | None",
    ) -> None:
        self.clock.schedule(
            delay,
            lambda: self._backend._stage_link(message, on_delivery, on_drop),
        )

    # -- process-host hooks (duck-typed by OperatorProcess) ------------------

    def process_moved(self, process) -> None:
        """A hosted process migrated; make sure it has a live task again."""
        self._backend._ensure_hosted(process)

    def unhost_process(self, process) -> None:
        """A process stopped; cancel its task and restore its methods."""
        self._backend._unhost(process)

    # -- fault injection -----------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        """Fail the node *and* cancel the tasks of processes hosted on it.

        The node's pump keeps running: messages already queued (or still
        in flight) reach ``_deliver`` and are dropped there with the
        simulator's "target node ... is down" reason, so the broker's
        retry/dead-letter path behaves identically on both backends.
        """
        super().kill_node(node_id)
        self._backend._cancel_node_hosts(node_id)

    def revive_node(self, node_id: str) -> None:
        super().revive_node(node_id)
        self._backend._restart_node_hosts(node_id)


class _ProcessHost:
    """One hosted process: a bounded mailbox drained by one asyncio task."""

    __slots__ = ("backend", "process", "inbox", "task", "alive",
                 "receive", "receive_batch")

    def __init__(self, backend: "AsyncBackend", process, capacity: int) -> None:
        self.backend = backend
        self.process = process
        self.inbox: "asyncio.Queue" = asyncio.Queue(maxsize=capacity)
        self.task: "asyncio.Task | None" = None
        self.alive = False
        # Original bound methods; the instance attributes installed by
        # host_process shadow them so wiring closures (which look the
        # method up late) enqueue into the mailbox instead.
        self.receive = process.receive
        self.receive_batch = process.receive_batch

    def submit(self, tuple_, port: int = 0) -> None:
        self.backend._stage_mail(self, (False, tuple_, port))

    def submit_batch(self, batch, port: int = 0) -> None:
        self.backend._stage_mail(self, (True, batch, port))


class _NodePump:
    """One network node's bounded link queue and its pump task."""

    __slots__ = ("queue", "task")

    def __init__(self, capacity: int) -> None:
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=capacity)
        self.task: "asyncio.Task | None" = None


class AsyncBackend(ExecutionBackend):
    """Wall-clock asyncio execution (see the module docstring).

    Args:
        topology: network topology (defaults to an empty one).
        default_qos: transport-wide QoS policy.
        time_scale: virtual seconds per wall second.  ``None`` (default)
            free-runs — epochs fire as fast as quiescence allows; a
            positive value paces each epoch against the wall clock
            (``time_scale=60`` runs a virtual minute per real second).
        link_capacity: bound of each per-node network queue.
        mailbox_capacity: bound of each hosted process's mailbox.
        max_wall: optional wall-clock budget (seconds) per ``run_until``
            call; exceeding it raises instead of hanging — the test
            plane's no-hang guarantee.
    """

    name = "async"

    def __init__(
        self,
        topology: "Topology | None" = None,
        default_qos: "QosPolicy | None" = None,
        *,
        time_scale: "float | None" = None,
        link_capacity: int = 256,
        mailbox_capacity: int = 256,
        max_wall: "float | None" = None,
    ) -> None:
        if time_scale is not None and time_scale <= 0:
            time_scale = None  # 0 / negative: free-run (the CLI default)
        self.time_scale = time_scale
        self.link_capacity = link_capacity
        self.mailbox_capacity = mailbox_capacity
        self.max_wall = max_wall
        self.clock = AsyncClock()
        self.clock._backend = self
        self.transport = AsyncTransport(
            self, topology=topology, clock=self.clock, default_qos=default_qos
        )
        self.topology = self.transport.topology
        self.closed = False
        #: Times a producer found its target queue full and had to wait —
        #: the observable proof that backpressure stalls instead of drops.
        self.backpressure_stalls = 0
        self._loop = asyncio.new_event_loop()
        self._pumps: dict[str, _NodePump] = {}
        self._hosts: dict[int, _ProcessHost] = {}
        #: Deliveries whose logical instant arrived this epoch, awaiting
        #: their queue put (staged by clock callbacks, flushed by the
        #: driver so the put can suspend on a full queue).
        self._staged_links: list = []
        #: Mailbox submissions staged by patched ``receive`` calls inside
        #: a synchronous dispatch; the enclosing coroutine awaits them.
        self._staged_mail: list = []
        self._inflight = 0
        self._quiet: "asyncio.Event | None" = None
        self._reap: "list[asyncio.Task]" = []
        self._wall_base: "float | None" = None
        self._logical_base = 0.0
        _LIVE_BACKENDS.add(self)

    # -- process hosting -----------------------------------------------------

    def host_process(self, process) -> None:
        """Give ``process`` a mailbox and an asyncio task.

        ``process.receive`` / ``receive_batch`` are shadowed by instance
        attributes that enqueue into the mailbox; the task dispatches via
        the original bound methods, so liveness checks, work accounting
        and forwarding are untouched.
        """
        key = id(process)
        if key in self._hosts:
            return
        host = _ProcessHost(self, process, self.mailbox_capacity)
        self._hosts[key] = host
        process.receive = host.submit
        process.receive_batch = host.submit_batch
        self._start_host(host)

    def _start_host(self, host: _ProcessHost) -> None:
        host.alive = True
        host.task = self._loop.create_task(self._host_loop(host))

    def _ensure_hosted(self, process) -> None:
        host = self._hosts.get(id(process))
        if host is not None and not host.alive:
            self._start_host(host)

    def _unhost(self, process) -> None:
        host = self._hosts.pop(id(process), None)
        if host is None:
            return
        self._kill_host(host)
        for name in ("receive", "receive_batch"):
            try:
                delattr(process, name)
            except AttributeError:
                pass

    def _kill_host(self, host: _ProcessHost) -> None:
        host.alive = False
        if host.task is not None:
            host.task.cancel()
            self._reap.append(host.task)
            host.task = None
        # Mailbox tuples die with the task: they were delivered but not
        # yet processed — the same post-delivery loss the checkpoint
        # recovery bound documents for the simulator.
        while not host.inbox.empty():
            host.inbox.get_nowait()
            self._dec()

    def _cancel_node_hosts(self, node_id: str) -> None:
        for host in self._hosts.values():
            if host.process.node_id == node_id and host.alive:
                self._kill_host(host)

    def _restart_node_hosts(self, node_id: str) -> None:
        for host in self._hosts.values():
            if host.process.node_id == node_id and not host.alive:
                self._start_host(host)

    # -- staging / quiescence accounting -------------------------------------

    def _stage_link(self, message, on_delivery, on_drop) -> None:
        self._staged_links.append((message, on_delivery, on_drop))

    def _stage_mail(self, host: _ProcessHost, item) -> None:
        if not host.alive:
            return  # its node died; the simulator loses these tuples too
        self._staged_mail.append((host, item))

    def _dec(self) -> None:
        self._inflight -= 1
        if self._inflight == 0 and self._quiet is not None:
            self._quiet.set()

    async def _put(self, queue: "asyncio.Queue", item) -> None:
        """Bounded put, counted in flight from before the (possible) wait.

        Counting first means the drain barrier can never observe zero
        while a put is suspended on a full queue.
        """
        if queue.full():
            self.backpressure_stalls += 1
        self._inflight += 1
        try:
            await queue.put(item)
        except asyncio.CancelledError:
            self._dec()
            raise

    async def _flush_mail(self) -> None:
        staged = self._staged_mail
        if not staged:
            return
        self._staged_mail = []
        for host, item in staged:
            await self._put(host.inbox, item)

    async def _flush_staged(self) -> None:
        while self._staged_links or self._staged_mail:
            links = self._staged_links
            if links:
                self._staged_links = []
                for message, on_delivery, on_drop in links:
                    pump = self._node_pump(message.target)
                    await self._put(pump.queue, (message, on_delivery, on_drop))
            await self._flush_mail()

    async def _drain(self) -> None:
        while self._inflight > 0:
            self._quiet = asyncio.Event()
            if self._inflight > 0:
                await self._quiet.wait()
        self._quiet = None

    # -- the tasks -----------------------------------------------------------

    def _node_pump(self, node_id: str) -> _NodePump:
        pump = self._pumps.get(node_id)
        if pump is None:
            pump = self._pumps[node_id] = _NodePump(self.link_capacity)
            pump.task = self._loop.create_task(self._pump_loop(pump))
        return pump

    async def _pump_loop(self, pump: _NodePump) -> None:
        queue = pump.queue
        transport = self.transport
        while True:
            message, on_delivery, on_drop = await queue.get()
            try:
                # Inherited delivery: liveness drop, stats, tracer, then
                # the callback — which may stage mailbox submissions that
                # this coroutine awaits (real backpressure) right after.
                transport._deliver(message, on_delivery, on_drop)
                await self._flush_mail()
            finally:
                self._dec()

    async def _host_loop(self, host: _ProcessHost) -> None:
        inbox = host.inbox
        while True:
            is_batch, payload, port = await inbox.get()
            try:
                if is_batch:
                    host.receive_batch(payload, port)
                else:
                    host.receive(payload, port)
                await self._flush_mail()
            finally:
                self._dec()

    # -- the epoch driver ----------------------------------------------------

    async def _pace(self, deadline: float) -> None:
        scale = self.time_scale
        if scale is None:
            return
        if self._wall_base is None:
            self._wall_base = self._loop.time()
            self._logical_base = deadline
        target = self._wall_base + (deadline - self._logical_base) / scale
        delay = target - self._loop.time()
        if delay > 0:
            await asyncio.sleep(delay)

    async def _reap_cancelled(self) -> None:
        tasks, self._reap = self._reap, []
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _advance(self, until: float, max_events: int) -> int:
        clock = self.clock
        executed = 0
        wall_start = self._loop.time()
        while True:
            if self._reap:
                await self._reap_cancelled()
            deadline = clock._next_deadline()
            if deadline is None or deadline > until:
                break
            await self._pace(deadline)
            executed += clock._run_epoch(deadline, max_events - executed)
            await self._flush_staged()
            await self._drain()
            if (
                self.max_wall is not None
                and self._loop.time() - wall_start > self.max_wall
            ):
                raise SimulationError(
                    f"async run_until({until}) exceeded the "
                    f"{self.max_wall}s wall budget at t={clock.now}"
                )
        clock._finish(until)
        return executed

    def run_until(self, time: float, max_events: int = 10_000_000) -> int:
        if self.closed:
            raise SimulationError("backend is closed")
        if time < self.clock.now:
            raise SimulationError(
                f"cannot run backwards to {time} from {self.clock.now}"
            )
        return self._loop.run_until_complete(self._advance(time, max_events))

    # -- teardown / the flake-guard surface ----------------------------------

    def pending_tasks(self) -> "list[asyncio.Task]":
        """Unfinished tasks on this backend's loop (empty once closed)."""
        if self.closed:
            return []
        return [t for t in asyncio.all_tasks(self._loop) if not t.done()]

    def close(self) -> None:
        """Cancel every task and close the event loop.  Idempotent."""
        if self.closed:
            return
        pending = self.pending_tasks()
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()
        self._pumps.clear()
        self._hosts.clear()
        self._staged_links.clear()
        self._staged_mail.clear()
        self.closed = True
