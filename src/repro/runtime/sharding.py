"""Shard groups: the runtime view of one sharded blocking operator.

A :class:`ShardGroup` bundles the N member :class:`OperatorProcess`es a
conceptual blocking node was split into, the key attributes that drive
partitioning (per input port — a join partitions port 0 on its left key
and port 1 on its right key), and the downstream merge process.  Upstream
operator processes route to the *group*: ``Route.target`` may be a
ShardGroup, and the forwarding layer resolves the owning member per tuple
via the same :func:`~repro.streams.shard.partition_index` the broker-side
:class:`~repro.pubsub.partition.ShardRouter` uses — one partitioner
contract everywhere, so a key always lands on the same shard no matter
which path carried it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.streams.shard import ShardAssignment, partition_index
from repro.streams.tuple import SensorTuple, TupleBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.process import OperatorProcess


@dataclass
class ShardGroup:
    """The deployed shards (plus merge stage) of one conceptual service."""

    service: str
    #: Member processes, index == shard index.
    members: "list[OperatorProcess]" = field(default_factory=list)
    #: Partitioning key attributes per input port; a port beyond the
    #: tuple's length uses the last entry (single-port operators).
    keys_by_port: tuple[tuple[str, ...], ...] = ((),)
    merge: "OperatorProcess | None" = None
    #: Elastic routing overlay shared with the broker-side ShardRouter;
    #: None on static deployments (the pure-hash fast path).
    assignment: "ShardAssignment | None" = None

    def keys_for_port(self, port: int) -> tuple[str, ...]:
        return self.keys_by_port[min(port, len(self.keys_by_port) - 1)]

    def member_for(self, tuple_: SensorTuple, port: int = 0) -> "OperatorProcess":
        values = tuple(tuple_.get(key) for key in self.keys_for_port(port))
        if self.assignment is not None:
            return self.members[self.assignment.index_for(values)]
        return self.members[partition_index(values, len(self.members))]

    def split(
        self, tuples: "Sequence[SensorTuple]", port: int = 0
    ) -> "list[tuple[OperatorProcess, TupleBatch]]":
        """Bucket a run of tuples into per-member batches, order-preserving."""
        keys = self.keys_for_port(port)
        count = len(self.members)
        assignment = self.assignment
        buckets: dict[int, list[SensorTuple]] = {}
        for tuple_ in tuples:
            values = tuple(tuple_.get(key) for key in keys)
            index = (assignment.index_for(values) if assignment is not None
                     else partition_index(values, count))
            buckets.setdefault(index, []).append(tuple_)
        return [
            (self.members[index], TupleBatch.of(buckets[index]))
            for index in sorted(buckets)
        ]

    def processes(self) -> "list[OperatorProcess]":
        out = list(self.members)
        if self.merge is not None:
            out.append(self.merge)
        return out
