"""Elastic sharding: the load-feedback rebalance control loop.

BENCH_5's finding motivates this module: key-hashed shards scale
near-linearly on uniform keys but collapse to ~1.25x when one hot key
pins 80% of the traffic — the paper's SCN executor promises to "migrate
assignments as load changes", and this is that loop, in the monitor →
policy → executor shape (DESIGN.md §13):

- :class:`ShardLoadMonitor` samples per-shard input counters (and the
  merge stage's always-on flush-entry totals, the observable behind the
  ``shard_flush_entries_total`` metric) over a sliding window of epochs;
- :class:`RebalancePolicy` is a *pure* decision function over those
  samples: it detects skew via a configurable imbalance ratio, requires
  the skew to persist (**hysteresis**) before acting, and enforces a
  **cooldown** after every action so the loop can never flap;
- :class:`RebalanceExecutor` actuates a decision at the next epoch
  boundary — the punctuation barrier: the donor has flushed through T,
  nothing for T+1 has been emitted, so flipping the shared
  :class:`~repro.streams.shard.ShardAssignment`, extracting the key's
  window slice from the donor, adopting it on the recipient, and
  checkpointing both is atomic with respect to envelopes.  The
  :class:`~repro.streams.shard.ShardMergeOperator` sees the same epochs
  with the same entries, so its renumbering is unchanged.

For a single hot key, migration cannot help (the key is indivisible by
hashing) — the executor instead **splits** it: the assignment routes the
key round-robin across replica shards, each replica emits partial
accumulators with its flush entries, and the merge folds the partials
back into the one tuple the unsharded operator would have emitted.
Only operators whose spec declares ``combine_safe()`` may be split
(grouped aggregations fold; joins do not — pair completeness breaks when
one side's key is sprayed).

Everything here is driven by the deterministic virtual clock: same seed,
same decisions, same migration event log, byte-identical output.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import StreamLoaderError

#: Handoffs are scheduled this far after an epoch boundary so they run
#: after the boundary's flush event *and* its same-time envelope
#: deliveries, regardless of heap insertion order.
BOUNDARY_EPSILON = 1e-6


@dataclass(frozen=True)
class RebalanceConfig:
    """Knobs for the control loop (CLI: ``--rebalance``)."""

    #: max/mean shard load that counts as skewed (1.0 = balanced).
    imbalance_ratio: float = 1.5
    #: consecutive skewed epochs required before acting.
    hysteresis: int = 2
    #: epochs to stay quiet after an action.
    cooldown_epochs: int = 4
    #: sliding window of epoch samples the loads are summed over.
    window_epochs: int = 4
    #: allow hot-key splitting (CLI: ``--split-hot-keys``).
    split_hot_keys: bool = False
    #: replicas per split key; 0 means every shard.
    split_replicas: int = 0


@dataclass(frozen=True)
class RebalanceDecision:
    """One action the policy asks the executor to perform."""

    kind: str  # "migrate" | "split"
    values: tuple
    donor: int
    recipient: "int | None" = None
    replicas: tuple[int, ...] = ()
    reason: str = ""


class ShardLoadMonitor:
    """Sliding-epoch view of per-shard load for one shard group.

    Each :meth:`sample` records the delta of every member's ``tuples_in``
    counter since the previous sample (one *epoch* of load).  The policy
    reads :meth:`epoch_loads` — the per-shard sums over the last
    ``window_epochs`` samples — so a single noisy epoch cannot trigger a
    move on its own.  The merge's ``entry_totals`` (flush entries per
    shard, the ``shard_flush_entries_total`` signal) ride along in
    :meth:`entry_loads` for reporting: entries count *groups*, which stay
    balanced under a single hot key, so tuple deltas are the actuating
    signal and entry totals the corroborating one.
    """

    def __init__(self, group, window_epochs: int = 4,
                 lag_provider=None) -> None:
        if window_epochs < 1:
            raise StreamLoaderError(
                f"load window must cover at least one epoch: {window_epochs}"
            )
        self.group = group
        self.window: "deque[list[int]]" = deque(maxlen=window_epochs)
        self._last_tuples = [0] * len(group.members)
        self._last_entries = [0] * len(group.members)
        #: Optional callable returning per-member watermark lag (seconds),
        #: wired by the executor when the latency plane is installed.  A
        #: lagging shard is preferred as donor on load ties — it is the
        #: one actually holding the flow's watermark back.
        self.lag_provider = lag_provider

    def sample(self) -> list[int]:
        """Record one epoch of per-shard input-tuple deltas."""
        loads = []
        for index, member in enumerate(self.group.members):
            total = member.operator.stats.tuples_in
            loads.append(total - self._last_tuples[index])
            self._last_tuples[index] = total
        self.window.append(loads)
        return loads

    def epoch_loads(self) -> list[int]:
        """Per-shard load summed over the sliding window."""
        count = len(self.group.members)
        sums = [0] * count
        for epoch in self.window:
            for index, load in enumerate(epoch):
                sums[index] += load
        return sums

    def entry_loads(self) -> list[int]:
        """Delta of the merge's per-shard flush-entry totals."""
        merge = self.group.merge
        if merge is None:
            return [0] * len(self.group.members)
        totals = merge.operator.entry_totals
        deltas = [
            total - last for total, last in zip(totals, self._last_entries)
        ]
        self._last_entries = list(totals)
        return deltas

    def shard_lags(self) -> list[float]:
        """Per-shard watermark lag (all zeros without a provider)."""
        count = len(self.group.members)
        if self.lag_provider is None:
            return [0.0] * count
        lags = list(self.lag_provider())
        if len(lags) != count:
            raise StreamLoaderError(
                f"lag provider returned {len(lags)} values for "
                f"{count} shards"
            )
        return [float(lag) for lag in lags]

    def imbalance(self) -> float:
        """Max/mean windowed load (1.0 = balanced, 0 traffic = 1.0)."""
        loads = self.epoch_loads()
        total = sum(loads)
        if total <= 0:
            return 1.0
        return max(loads) * len(loads) / total

    def hot_keys(self, shard: int) -> "list[tuple[tuple, int]]":
        """A shard's key loads, heaviest first (deterministic ties)."""
        loads = self.group.members[shard].operator.key_loads
        return sorted(loads.items(), key=lambda item: (-item[1], repr(item[0])))

    def reset_key_loads(self) -> None:
        """Forget per-key history (after an action changes routing)."""
        for member in self.group.members:
            member.operator.key_loads.clear()


class RebalancePolicy:
    """Pure skew detector: loads in, at most one decision out.

    State is two small counters (skew streak, cooldown) so unit tests can
    drive it with synthetic load vectors.  Guarantees:

    - **hysteresis**: borderline skew that flickers above/below the ratio
      never acts — the streak resets on every balanced observation;
    - **cooldown**: after a decision, ``cooldown_epochs`` observations
      are ignored, bounding action frequency;
    - a persistent step-change produces exactly one decision, because the
      action itself rebalances the loads and the streak restarts.
    """

    def __init__(self, config: "RebalanceConfig | None" = None) -> None:
        self.config = config or RebalanceConfig()
        self._streak = 0
        self._cooldown = 0

    def observe(
        self,
        loads: "list[int] | list[float]",
        hot_keys: "list[tuple[tuple, int]]",
        combine_safe: bool = False,
        already_split: "set[tuple] | frozenset" = frozenset(),
    ) -> "RebalanceDecision | None":
        """One epoch's verdict.

        ``loads`` are the windowed per-shard loads; ``hot_keys`` the
        donor candidate's per-key loads, heaviest first (the caller reads
        them from :meth:`ShardLoadMonitor.hot_keys` for the argmax
        shard).  Returns None or one decision.
        """
        config = self.config
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        total = sum(loads)
        if total <= 0 or len(loads) < 2:
            self._streak = 0
            return None
        mean = total / len(loads)
        donor = max(range(len(loads)), key=lambda i: (loads[i], -i))
        if loads[donor] / mean < config.imbalance_ratio:
            self._streak = 0
            return None
        self._streak += 1
        if self._streak < config.hysteresis:
            return None
        recipient = min(range(len(loads)), key=lambda i: (loads[i], i))
        decision = self._decide(
            loads, donor, recipient, mean, hot_keys, combine_safe,
            already_split,
        )
        if decision is not None:
            self._streak = 0
            self._cooldown = config.cooldown_epochs
        return decision

    def _decide(
        self, loads, donor, recipient, mean, hot_keys, combine_safe,
        already_split,
    ) -> "RebalanceDecision | None":
        candidates = [
            (values, load) for values, load in hot_keys
            if values not in already_split
        ]
        if not candidates:
            return None
        values, key_load = candidates[0]
        donor_load = loads[donor]
        # Moving the key helps only if the donor actually gets lighter
        # than the recipient gets heavier; a key that *is* the skew
        # (most of the donor's load) just moves the hot spot.
        migration_helps = loads[recipient] + key_load < donor_load
        if migration_helps and donor_load - key_load >= mean * 0.5:
            return RebalanceDecision(
                kind="migrate", values=values, donor=donor,
                recipient=recipient,
                reason=(
                    f"imbalance {donor_load / mean:.2f} >= "
                    f"{self.config.imbalance_ratio}: move {key_load} of "
                    f"{donor_load} to shard {recipient}"
                ),
            )
        if combine_safe and self.config.split_hot_keys:
            count = len(loads)
            replicas = self.config.split_replicas or count
            replica_ids = tuple(range(min(replicas, count)))
            return RebalanceDecision(
                kind="split", values=values, donor=donor,
                replicas=replica_ids,
                reason=(
                    f"hot key carries {key_load} of the donor's "
                    f"{donor_load}: spray across {len(replica_ids)} shards"
                ),
            )
        if migration_helps:
            return RebalanceDecision(
                kind="migrate", values=values, donor=donor,
                recipient=recipient,
                reason=(
                    f"imbalance {donor_load / mean:.2f}: move {key_load} "
                    f"to shard {recipient} (split unavailable)"
                ),
            )
        return None


class RebalanceExecutor:
    """Actuates decisions at epoch boundaries (the punctuation barrier).

    The actual handoff (:meth:`migrate_now`) runs ``BOUNDARY_EPSILON``
    after a flush boundary, so within one virtual instant the donor has
    already emitted its epoch-T envelope and no T+1 state exists in
    flight.  Handoff order matters for crash safety:

    1. flip the shared assignment (new tuples route to the recipient);
    2. disown the key on the donor (stragglers re-route, never cache);
    3. extract the key's window slice from the donor;
    4. adopt it on the recipient;
    5. checkpoint donor then recipient, so any later recovery replays
       a post-migration world (the donor's snapshot carries the
       disowned-set, the recipient's the adopted state).

    If either node is down at the boundary the action aborts (recorded as
    ``aborted``) — the PR 1 recovery path owns that window, and the
    policy will simply decide again after its cooldown.
    """

    def __init__(self, group, assignment, netsim, service: str,
                 interval: float, monitor=None) -> None:
        self.group = group
        self.assignment = assignment
        self.netsim = netsim
        self.service = service
        self.interval = interval
        self.monitor = monitor
        #: keys already split (never split or migrate twice).
        self.split_keys: set[tuple] = set()
        self.migrations_done = 0

    # -- scheduling -----------------------------------------------------------

    def next_boundary(self, now: float) -> float:
        """The next flush-epoch boundary strictly after ``now``."""
        return (math.floor(now / self.interval) + 1) * self.interval

    def schedule(self, decision: RebalanceDecision) -> float:
        """Queue a decision for the next epoch boundary; returns when."""
        boundary = self.next_boundary(self.netsim.clock.now)
        at = boundary + BOUNDARY_EPSILON
        if decision.kind == "split":
            self.netsim.clock.schedule_at(
                at, lambda: self.split_now(
                    decision.values, decision.replicas, decision.reason
                )
            )
        else:
            self.netsim.clock.schedule_at(
                at, lambda: self.migrate_now(
                    decision.values, decision.donor, decision.recipient,
                    decision.reason,
                )
            )
        return at

    def schedule_migration(self, values, donor: int, recipient: int,
                           reason: str = "forced") -> float:
        """Public hook for tests/benchmarks: force one migration at the
        next epoch boundary, bypassing the policy."""
        return self.schedule(RebalanceDecision(
            kind="migrate", values=tuple(values), donor=donor,
            recipient=recipient, reason=reason,
        ))

    def schedule_split(self, values, replicas, reason: str = "forced") -> float:
        """Public hook: force one hot-key split at the next boundary."""
        return self.schedule(RebalanceDecision(
            kind="split", values=tuple(values), donor=0,
            replicas=tuple(replicas), reason=reason,
        ))

    # -- actuation ------------------------------------------------------------

    def _record(self, key: tuple, kind: str, from_shard: int,
                to_shards, reason: str) -> None:
        if self.monitor is not None:
            self.monitor.record_migration(
                self.service, repr(key), kind, from_shard,
                tuple(to_shards), reason,
            )

    def _node_up(self, process) -> bool:
        node = self.netsim.topology.node(process.node_id)
        return node is not None and node.up

    def migrate_now(self, values, donor: int, recipient: int,
                    reason: str = "") -> bool:
        """Perform one key handoff now (call only at a boundary)."""
        key = tuple(values)
        if key in self.split_keys:
            return False
        members = self.group.members
        donor_proc = members[donor]
        recipient_proc = members[recipient]
        if not (self._node_up(donor_proc) and self._node_up(recipient_proc)):
            self._record(key, "aborted", donor, (recipient,),
                         f"{reason}; node down")
            return False
        self.assignment.migrate(key, recipient)
        donor_adapter = donor_proc.operator
        recipient_adapter = recipient_proc.operator
        donor_adapter.disown(key)
        state = donor_adapter.extract_partition(key, self.group.keys_by_port)
        recipient_adapter.adopt_partition(state)
        # The key may be coming home: clear any stale disowned marker or
        # the recipient would bounce its own tuples back out forever.
        recipient_adapter.reclaim(key)
        donor_proc.checkpoint_now()
        recipient_proc.checkpoint_now()
        self.migrations_done += 1
        self._record(key, "migrate", donor, (recipient,), reason)
        return True

    def split_now(self, values, replicas, reason: str = "") -> bool:
        """Split one hot key across replica shards now.

        The key's current owner keeps its cached slice (it is one of the
        replicas); from the next tuple on, arrivals round-robin and every
        replica's flush entry for the key carries partial accumulators
        for the merge's combine fold.
        """
        key = tuple(values)
        if key in self.split_keys:
            return False
        replicas = tuple(replicas) or tuple(range(len(self.group.members)))
        members = self.group.members
        owner = self.assignment.owner_of(key)
        if not all(self._node_up(members[index]) for index in replicas):
            self._record(key, "aborted", owner if owner is not None else -1,
                         replicas, f"{reason}; node down")
            return False
        self.assignment.split(key, replicas)
        order_key = str(key[0]) if len(key) == 1 else str(key)
        for index in replicas:
            members[index].operator.mark_split(order_key)
        if owner is not None and owner not in replicas:
            # The old owner drains its slice with partial entries too.
            members[owner].operator.mark_split(order_key)
        for index in sorted(set(replicas) | ({owner} - {None})):
            members[index].checkpoint_now()
        self.split_keys.add(key)
        self._record(key, "split", owner if owner is not None else -1,
                     replicas, reason)
        return True


class ShardRebalancer:
    """One shard group's control loop: monitor → policy → executor.

    Ticks on the virtual clock at the operator's flush interval, offset
    by half a phase so sampling never shares a timestamp with a flush.
    """

    def __init__(self, group, assignment, netsim, service: str,
                 interval: float, config: "RebalanceConfig | None" = None,
                 monitor=None, combine_safe: bool = False) -> None:
        self.config = config or RebalanceConfig()
        self.group = group
        self.combine_safe = combine_safe
        self.load_monitor = ShardLoadMonitor(
            group, window_epochs=self.config.window_epochs
        )
        self.policy = RebalancePolicy(self.config)
        self.executor = RebalanceExecutor(
            group, assignment, netsim, service, interval, monitor=monitor,
        )
        self.netsim = netsim
        self.interval = interval
        self._cancel = None

    def start(self) -> None:
        if self._cancel is None:
            self._cancel = self.netsim.clock.schedule_periodic(
                self.interval, self.tick, start_delay=self.interval * 0.5
            )

    def stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def tick(self) -> None:
        self.load_monitor.sample()
        self.load_monitor.entry_loads()
        loads = self.load_monitor.epoch_loads()
        if not loads:
            return
        # Watermark lag breaks load ties: with the latency plane
        # installed, the shard holding the flow's watermark back donates
        # first.  Without it every lag is 0.0 and the choice is unchanged.
        lags = self.load_monitor.shard_lags()
        donor = max(range(len(loads)), key=lambda i: (loads[i], lags[i], -i))
        decision = self.policy.observe(
            loads,
            self.load_monitor.hot_keys(donor),
            combine_safe=self.combine_safe,
            already_split=self.executor.split_keys,
        )
        if decision is not None:
            self.executor.schedule(decision)
            self.load_monitor.reset_key_loads()
