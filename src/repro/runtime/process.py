"""Operator processes: a runtime operator hosted on a network node.

"For the execution, the sources are bound to specific sensors handled by
the network nodes, and operations located on the machines that, depending
on workload, apply the logic specified in the conceptual dataflow."

An :class:`OperatorProcess` wraps one runtime operator, receives tuples
(delivered by the pub-sub layer or by upstream processes over the
simulated network), charges the hosting node for the work, and forwards
emissions along its routes.  Moving a process to another node is a single
re-registration — the forwarding layer picks up the new location on the
next message.

Fault tolerance hooks:

- **heartbeats** — once armed (the monitor does this in ``watch``), the
  process emits a liveness beat on the sim clock every
  ``heartbeat_interval`` seconds; a dead node emits nothing, which is how
  the monitor's failure detector notices it.
- **checkpoints** — once armed (the executor does this for blocking
  operators), the operator's state is snapshotted every
  ``checkpoint_interval`` seconds; after a node death the executor
  re-places the process and restores the last snapshot, bounding loss to
  the tuples absorbed since it was taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DeploymentError
from repro.network.netsim import NetworkSimulator
from repro.network.qos import QosPolicy
from repro.obs.lineage import tuple_key
from repro.runtime.sharding import ShardGroup
from repro.runtime.stats import RateEstimator
from repro.streams.base import Operator
from repro.streams.tuple import (
    SensorTuple,
    TupleBatch,
    estimate_batch_size_bytes,
    estimate_size_bytes,
)


@dataclass(frozen=True)
class Route:
    """One downstream destination of a process's output.

    ``target`` is usually a single process; for a sharded consumer it is
    the whole :class:`~repro.runtime.sharding.ShardGroup`, and the
    forwarding layer resolves the owning member per tuple by key hash.
    """

    target: "OperatorProcess | ShardGroup"
    port: int = 0
    qos: "QosPolicy | None" = None


class OperatorProcess:
    """A deployed operator (or sink) running on a node.

    >>> process = OperatorProcess("filter-1", operator, "edge-0", netsim)
    ... # doctest: +SKIP
    """

    def __init__(
        self,
        process_id: str,
        operator: Operator,
        node_id: str,
        netsim: NetworkSimulator,
        obs: "object | None" = None,
    ) -> None:
        self.process_id = process_id
        self.operator = operator
        self.node_id = node_id
        self.netsim = netsim
        #: Observability bundle (``repro.obs.Observability``); spans are
        #: recorded only for tuples already carrying a trace context.
        self.obs = obs
        self._tuples_counter = None
        #: Latency-plane probe (``repro.obs.latency.ProcessProbe``);
        #: installed by the executor only when the plane exists, so the
        #: per-tuple cost of an absent SLO plane is one ``is None`` check
        #: inside the existing ``obs is not None`` branch.
        self._probe = None
        if obs is not None and not getattr(operator, "owns_tuple_metrics", False):
            # A fused chain reports ``process_tuples_total`` under its
            # *member* process labels (``FusedOperator.bind_obs``), not a
            # collapsed ``a+b+c`` label — per-operator counts must
            # survive the process renaming.
            self._tuples_counter = obs.metrics.counter(
                "process_tuples_total",
                "tuples received by an operator process",
                process=process_id,
            )
        self.routes: list[Route] = []
        self.rate = RateEstimator()
        #: Deploy-time demand estimate (cost-units/s) the placement was
        #: booked with.  Floors the demand this process re-registers when
        #: it moves: the live rate estimate reads 0.0 until the monitor's
        #: first sample, and booking 0.0 on the new node double-books its
        #: capacity for every later placement decision.
        self.placement_demand = 0.0
        self._timer_cancel: "Callable[[], None] | None" = None
        self._started = False
        self._stopped = False
        self._heartbeat_sink: "Callable[[str, str, float], None] | None" = None
        self._heartbeat_interval: "float | None" = None
        self._heartbeat_cancel: "Callable[[], None] | None" = None
        self._checkpoint_interval: "float | None" = None
        self._checkpoint_cancel: "Callable[[], None] | None" = None
        #: (virtual time, operator state) of the last snapshot, if any.
        self.last_checkpoint: "tuple[float, dict] | None" = None
        self.restores = 0
        #: Set once this process has received a batch; downstream timer
        #: flushes then forward as batches too, keeping the whole chain on
        #: the amortized path without changing batch=1 behaviour at all.
        self._batching = False
        #: Hosting node object, kept in step with ``node_id`` by
        #: :meth:`move_to` — the data path checks liveness and charges
        #: work per tuple, and a topology lookup per reading is pure
        #: overhead.  Node objects are stable: fail/recover mutate them
        #: in place.
        self._node = netsim.topology.node(node_id)
        self._node.register_process(process_id)

    # -- wiring ------------------------------------------------------------

    def add_route(self, target: "OperatorProcess | ShardGroup", port: int = 0,
                  qos: "QosPolicy | None" = None) -> None:
        self.routes.append(Route(target=target, port=port, qos=qos))

    def start(self) -> None:
        """Arm the flush timer for blocking operators."""
        if self._started:
            raise DeploymentError(f"process {self.process_id!r} already started")
        self._started = True
        self._stopped = False
        if self.operator.is_blocking:
            assert self.operator.interval is not None
            self._timer_cancel = self.netsim.clock.schedule_periodic(
                self.operator.interval, self._fire_timer
            )
        if self._heartbeat_interval is not None and self._heartbeat_cancel is None:
            self._arm_heartbeats()
        if self._checkpoint_interval is not None and self._checkpoint_cancel is None:
            self._arm_checkpoints()

    def stop(self) -> None:
        """Stop timers and release the node registration."""
        if self._timer_cancel is not None:
            self._timer_cancel()
            self._timer_cancel = None
        if self._heartbeat_cancel is not None:
            self._heartbeat_cancel()
            self._heartbeat_cancel = None
        if self._checkpoint_cancel is not None:
            self._checkpoint_cancel()
            self._checkpoint_cancel = None
        node = self.netsim.topology.node(self.node_id)
        if self.process_id in node.processes:
            node.unregister_process(self.process_id)
        self._started = False
        self._stopped = True
        unhost = getattr(self.netsim, "unhost_process", None)
        if unhost is not None:
            unhost(self)

    def move_to(self, node_id: str) -> None:
        """Migrate this process to another node (SCN decision applied)."""
        if node_id == self.node_id:
            return
        old = self.netsim.topology.node(self.node_id)
        new = self.netsim.topology.node(node_id)
        demand = max(
            self.rate.rate * self.operator.cost_per_tuple,
            self.placement_demand,
        )
        if self.process_id in old.processes:
            old.unregister_process(self.process_id)
        new.register_process(self.process_id, demand)
        self.node_id = node_id
        self._node = new
        moved = getattr(self.netsim, "process_moved", None)
        if moved is not None:
            moved(self)

    # -- fault tolerance ---------------------------------------------------------

    def enable_heartbeats(
        self, sink: Callable[[str, str, float], None], interval: float
    ) -> None:
        """Emit liveness to ``sink(process_id, node_id, now)`` periodically.

        Armed immediately when the process is already started, otherwise on
        :meth:`start`.  A process on a dead node stays silent — that
        silence *is* the failure signal.
        """
        self._heartbeat_sink = sink
        self._heartbeat_interval = float(interval)
        if self._started and self._heartbeat_cancel is None:
            self._arm_heartbeats()

    def _arm_heartbeats(self) -> None:
        assert self._heartbeat_interval is not None
        self._heartbeat_cancel = self.netsim.clock.schedule_periodic(
            self._heartbeat_interval, self._emit_heartbeat, start_delay=0.0
        )

    def _emit_heartbeat(self) -> None:
        if self._stopped or self._heartbeat_sink is None:
            return
        if not self.netsim.topology.node(self.node_id).up:
            return  # a dead node cannot prove liveness
        self._heartbeat_sink(self.process_id, self.node_id, self.netsim.clock.now)

    def enable_checkpoints(self, interval: float) -> None:
        """Snapshot the operator's state every ``interval`` seconds."""
        self._checkpoint_interval = float(interval)
        if self._started and self._checkpoint_cancel is None:
            self._arm_checkpoints()

    def _arm_checkpoints(self) -> None:
        assert self._checkpoint_interval is not None
        # An immediate first snapshot (start_delay=0) guarantees recovery
        # always has *something* to restore, even right after deployment.
        self._checkpoint_cancel = self.netsim.clock.schedule_periodic(
            self._checkpoint_interval, self.checkpoint_now, start_delay=0.0
        )

    def checkpoint_now(self) -> "tuple[float, dict] | None":
        """Take a snapshot immediately (no-op while the node is down)."""
        if self._stopped:
            return None
        if not self.netsim.topology.node(self.node_id).up:
            return None  # a dead node cannot persist state
        self.last_checkpoint = (self.netsim.clock.now, self.operator.checkpoint())
        return self.last_checkpoint

    def restore_last_checkpoint(self) -> bool:
        """Reinstate the last snapshot into the operator, if one exists.

        Returns whether a restore happened.  Called by the executor after
        re-placing this process off a dead node; tuples absorbed after the
        snapshot are lost (the documented at-most-once recovery bound).
        """
        if self.last_checkpoint is None:
            return False
        _, state = self.last_checkpoint
        self.operator.restore(state)
        self.restores += 1
        return True

    # -- data path ------------------------------------------------------------

    def receive(self, tuple_: SensorTuple, port: int = 0) -> None:
        """Process one tuple: run the operator, forward emissions."""
        if self._stopped:
            return  # in-flight stragglers after teardown are discarded
        node = self._node
        if not node.up:
            return  # a dead node processes nothing
        node.account_work(self.operator.cost_per_tuple)
        obs = self.obs
        emitted = self.operator.on_tuple(tuple_, port=port)
        if obs is not None:
            if self._tuples_counter is not None:
                self._tuples_counter.inc()
            probe = self._probe
            if probe is not None:
                probe.note(self.netsim.clock.now, tuple_.stamp.time)
            ctx = tuple_.trace
            if ctx is not None:
                span = obs.tracer.span(
                    ctx, self.operator.span_name, self.netsim.clock.now,
                    node=self.node_id,
                    operator=self.operator.name,
                    process=self.process_id,
                    tuple=tuple_key(tuple_),
                )
                if emitted:
                    child = ctx.child_of(span)
                    emitted = [out.with_trace(child) for out in emitted]
        for out in emitted:
            self._forward(out)

    def receive_batch(self, batch: "TupleBatch", port: int = 0) -> None:
        """Process a micro-batch: one dispatch, one work charge, one forward.

        The per-message overhead — liveness checks, work accounting, the
        operator call, and downstream sends — is paid once per batch
        instead of once per tuple.  Emissions are forwarded as a single
        batch per route.
        """
        if self._stopped:
            return
        node = self._node
        if not node.up:
            return
        count = len(batch)
        if count == 0:
            return
        self._batching = True
        node.account_work(self.operator.cost_per_tuple * count)
        obs = self.obs
        emitted = self.operator.on_batch(batch, port=port)
        if obs is not None:
            if self._tuples_counter is not None:
                self._tuples_counter.inc(count)
            probe = self._probe
            if probe is not None:
                probe.note_batch(self.netsim.clock.now, batch)
            if any(t.trace is not None for t in batch):
                now = self.netsim.clock.now
                span_name = self.operator.span_name
                for tuple_ in batch:
                    if tuple_.trace is not None:
                        obs.tracer.span(
                            tuple_.trace, span_name, now,
                            node=self.node_id,
                            operator=self.operator.name,
                            process=self.process_id,
                            tuple=tuple_key(tuple_),
                            batch=count,
                        )
                # Emissions are not re-parented onto input spans: inside a
                # batch the input->output pairing is only known to the
                # operator, and lineage (for blocking ops) records it.
        if emitted:
            self._forward_batch(emitted)

    def _fire_timer(self) -> None:
        node = self._node
        if not node.up:
            return
        now = self.netsim.clock.now
        emitted = self.operator.on_timer(now)
        probe = self._probe
        if probe is not None:
            # Empty flushes commit too: an idle window still advances the
            # operator's watermark through the flush instant.
            probe.commit_flush(now, emitted)
        if emitted:
            node.account_work(self.operator.cost_per_tuple * len(emitted))
            obs = self.obs
            if obs is not None and obs.tracer.enabled:
                # A blocking flush starts a fresh trace: the emitted
                # aggregate is a *new* tuple whose ancestry is recorded in
                # the lineage store, not in any single input's trace.
                ctx = obs.tracer.start_trace(
                    "flush", now,
                    node=self.node_id,
                    operator=self.operator.name,
                    process=self.process_id,
                    emitted=len(emitted),
                )
                if ctx is not None:
                    emitted = [out.with_trace(ctx) for out in emitted]
        if self._batching and len(emitted) > 1:
            # Once on the batched path, a multi-tuple flush travels as one
            # message too; single emissions keep the legacy framing.
            self._forward_batch(emitted)
            return
        for out in emitted:
            self._forward(out)

    def _forward(self, tuple_: SensorTuple) -> None:
        for route in self.routes:
            target = route.target
            if isinstance(target, ShardGroup):
                target = target.member_for(tuple_, route.port)
            self.netsim.send(
                source=self.node_id,
                target=target.node_id,
                payload=tuple_,
                size_bytes=estimate_size_bytes(tuple_),
                on_delivery=lambda payload, t=target, p=route.port: t.receive(
                    payload, port=p
                ),
                qos=route.qos,
            )

    def _forward_batch(self, emitted: "list[SensorTuple]") -> None:
        if not self.routes:
            return
        batch: "TupleBatch | None" = None
        size = 0
        for route in self.routes:
            if isinstance(route.target, ShardGroup):
                # Per-member sub-batches; order is preserved inside each.
                for member, sub_batch in route.target.split(emitted, route.port):
                    self.netsim.send_batch(
                        source=self.node_id,
                        target=member.node_id,
                        batch=sub_batch,
                        size_bytes=estimate_batch_size_bytes(sub_batch),
                        on_delivery=lambda payload, t=member, p=route.port:
                            t.receive_batch(payload, port=p),
                        qos=route.qos,
                    )
                continue
            if batch is None:
                batch = TupleBatch.of(emitted)
                size = estimate_batch_size_bytes(batch)
            self.netsim.send_batch(
                source=self.node_id,
                target=route.target.node_id,
                batch=batch,
                size_bytes=size,
                on_delivery=lambda payload, r=route: r.target.receive_batch(
                    payload, port=r.port
                ),
                qos=route.qos,
            )

    # -- load reporting ----------------------------------------------------------

    def sample_load(self, now: float) -> float:
        """Update the hosting node's demand from the observed tuple rate.

        Returns the current demand in cost-units/second.
        """
        rate = self.rate.observe(now, float(self.operator.stats.tuples_in))
        demand = rate * self.operator.cost_per_tuple
        node = self.netsim.topology.node(self.node_id)
        if self.process_id in node.processes:
            node.update_demand(self.process_id, demand)
        return demand
