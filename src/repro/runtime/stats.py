"""Metric primitives: time series and windowed rate estimation."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """An append-only (time, value) series with simple reductions.

    ``max_points`` optionally caps retention: once exceeded, the oldest
    points are discarded (in chunks, to amortize the list shift), so a
    monitor sampling for days of virtual time holds bounded memory.
    """

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)
    max_points: "int | None" = None

    def __post_init__(self) -> None:
        if self.max_points is not None and self.max_points <= 0:
            raise ValueError(
                f"series {self.name!r}: max_points must be positive, "
                f"got {self.max_points}"
            )

    def record(self, time: float, value: float) -> None:
        """Append a point.  Monitors sample monotonically, so a strictly
        earlier timestamp is an error; *equal* timestamps are tolerated
        and both points kept (two samplers can legitimately fire on the
        same virtual instant)."""
        if self.points and time < self.points[-1][0]:
            raise ValueError(
                f"series {self.name!r}: time {time} precedes last point "
                f"{self.points[-1][0]}"
            )
        self.points.append((time, value))
        if self.max_points is not None and len(self.points) > self.max_points:
            del self.points[: len(self.points) - self.max_points]

    @property
    def last(self) -> "float | None":
        return self.points[-1][1] if self.points else None

    def values(self) -> list[float]:
        return [value for _, value in self.points]

    def times(self) -> list[float]:
        return [time for time, _ in self.points]

    def mean(self) -> float:
        if not self.points:
            return 0.0
        return sum(value for _, value in self.points) / len(self.points)

    def maximum(self) -> float:
        if not self.points:
            return 0.0
        return max(value for _, value in self.points)

    def since(self, time: float) -> list[tuple[float, float]]:
        """Points at or after ``time``.

        Points are appended in non-decreasing time order (``record``
        enforces it), so the cut-off is found by bisection instead of a
        linear scan — ``since`` is on the monitor's dashboard path and
        series grow with run length.
        """
        index = bisect.bisect_left(self.points, time, key=lambda p: p[0])
        return self.points[index:]

    def window(self, duration: float) -> list[tuple[float, float]]:
        """The trailing ``duration`` seconds of points (anchored at the
        newest point's timestamp; empty series yields an empty window)."""
        if duration < 0:
            raise ValueError(
                f"series {self.name!r}: window duration must be >= 0, "
                f"got {duration}"
            )
        if not self.points:
            return []
        return self.since(self.points[-1][0] - duration)

    def __len__(self) -> int:
        return len(self.points)


class RateEstimator:
    """Turns a monotone counter into a rate (events/second).

    Call :meth:`observe` with the counter's current value at sample times;
    :attr:`rate` is the rate over the last sample window — the "number of
    tuples that each operation handles per second" of Figure 3.
    """

    def __init__(self) -> None:
        self._last_count: float = 0.0
        self._last_time: "float | None" = None
        self.rate: float = 0.0

    def observe(self, time: float, count: float) -> float:
        if self._last_time is None:
            self._last_time = time
            self._last_count = count
            self.rate = 0.0
            return self.rate
        dt = time - self._last_time
        if dt > 0:
            self.rate = max(0.0, (count - self._last_count) / dt)
            self._last_time = time
            self._last_count = count
        return self.rate

    def reset(self) -> None:
        self._last_count = 0.0
        self._last_time = None
        self.rate = 0.0
