"""Execution runtime: processes, coordination, monitoring, lifecycle.

"Processes are generated for each operation of the dataflow and executed
on a network.  The executor module coordinates their execution. ... Logs of
the activities are then collected by the monitor module and made available
to the Web Interface to show statistics on the dataflow execution."
"""

from repro.runtime.stats import TimeSeries, RateEstimator
from repro.runtime.process import OperatorProcess, Route
from repro.runtime.monitor import Monitor, AssignmentChange
from repro.runtime.executor import Executor, Deployment
from repro.runtime.lifecycle import DeploymentState

__all__ = [
    "TimeSeries",
    "RateEstimator",
    "OperatorProcess",
    "Route",
    "Monitor",
    "AssignmentChange",
    "Executor",
    "Deployment",
    "DeploymentState",
]
